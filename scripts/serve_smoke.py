#!/usr/bin/env python3
"""Smoke-test the `cfaopc serve` daemon end to end.

Spawns the daemon on an ephemeral loopback port, drives it over raw TCP:

  1. submits a quick job and a long streaming job concurrently,
  2. captures streamed `iter` telemetry into the artifact file,
  3. cancels the long job mid-run,
  4. requests a graceful shutdown,

and asserts the daemon exits 0. Every line the daemon sent is written to
the artifact (default `SERVE_smoke.jsonl`) for CI upload.

Usage: serve_smoke.py [--bin target/release/cfaopc] [--out SERVE_smoke.jsonl]
"""

import argparse
import json
import socket
import subprocess
import sys
import time


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bin", default="target/release/cfaopc")
    ap.add_argument("--out", default="SERVE_smoke.jsonl")
    args = ap.parse_args()

    proc = subprocess.Popen(
        [args.bin, "serve", "--queue", "8", "--jobs", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = proc.stdout.readline().strip()
        # "cfaopc serve: listening on 127.0.0.1:PORT"
        if "listening on" not in banner:
            fail(f"unexpected banner {banner!r}")
        host, port = banner.rsplit(" ", 1)[-1].rsplit(":", 1)

        sock = socket.create_connection((host, int(port)), timeout=60)
        sock.settimeout(60)
        rx = sock.makefile("r", encoding="utf-8", newline="\n")

        def send(obj):
            sock.sendall((json.dumps(obj) + "\n").encode())

        captured = []

        def recv():
            line = rx.readline()
            if not line:
                fail("daemon closed the connection")
            captured.append(line.rstrip("\n"))
            return json.loads(line)

        def wait_for(pred, what):
            for _ in range(100_000):
                msg = recv()
                if pred(msg):
                    return msg
            fail(f"never saw {what}")

        # Two concurrent jobs: a quick one and a long streaming one.
        send({"cmd": "submit", "id": "quick", "case": 1, "size": 64,
              "kernels": 4, "init_iters": 2, "iters": 3})
        send({"cmd": "submit", "id": "long", "seed": 11, "size": 64,
              "kernels": 4, "init_iters": 2, "iters": 100000,
              "stream": True})
        wait_for(lambda m: m.get("kind") == "ack" and m.get("id") == "quick",
                 "ack for quick")
        wait_for(lambda m: m.get("kind") == "ack" and m.get("id") == "long",
                 "ack for long")
        wait_for(lambda m: m.get("kind") == "result" and m.get("id") == "quick",
                 "result for quick")
        # Observe the long job actually streaming before cancelling it.
        wait_for(lambda m: m.get("kind") == "iter" and m.get("job") == "long",
                 "streamed telemetry from long")
        send({"cmd": "cancel", "id": "long"})
        done = wait_for(
            lambda m: m.get("kind") == "cancelled" and m.get("id") == "long",
            "cancellation of long")
        if done.get("reason") != "cancel":
            fail(f"expected reason 'cancel', got {done}")

        # The daemon must still be serving after the cancel.
        send({"cmd": "status"})
        status = wait_for(lambda m: m.get("kind") == "status", "status")
        if status.get("done") != 2:
            fail(f"expected 2 finished jobs, got {status}")

        send({"cmd": "shutdown"})
        wait_for(lambda m: m.get("kind") == "shutting_down", "shutdown ack")
        sock.close()

        code = proc.wait(timeout=60)
        if code != 0:
            fail(f"daemon exited {code}: {proc.stderr.read()}")

        with open(args.out, "w", encoding="utf-8") as f:
            f.write("\n".join(captured) + "\n")
        iters = sum(1 for l in captured if '"kind":"iter"' in l)
        print(f"serve_smoke: OK ({len(captured)} lines captured, "
              f"{iters} streamed iterations) -> {args.out}")
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    main()
