#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from target/experiments artifacts."""
import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
EXP = ROOT / "target" / "experiments"
MD = ROOT / "EXPERIMENTS.md"


def csv_to_md(path: Path, label_header: str = "Method") -> str:
    lines = path.read_text().strip().splitlines()
    out = [f"| {label_header} | L2 | PVB | EPE | #Shot |", "|---|---|---|---|---|"]
    for line in lines[1:]:
        label, l2, pvb, epe, shots = line.split(",")
        out.append(f"| {label} | {float(l2):,.0f} | {float(pvb):,.0f} | {epe} | {shots} |")
    return "\n".join(out)


def section(out_file: Path, start: str = None, last: int = None) -> str:
    text = out_file.read_text()
    lines = text.splitlines()
    if last:
        lines = lines[-last:]
    return "```text\n" + "\n".join(lines) + "\n```"


md = MD.read_text()

# Table 1
t1 = EXP / "table1_summary.csv"
if t1.exists():
    md = md.replace("<!-- TABLE1_MEASURED -->", csv_to_md(t1))

# Table 2
t2 = EXP / "table2_summary.csv"
if t2.exists():
    md = md.replace("<!-- TABLE2_MEASURED -->", csv_to_md(t2))

# Table 3
t3 = EXP / "table3_summary.csv"
if t3.exists():
    extra = ""
    out = EXP / "table3.out"
    if out.exists():
        m = re.search(r"shot-count reduction.*", out.read_text())
        if m:
            extra = "\n\n" + m.group(0)
    md = md.replace("<!-- TABLE3_MEASURED -->", csv_to_md(t3) + extra)

# Fig 1
f1 = EXP / "fig1.out"
if f1.exists():
    body = "\n".join(
        l for l in f1.read_text().splitlines() if l.startswith(("curvilinear", "(a)", "(b)", "reduction"))
    )
    md = md.replace("<!-- FIG1_MEASURED -->", "```text\n" + body + "\n```")

# Fig 7
f7 = EXP / "fig7.out"
if f7.exists():
    body = "\n".join(
        l for l in f7.read_text().splitlines() if l.startswith(("m=", "MultiILT VSB"))
    )
    md = md.replace("<!-- FIG7_MEASURED -->", "```text\n" + body + "\n```")

# Ablations
ab = EXP / "ablations.out"
if ab.exists():
    body = "\n".join(
        l for l in ab.read_text().splitlines() if l.startswith(("[1]", "[2]", "[3]", "[4]", "   "))
    )
    md = md.replace("<!-- ABLATIONS_MEASURED -->", "```text\n" + body + "\n```")

MD.write_text(md)
print("EXPERIMENTS.md filled")
