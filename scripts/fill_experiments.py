#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from measured artifacts.

Sources:
  * target/experiments/*.csv|*.out  -- the cfaopc-bench experiment binaries
  * RESULTS.json                    -- `cfaopc eval` (schema cfaopc-eval/1)
  * CHIP_RESULTS.json               -- `cfaopc chip` (schema cfaopc-chip/1)
  * BENCH_circleopt_telemetry.jsonl -- tracing-enabled bench run

Missing artifacts are skipped (their placeholder stays in place so a
later run can fill it); an artifact that exists but cannot be parsed is
a hard error and the script exits non-zero without touching
EXPERIMENTS.md.

Usage: scripts/fill_experiments.py [--results RESULTS.json]
                                   [--chip-results CHIP_RESULTS.json]
"""

import argparse
import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
EXP = ROOT / "target" / "experiments"
MD = ROOT / "EXPERIMENTS.md"

EVAL_SCHEMA = "cfaopc-eval/1"
CHIP_SCHEMA = "cfaopc-chip/1"


class ArtifactError(Exception):
    """An artifact exists but is malformed."""


def csv_to_md(path: Path, label_header: str = "Method") -> str:
    lines = path.read_text().strip().splitlines()
    out = [f"| {label_header} | L2 | PVB | EPE | #Shot |", "|---|---|---|---|---|"]
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            label, l2, pvb, epe, shots = line.split(",")
            out.append(
                f"| {label} | {float(l2):,.0f} | {float(pvb):,.0f} | {epe} | {shots} |"
            )
        except ValueError as e:
            raise ArtifactError(f"{path}:{lineno}: bad CSV row ({e})") from e
    return "\n".join(out)


def eval_table(path: Path) -> str:
    """Render the `cfaopc eval` paper table from RESULTS.json.

    Mirrors EvalReport::markdown_table so the committed table and the
    CI artifact agree; validates the schema tag and every consumed field
    so a truncated or mis-schemed file fails loudly.
    """
    try:
        doc = json.loads(path.read_text())
    except ValueError as e:
        raise ArtifactError(f"{path}: not valid JSON ({e})") from e
    if not isinstance(doc, dict) or doc.get("schema") != EVAL_SCHEMA:
        raise ArtifactError(
            f"{path}: schema {doc.get('schema')!r} (expected {EVAL_SCHEMA!r})"
        )
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        raise ArtifactError(f"{path}: missing or empty 'cases' array")

    header = (
        "| Case | Area (nm²) | L2 (CR) | PVB (CR) | EPE (CR) | #Shot (CR) | PW (CR) "
        "| L2 (CO) | PVB (CO) | EPE (CO) | #Shot (CO) | PW (CO) |"
    )
    rows = [header, "|---|---|---|---|---|---|---|---|---|---|---|---|"]
    sums = {("rule", k): 0.0 for k in ("l2", "pvb", "epe", "shots", "window")}
    sums.update({("opt", k): 0.0 for k in ("l2", "pvb", "epe", "shots", "window")})
    for case in cases:
        try:
            cells = [str(case["case"]), f"{int(case['area_nm2'])}"]
            for method in ("rule", "opt"):
                m = case[method]
                cells += [
                    f"{m['l2']:.0f}",
                    f"{m['pvb']:.0f}",
                    f"{m['epe']}",
                    f"{m['shots']}",
                    f"{m['window']:.2f}",
                ]
                for k in ("l2", "pvb", "epe", "shots", "window"):
                    sums[(method, k)] += float(m[k])
        except (KeyError, TypeError, ValueError) as e:
            raise ArtifactError(f"{path}: malformed case record ({e!r})") from e
        rows.append("| " + " | ".join(cells) + " |")

    n = len(cases)
    mean = ["**mean**", ""]
    for method in ("rule", "opt"):
        mean += [
            f"{sums[(method, 'l2')] / n:.0f}",
            f"{sums[(method, 'pvb')] / n:.0f}",
            f"{sums[(method, 'epe')] / n:.1f}",
            f"{sums[(method, 'shots')] / n:.1f}",
            f"{sums[(method, 'window')] / n:.2f}",
        ]
    rows.append("| " + " | ".join(mean) + " |")
    meta = (
        f"\nSuite `{doc.get('suite')}` at {doc.get('size')} px, "
        f"{doc.get('kernel_count')} kernels per corner "
        f"(CR = MultiILT+CircleRule, CO = CircleOpt, PW = process-window "
        f"fraction)."
    )
    return "\n".join(rows) + meta


def chip_table(path: Path) -> str:
    """Render the `cfaopc chip` table from CHIP_RESULTS.json.

    Mirrors ChipReport::markdown_table; validates the schema tag and
    every consumed field, so a truncated or mis-schemed file fails
    loudly and EXPERIMENTS.md is left untouched.
    """
    try:
        doc = json.loads(path.read_text())
    except ValueError as e:
        raise ArtifactError(f"{path}: not valid JSON ({e})") from e
    if not isinstance(doc, dict) or doc.get("schema") != CHIP_SCHEMA:
        raise ArtifactError(
            f"{path}: schema {doc.get('schema')!r} (expected {CHIP_SCHEMA!r})"
        )
    chips = doc.get("chips")
    if not isinstance(chips, list) or not chips:
        raise ArtifactError(f"{path}: missing or empty 'chips' array")

    header = (
        "| Chip | Tiles | Area (nm²) | L2 (CR) | PVB (CR) | EPE (CR) | #Shot (CR) "
        "| xMRC (CR) | L2 (CO) | PVB (CO) | EPE (CO) | #Shot (CO) | xMRC (CO) |"
    )
    rows = [header, "|---|---|---|---|---|---|---|---|---|---|---|---|---|"]
    for chip in chips:
        try:
            cells = [
                str(chip["chip"]),
                f"{int(chip['tiles_x'])}×{int(chip['tiles_y'])}",
                f"{int(chip['area_nm2'])}",
            ]
            for method in ("rule", "opt"):
                m = chip[method]
                cells += [
                    f"{m['l2']:.0f}",
                    f"{m['pvb']:.0f}",
                    f"{m['epe']}",
                    f"{m['shots']}",
                    f"{m['cross_seam_violations']}",
                ]
        except (KeyError, TypeError, ValueError) as e:
            raise ArtifactError(f"{path}: malformed chip record ({e!r})") from e
        rows.append("| " + " | ".join(cells) + " |")
    meta = (
        f"\nSuite `{doc.get('suite')}`: {doc.get('tile_px')} px tiles, "
        f"{doc.get('window_px')} px windows ({doc.get('halo_px')} px halo), "
        f"{doc.get('kernel_count')} kernels per corner "
        f"(CR = MultiILT+CircleRule, CO = CircleOpt, xMRC = cross-seam "
        f"spacing violations)."
    )
    return "\n".join(rows) + meta


def telemetry_summary(path: Path) -> str:
    iters, counters, spans = [], None, []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        try:
            rec = json.loads(line)
        except ValueError as e:
            raise ArtifactError(f"{path}:{lineno}: bad JSONL record ({e})") from e
        kind = rec.get("kind")
        if kind == "iter":
            iters.append(rec)
        elif kind == "counters":
            counters = rec
        elif kind == "span":
            spans.append(rec)
    out = []
    for stage in ("pixel_ilt", "circleopt"):
        rows = [r for r in iters if r.get("stage") == stage]
        if rows:
            first, last = rows[0], rows[-1]
            out.append(
                f"{stage}: {len(rows)} iterations, loss "
                f"{first['loss_total']:.1f} -> {last['loss_total']:.1f}"
            )
    if counters:
        pairs = ", ".join(f"{k}={v}" for k, v in counters.items() if k != "kind")
        out.append(f"counters: {pairs}")
    for s in spans:
        out.append(
            f"span {'  ' * s['depth']}{s['name']}: {s['calls']} calls, "
            f"{s['total_ns'] / 1e6:.1f} ms"
        )
    return "```text\n" + "\n".join(out) + "\n```"


def fill(md: str, placeholder: str, body: str) -> str:
    if placeholder not in md:
        raise ArtifactError(f"EXPERIMENTS.md is missing the {placeholder} placeholder")
    return md.replace(placeholder, body)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--results",
        type=Path,
        default=ROOT / "RESULTS.json",
        help="path to the `cfaopc eval` RESULTS.json (default: repo root)",
    )
    ap.add_argument(
        "--chip-results",
        type=Path,
        default=ROOT / "CHIP_RESULTS.json",
        help="path to the `cfaopc chip` CHIP_RESULTS.json (default: repo root)",
    )
    args = ap.parse_args()

    md = MD.read_text()
    filled = []
    try:
        for name, header in (("table1", "Method"), ("table2", "Method"), ("table3", "Method")):
            csv = EXP / f"{name}_summary.csv"
            if csv.exists():
                body = csv_to_md(csv, header)
                if name == "table3":
                    out = EXP / "table3.out"
                    if out.exists():
                        m = re.search(r"shot-count reduction.*", out.read_text())
                        if m:
                            body += "\n\n" + m.group(0)
                md = fill(md, f"<!-- {name.upper()}_MEASURED -->", body)
                filled.append(name)

        for name, prefixes in (
            ("fig1", ("curvilinear", "(a)", "(b)", "reduction")),
            ("fig7", ("m=", "MultiILT VSB")),
            ("ablations", ("[1]", "[2]", "[3]", "[4]", "   ")),
        ):
            out = EXP / f"{name}.out"
            if out.exists():
                body = "\n".join(
                    l for l in out.read_text().splitlines() if l.startswith(prefixes)
                )
                md = fill(md, f"<!-- {name.upper()}_MEASURED -->", f"```text\n{body}\n```")
                filled.append(name)

        if args.results.exists():
            md = fill(md, "<!-- EVAL_MEASURED -->", eval_table(args.results))
            filled.append("eval")

        if args.chip_results.exists():
            md = fill(md, "<!-- CHIP_MEASURED -->", chip_table(args.chip_results))
            filled.append("chip")

        tel = ROOT / "BENCH_circleopt_telemetry.jsonl"
        if tel.exists():
            md = fill(md, "<!-- TELEMETRY_MEASURED -->", telemetry_summary(tel))
            filled.append("telemetry")
    except ArtifactError as e:
        print(f"error: {e}", file=sys.stderr)
        print("EXPERIMENTS.md left untouched", file=sys.stderr)
        return 1

    MD.write_text(md)
    print(f"EXPERIMENTS.md filled: {', '.join(filled) if filled else 'nothing to do'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
