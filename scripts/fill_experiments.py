#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from target/experiments artifacts."""
import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
EXP = ROOT / "target" / "experiments"
MD = ROOT / "EXPERIMENTS.md"


def csv_to_md(path: Path, label_header: str = "Method") -> str:
    lines = path.read_text().strip().splitlines()
    out = [f"| {label_header} | L2 | PVB | EPE | #Shot |", "|---|---|---|---|---|"]
    for line in lines[1:]:
        label, l2, pvb, epe, shots = line.split(",")
        out.append(f"| {label} | {float(l2):,.0f} | {float(pvb):,.0f} | {epe} | {shots} |")
    return "\n".join(out)


def section(out_file: Path, start: str = None, last: int = None) -> str:
    text = out_file.read_text()
    lines = text.splitlines()
    if last:
        lines = lines[-last:]
    return "```text\n" + "\n".join(lines) + "\n```"


md = MD.read_text()

# Table 1
t1 = EXP / "table1_summary.csv"
if t1.exists():
    md = md.replace("<!-- TABLE1_MEASURED -->", csv_to_md(t1))

# Table 2
t2 = EXP / "table2_summary.csv"
if t2.exists():
    md = md.replace("<!-- TABLE2_MEASURED -->", csv_to_md(t2))

# Table 3
t3 = EXP / "table3_summary.csv"
if t3.exists():
    extra = ""
    out = EXP / "table3.out"
    if out.exists():
        m = re.search(r"shot-count reduction.*", out.read_text())
        if m:
            extra = "\n\n" + m.group(0)
    md = md.replace("<!-- TABLE3_MEASURED -->", csv_to_md(t3) + extra)

# Fig 1
f1 = EXP / "fig1.out"
if f1.exists():
    body = "\n".join(
        l for l in f1.read_text().splitlines() if l.startswith(("curvilinear", "(a)", "(b)", "reduction"))
    )
    md = md.replace("<!-- FIG1_MEASURED -->", "```text\n" + body + "\n```")

# Fig 7
f7 = EXP / "fig7.out"
if f7.exists():
    body = "\n".join(
        l for l in f7.read_text().splitlines() if l.startswith(("m=", "MultiILT VSB"))
    )
    md = md.replace("<!-- FIG7_MEASURED -->", "```text\n" + body + "\n```")

# Ablations
ab = EXP / "ablations.out"
if ab.exists():
    body = "\n".join(
        l for l in ab.read_text().splitlines() if l.startswith(("[1]", "[2]", "[3]", "[4]", "   "))
    )
    md = md.replace("<!-- ABLATIONS_MEASURED -->", "```text\n" + body + "\n```")


# Telemetry (JSONL artifact from the circleopt bench or a --trace run)
def telemetry_summary(path: Path) -> str:
    import json

    iters, counters, spans = [], None, []
    for line in path.read_text().splitlines():
        try:
            rec = json.loads(line)
        except ValueError:
            continue
        kind = rec.get("kind")
        if kind == "iter":
            iters.append(rec)
        elif kind == "counters":
            counters = rec
        elif kind == "span":
            spans.append(rec)
    out = []
    for stage in ("pixel_ilt", "circleopt"):
        rows = [r for r in iters if r.get("stage") == stage]
        if rows:
            first, last = rows[0], rows[-1]
            out.append(
                f"{stage}: {len(rows)} iterations, loss "
                f"{first['loss_total']:.1f} -> {last['loss_total']:.1f}"
            )
    if counters:
        pairs = ", ".join(f"{k}={v}" for k, v in counters.items() if k != "kind")
        out.append(f"counters: {pairs}")
    for s in spans:
        out.append(
            f"span {'  ' * s['depth']}{s['name']}: {s['calls']} calls, "
            f"{s['total_ns'] / 1e6:.1f} ms"
        )
    return "```text\n" + "\n".join(out) + "\n```"


tel = ROOT / "BENCH_circleopt_telemetry.jsonl"
if tel.exists():
    md = md.replace("<!-- TELEMETRY_MEASURED -->", telemetry_summary(tel))

MD.write_text(md)
print("EXPERIMENTS.md filled")
