#!/usr/bin/env python3
"""Perf-regression gate over the hand-rolled bench snapshots.

Compares fresh BENCH_components.json / BENCH_circleopt.json (written by
`cargo bench -p cfaopc-bench`) against the committed baselines in
eval/baselines/, case by case on `min_ns` — the most noise-resistant
statistic the harness records (median still jitters at 5 iterations on
shared CI runners).

A case regresses when

    measured_min_ns > baseline_min_ns * tolerance

with a deliberately generous default tolerance (2.5x): the baselines
were recorded on one machine and CI runs on another, so the gate exists
to catch order-of-magnitude accidents (an O(n) loop going O(n^2), a
parallel path silently serializing), not percent-level drift. Cases are
matched by name; cases present only on one side are reported and, when
the baseline has them but the measurement does not, treated as failures
(a silently vanished benchmark would otherwise hide a deleted code
path).

Exit status: 0 when clean (or --warn-only), 1 on regression, 2 on
malformed input. `--warn-only` is for pull requests — report, but let
the PR proceed; pushes to main enforce.

Usage:
  scripts/check_bench.py --baseline eval/baselines/BENCH_components.json \
                         --measured BENCH_components.json [--tolerance 2.5] \
                         [--warn-only]
"""

import argparse
import json
import sys
from pathlib import Path


def load_cases(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text())
        cases = doc["cases"]
        return {c["name"]: int(c["min_ns"]) for c in cases}
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"error: cannot read bench snapshot {path}: {e!r}", file=sys.stderr)
        sys.exit(2)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", type=Path, required=True, help="committed snapshot")
    ap.add_argument("--measured", type=Path, required=True, help="fresh snapshot")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=2.5,
        help="allowed min_ns ratio measured/baseline (default: 2.5)",
    )
    ap.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for pull requests)",
    )
    args = ap.parse_args()
    if args.tolerance <= 0:
        print("error: --tolerance must be positive", file=sys.stderr)
        return 2

    baseline = load_cases(args.baseline)
    measured = load_cases(args.measured)

    failures = []
    removed = sorted(set(baseline) - set(measured))
    for name, base_ns in sorted(baseline.items()):
        got_ns = measured.get(name)
        if got_ns is None:
            continue
        ratio = got_ns / base_ns if base_ns else float("inf")
        marker = "FAIL" if ratio > args.tolerance else "ok"
        print(
            f"{marker:>4}  {name:<40} baseline {base_ns / 1e6:>10.3f} ms"
            f"  measured {got_ns / 1e6:>10.3f} ms  ratio {ratio:>6.2f}x"
        )
        if ratio > args.tolerance:
            failures.append(
                f"{name}: {ratio:.2f}x over baseline (allowed {args.tolerance:.2f}x)"
            )
        elif ratio < 1 / args.tolerance:
            print(
                f"note  {name}: {1 / ratio:.2f}x faster than baseline -- "
                "consider refreshing eval/baselines/"
            )
    unbaselined = sorted(set(measured) - set(baseline))
    for name in unbaselined:
        print(f"WARN  {name}: new case with no baseline")
    if unbaselined:
        # Loud but non-fatal: a brand-new case cannot regress yet, but an
        # unrefreshed baseline means it is also not being gated — every
        # run will nag until eval/baselines/ picks the case up.
        print(
            f"warning: {len(unbaselined)} measured case(s) have no baseline "
            f"entry: {', '.join(unbaselined)} -- refresh "
            f"{args.baseline} so they are gated",
            file=sys.stderr,
        )
    if removed:
        # A vanished benchmark usually means a case was renamed or its
        # code path deleted; name every missing case in one place so the
        # failure message says exactly what to reconcile.
        failures.append(
            f"{len(removed)} baseline case(s) missing from the measured "
            f"snapshot: {', '.join(removed)} -- if the rename/removal is "
            "intentional, refresh eval/baselines/ in the same change"
        )

    if failures:
        print(
            f"\n{len(failures)} regression(s) vs {args.baseline}:", file=sys.stderr
        )
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        if args.warn_only:
            print("warn-only mode: not failing the build", file=sys.stderr)
            return 0
        return 1
    print(f"\nall {len(baseline)} cases within {args.tolerance:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
