//! `cfaopc` — command-line front end for the CFAOPC library.
//!
//! ```text
//! cfaopc cases
//! cfaopc fracture --case 3 [--size 256] [--method opt|rule] [--iters 30]
//!                 [--out mask.cshot] [--svg mask.svg] [--trace run.jsonl]
//! cfaopc evaluate --shots mask.cshot --case 3
//! cfaopc eval [--suite small] [--out RESULTS.json] [--md table.md]
//!             [--check eval/golden.json] [--tol 0.02] [--tol-abs 0.5]
//!             [--timing]
//! cfaopc chip [--suite chip-tiny] [--out CHIP_RESULTS.json] [--md table.md]
//!             [--check eval/golden_chip.json] [--tol 0.02] [--tol-abs 0.5]
//!             [--shots-dir DIR]
//! ```
//!
//! `--trace FILE.jsonl` (with `--method opt`) enables the observability
//! layer for the run and streams one JSON line per optimizer iteration
//! (loss terms, sparsity, active shots, gradient norms), followed by a
//! counter summary and the span tree.
//!
//! `eval` runs a whole benchmark suite end to end (CircleRule and
//! CircleOpt on every testcase), sharded across the worker pool, and
//! writes a deterministic `RESULTS.json` — byte-identical across runs
//! and `CFAOPC_THREADS` values unless `--timing` is given. With
//! `--check` it compares every metric against a golden file and exits
//! non-zero on drift beyond tolerance.
//!
//! `chip` runs a full-chip decomposition suite: each chip splits into
//! overlapping halo windows, every window runs the per-tile pipeline in
//! parallel, interior-owned shots merge into one chip-level CSHOT list
//! (written per chip and method with `--shots-dir`), and seams blend
//! under partition-of-unity weights into chip-level L2/PVB/EPE plus
//! cross-seam MRC counts. `CHIP_RESULTS.json` is byte-identical across
//! runs and `CFAOPC_THREADS` values; `--check` works as for `eval`.

use cfaopc::fracture::ShotList;
use cfaopc::litho::loss_only;
use cfaopc::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("cases") => cmd_cases(),
        Some("fracture") => parse_flags(&args[1..], FRACTURE_FLAGS)
            .map_err(Into::into)
            .and_then(|f| cmd_fracture(&f)),
        Some("evaluate") => parse_flags(&args[1..], EVALUATE_FLAGS)
            .map_err(Into::into)
            .and_then(|f| cmd_evaluate(&f)),
        Some("eval") => parse_flags(&args[1..], EVAL_FLAGS)
            .map_err(Into::into)
            .and_then(|f| cmd_eval(&f)),
        Some("chip") => parse_flags(&args[1..], CHIP_FLAGS)
            .map_err(Into::into)
            .and_then(|f| cmd_chip(&f)),
        Some("serve") => parse_flags(&args[1..], SERVE_FLAGS)
            .map_err(Into::into)
            .and_then(|f| cmd_serve(&f)),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `cfaopc help`").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "cfaopc — fracturing-aware curvilinear ILT\n\n\
         USAGE:\n  cfaopc cases\n  cfaopc fracture --case <1-10> [--glp FILE] [--size N] \
         [--method opt|rule] [--iters N] [--out FILE.cshot] [--svg FILE.svg] \
         [--trace FILE.jsonl]\n  \
         cfaopc evaluate --shots FILE.cshot (--case <1-10> | --glp FILE)\n  \
         cfaopc eval [--suite tiny|small|paper] [--out RESULTS.json] [--md FILE] \
         [--check GOLDEN.json] [--tol REL] [--tol-abs ABS] [--timing]\n  \
         cfaopc chip [--suite chip-tiny|chip-small] [--out CHIP_RESULTS.json] [--md FILE] \
         [--check GOLDEN.json] [--tol REL] [--tol-abs ABS] [--shots-dir DIR]\n  \
         cfaopc serve [--addr HOST:PORT] [--queue N] [--jobs N] [--timeout-ms MS]\n"
    );
}

type Flags = HashMap<String, String>;

/// One allowed flag for a subcommand: its name (without `--`) and
/// whether it consumes a value.
struct FlagSpec {
    name: &'static str,
    takes_value: bool,
}

const fn flag(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: true,
    }
}

const fn switch(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: false,
    }
}

const FRACTURE_FLAGS: &[FlagSpec] = &[
    flag("case"),
    flag("glp"),
    flag("size"),
    flag("method"),
    flag("iters"),
    flag("out"),
    flag("svg"),
    flag("trace"),
];
const EVALUATE_FLAGS: &[FlagSpec] = &[flag("shots"), flag("case"), flag("glp")];
const EVAL_FLAGS: &[FlagSpec] = &[
    flag("suite"),
    flag("out"),
    flag("md"),
    flag("check"),
    flag("tol"),
    flag("tol-abs"),
    switch("timing"),
];
const CHIP_FLAGS: &[FlagSpec] = &[
    flag("suite"),
    flag("out"),
    flag("md"),
    flag("check"),
    flag("tol"),
    flag("tol-abs"),
    flag("shots-dir"),
];
const SERVE_FLAGS: &[FlagSpec] = &[
    flag("addr"),
    flag("queue"),
    flag("jobs"),
    flag("timeout-ms"),
];

/// Strict flag parser: every token must be a `--flag` from `allowed`
/// (or its value). Unknown flags, stray positionals, missing values,
/// values handed to switches, and duplicated valued flags are all
/// errors naming the offending token — a typo'd run fails loudly
/// instead of silently dropping the option (the old parser accepted
/// anything and ignored what no subcommand read).
///
/// Accepted shapes: `--flag value`, `--flag=value`, bare `--switch`
/// (repeating a switch is idempotent, not an error).
fn parse_flags(args: &[String], allowed: &[FlagSpec]) -> Result<Flags, String> {
    let known = || {
        allowed
            .iter()
            .map(|s| format!("--{}", s.name))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut flags = Flags::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let Some(body) = arg.strip_prefix("--") else {
            return Err(format!(
                "unexpected argument {arg:?} (flags are {})",
                known()
            ));
        };
        let (key, inline_value) = match body.split_once('=') {
            Some((k, v)) => (k, Some(v.to_string())),
            None => (body, None),
        };
        let Some(spec) = allowed.iter().find(|s| s.name == key) else {
            return Err(format!("unknown flag --{key} (flags are {})", known()));
        };
        let value = if spec.takes_value {
            match inline_value {
                Some(v) => v,
                None => match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().cloned().unwrap_or_default(),
                    _ => return Err(format!("flag --{key} requires a value")),
                },
            }
        } else {
            if inline_value.is_some() {
                return Err(format!("flag --{key} does not take a value"));
            }
            String::new()
        };
        if flags.insert(key.to_string(), value).is_some() && spec.takes_value {
            return Err(format!("duplicate flag --{key}"));
        }
    }
    Ok(flags)
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_cases() -> CliResult {
    println!("{:<8} {:>12} {:>7}", "case", "area (nm^2)", "rects");
    for layout in all_cases() {
        println!(
            "{:<8} {:>12} {:>7}",
            layout.name,
            layout.area_nm2(),
            layout.rects.len()
        );
    }
    Ok(())
}

fn load_layout(flags: &Flags) -> Result<Layout, Box<dyn std::error::Error>> {
    if let Some(case) = flags.get("case") {
        return Ok(benchmark_case(case.parse()?)?);
    }
    if let Some(path) = flags.get("glp") {
        return Ok(Layout::from_glp(&std::fs::read_to_string(path)?)?);
    }
    Err("need --case <1-10> or --glp FILE".into())
}

fn build_sim(flags: &Flags) -> Result<LithoSimulator, Box<dyn std::error::Error>> {
    let size: usize = flags
        .get("size")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(256);
    Ok(LithoSimulator::new(LithoConfig {
        size,
        kernel_count: 8,
        ..LithoConfig::default()
    })?)
}

fn cmd_fracture(flags: &Flags) -> CliResult {
    let layout = load_layout(flags)?;
    let sim = build_sim(flags)?;
    let n = sim.size();
    let pixel_nm = sim.config().pixel_nm();
    let target = layout.rasterize(n);
    let iters: usize = flags
        .get("iters")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(30);
    let method = flags.get("method").map(String::as_str).unwrap_or("opt");

    let (mask, raster, label) = match method {
        "rule" => {
            let pixel = run_engine(&sim, &target, IltEngine::MultiIltLike, iters)?;
            let mask = circle_rule(&pixel.mask_binary, &CircleRuleConfig::default(), pixel_nm);
            let raster = mask.rasterize(n, n);
            (mask, raster, "MultiILT+CircleRule")
        }
        "opt" => {
            let gamma = 3.0 * (n as f64 / 2048.0).powi(2);
            let config = CircleOptConfig {
                init_iterations: iters.div_ceil(2),
                circle_iterations: iters + 10,
                gamma,
                ..CircleOptConfig::default()
            };
            let result = match flags.get("trace") {
                Some(path) => {
                    cfaopc::trace::set_enabled(true);
                    let file = std::io::BufWriter::new(std::fs::File::create(path)?);
                    let mut sink = JsonlSink::new(file);
                    let result = run_circleopt_traced(&sim, &target, &config, &mut sink);
                    sink.write_summary()?;
                    sink.flush()?;
                    println!("wrote {path}");
                    result?
                }
                None => run_circleopt(&sim, &target, &config)?,
            };
            // `mask_raster` is the run's cached rasterization — no need
            // to re-rasterize here.
            (result.mask, result.mask_raster, "CircleOpt")
        }
        other => return Err(format!("unknown method {other:?} (use opt|rule)").into()),
    };
    let mut metrics = evaluate_mask(&sim, &raster, &target, &EpeConfig::default())?;
    metrics.shots = mask.shot_count();
    println!(
        "{label} on {} @{n}px: L2 {:.0} nm², PVB {:.0} nm², EPE {}, #Shot {}",
        layout.name, metrics.l2, metrics.pvb, metrics.epe, metrics.shots
    );

    if let Some(path) = flags.get("out") {
        let list = ShotList::new(mask.clone(), n, n, pixel_nm);
        std::fs::write(path, list.to_text())?;
        println!("wrote {path}");
    }
    if let Some(path) = flags.get("svg") {
        let printed = sim.print(&raster, ProcessCorner::Nominal)?;
        SvgScene::new(n, n)
            .mask(&target, "#4477aa", 0.35)
            .circles(&mask, "#cc3311")
            .contour(&printed, "#228833")
            .save(path)?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_eval(flags: &Flags) -> CliResult {
    let suite_name = flags.get("suite").map(String::as_str).unwrap_or("small");
    let spec = cfaopc::eval::SuiteSpec::named(suite_name).ok_or_else(|| {
        format!(
            "unknown suite {suite_name:?} (available: {})",
            cfaopc::eval::SuiteSpec::NAMES.join(", ")
        )
    })?;
    let timing = flags.contains_key("timing");
    println!(
        "running suite {:?}: {} cases at {}px, {} workers",
        spec.name,
        spec.cases.len(),
        spec.size,
        cfaopc::fft::parallel::worker_count()
    );
    let report = if timing {
        run_suite_timed(&spec)?
    } else {
        run_suite(&spec)?
    };
    for c in &report.cases {
        let wall = c
            .wall_ms
            .map(|ms| format!(" [{ms:.0} ms]"))
            .unwrap_or_default();
        println!(
            "{:<10} rule: L2 {:>9.0} PVB {:>9.0} EPE {:>3} #Shot {:>4} PW {:.2} | \
             opt: L2 {:>9.0} PVB {:>9.0} EPE {:>3} #Shot {:>4} PW {:.2}{wall}",
            c.name,
            c.rule.l2,
            c.rule.pvb,
            c.rule.epe,
            c.rule.shots,
            c.rule.window,
            c.opt.l2,
            c.opt.pvb,
            c.opt.epe,
            c.opt.shots,
            c.opt.window,
        );
    }
    let out = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("RESULTS.json");
    std::fs::write(out, report.to_json_string())?;
    println!("wrote {out}");
    if let Some(md) = flags.get("md") {
        std::fs::write(md, report.markdown_table())?;
        println!("wrote {md}");
    }
    if let Some(golden_path) = flags.get("check") {
        let tol = parse_tolerance(flags)?;
        let golden = EvalReport::from_json_str(&std::fs::read_to_string(golden_path)?)
            .map_err(|e| format!("cannot load golden file {golden_path}: {e}"))?;
        let drifts = compare_reports(&golden, &report, &tol);
        if drifts.is_empty() {
            println!(
                "golden check OK: {} cases within tolerance (rel {}, abs {}) of {golden_path}",
                report.cases.len(),
                tol.rel,
                tol.abs
            );
        } else {
            eprintln!("golden check FAILED against {golden_path}:");
            for d in &drifts {
                eprintln!("  {d}");
            }
            return Err(format!("{} metric(s) drifted beyond tolerance", drifts.len()).into());
        }
    }
    Ok(())
}

/// `--tol` / `--tol-abs` with the library defaults, shared by the
/// `eval` and `chip` golden checks.
fn parse_tolerance(flags: &Flags) -> Result<Tolerance, Box<dyn std::error::Error>> {
    Ok(Tolerance {
        rel: flags
            .get("tol")
            .map(|s| s.parse())
            .transpose()?
            .unwrap_or(Tolerance::default().rel),
        abs: flags
            .get("tol-abs")
            .map(|s| s.parse())
            .transpose()?
            .unwrap_or(Tolerance::default().abs),
    })
}

fn cmd_chip(flags: &Flags) -> CliResult {
    let suite_name = flags
        .get("suite")
        .map(String::as_str)
        .unwrap_or("chip-tiny");
    let spec = ChipSpec::named(suite_name).ok_or_else(|| {
        format!(
            "unknown chip suite {suite_name:?} (available: {})",
            ChipSpec::NAMES.join(", ")
        )
    })?;
    println!(
        "running chip suite {:?}: {} chips at {} px tiles ({} px windows, {} px halo), {} workers",
        spec.name,
        spec.chips.len(),
        spec.tile_px,
        2 * spec.tile_px,
        spec.tile_px / 2,
        cfaopc::fft::parallel::worker_count()
    );
    let sim = LithoSimulator::new(spec.litho_config())?;
    let shots_dir = flags.get("shots-dir");
    if let Some(dir) = shots_dir {
        std::fs::create_dir_all(dir)?;
    }

    let mut records = Vec::with_capacity(spec.chips.len());
    for source in &spec.chips {
        let chip = source.chip();
        let outcome = run_chip_case_full(&spec, &sim, &chip)?;
        let r = &outcome.record;
        println!(
            "{:<14} {}x{} tiles | rule: L2 {:>9.0} PVB {:>9.0} EPE {:>3} #Shot {:>5} xMRC {:>2} | \
             opt: L2 {:>9.0} PVB {:>9.0} EPE {:>3} #Shot {:>5} xMRC {:>2}",
            r.name,
            r.tiles_x,
            r.tiles_y,
            r.rule.l2,
            r.rule.pvb,
            r.rule.epe,
            r.rule.shots,
            r.rule.cross_seam_violations,
            r.opt.l2,
            r.opt.pvb,
            r.opt.epe,
            r.opt.shots,
            r.opt.cross_seam_violations,
        );
        if let Some(dir) = shots_dir {
            let geom = spec.geometry(&chip);
            let (cw, ch) = (geom.chip_width_px(), geom.chip_height_px());
            for (mask, tag) in [(&outcome.rule_mask, "rule"), (&outcome.opt_mask, "opt")] {
                let path = format!("{dir}/{}_{tag}.cshot", chip.name);
                let list = ShotList::new(mask.clone(), cw, ch, spec.pixel_nm());
                std::fs::write(&path, list.to_text())?;
                println!("wrote {path}");
            }
        }
        records.push(outcome.record);
    }
    let geom = ChipGeometry::new(1, 1, spec.tile_px);
    let report = ChipReport {
        suite: spec.name.clone(),
        tile_px: spec.tile_px,
        window_px: geom.window_px(),
        halo_px: geom.halo_px(),
        kernel_count: spec.kernel_count,
        chips: records,
    };

    let out = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("CHIP_RESULTS.json");
    std::fs::write(out, report.to_json_string())?;
    println!("wrote {out}");
    if let Some(md) = flags.get("md") {
        std::fs::write(md, report.markdown_table())?;
        println!("wrote {md}");
    }
    if let Some(golden_path) = flags.get("check") {
        let tol = parse_tolerance(flags)?;
        let golden = ChipReport::from_json_str(&std::fs::read_to_string(golden_path)?)
            .map_err(|e| format!("cannot load golden file {golden_path}: {e}"))?;
        let drifts = compare_chip_reports(&golden, &report, &tol);
        if drifts.is_empty() {
            println!(
                "golden check OK: {} chips within tolerance (rel {}, abs {}) of {golden_path}",
                report.chips.len(),
                tol.rel,
                tol.abs
            );
        } else {
            eprintln!("golden check FAILED against {golden_path}:");
            for d in &drifts {
                eprintln!("  {d}");
            }
            return Err(format!("{} metric(s) drifted beyond tolerance", drifts.len()).into());
        }
    }
    Ok(())
}

fn cmd_serve(flags: &Flags) -> CliResult {
    let config = cfaopc::serve::ServeConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        queue_capacity: flags
            .get("queue")
            .map(|s| s.parse())
            .transpose()?
            .unwrap_or(32),
        runners: flags
            .get("jobs")
            .map(|s| s.parse())
            .transpose()?
            .unwrap_or(0),
        default_timeout_ms: flags.get("timeout-ms").map(|s| s.parse()).transpose()?,
    };
    let server = cfaopc::serve::Server::bind(config)?;
    // Flush explicitly: when stdout is a pipe (scripts waiting for the
    // address), line buffering alone would sit on this until exit.
    use std::io::Write as _;
    println!("cfaopc serve: listening on {}", server.local_addr());
    std::io::stdout().flush()?;
    server.run()?;
    println!("cfaopc serve: shut down");
    Ok(())
}

fn cmd_evaluate(flags: &Flags) -> CliResult {
    let shots_path = flags.get("shots").ok_or("need --shots FILE.cshot")?;
    let list = ShotList::from_text(&std::fs::read_to_string(shots_path)?)?;
    let layout = load_layout(flags)?;
    let size = list.width;
    if list.height != size {
        return Err("non-square shot grids are not supported".into());
    }
    let sim = LithoSimulator::new(LithoConfig {
        size,
        kernel_count: 8,
        ..LithoConfig::default()
    })?;
    let target = layout.rasterize(size);
    let raster = list.mask.rasterize(size, size);
    let mut metrics = evaluate_mask(&sim, &raster, &target, &EpeConfig::default())?;
    metrics.shots = list.mask.shot_count();
    let relaxed = loss_only(
        &sim,
        &raster.to_real(),
        &target.to_real(),
        LossWeights::default(),
    )?;
    println!(
        "{} vs {}: L2 {:.0} nm², PVB {:.0} nm², EPE {}, #Shot {} (relaxed total {:.0})",
        shots_path, layout.name, metrics.l2, metrics.pvb, metrics.epe, metrics.shots, relaxed.total
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_space_and_equals_forms() {
        let flags = parse_flags(
            &args(&["--case", "3", "--size=256", "--method", "opt"]),
            FRACTURE_FLAGS,
        )
        .unwrap();
        assert_eq!(flags.get("case").map(String::as_str), Some("3"));
        assert_eq!(flags.get("size").map(String::as_str), Some("256"));
        assert_eq!(flags.get("method").map(String::as_str), Some("opt"));
    }

    #[test]
    fn unknown_flags_error_and_name_the_allowlist() {
        let err = parse_flags(&args(&["--sizr", "256"]), FRACTURE_FLAGS).unwrap_err();
        assert!(err.contains("--sizr"), "{err}");
        assert!(
            err.contains("--size"),
            "error should list valid flags: {err}"
        );
        // A flag valid for one subcommand is still unknown for another.
        let err = parse_flags(&args(&["--timing"]), FRACTURE_FLAGS).unwrap_err();
        assert!(err.contains("--timing"), "{err}");
    }

    #[test]
    fn stray_positionals_error() {
        let err = parse_flags(&args(&["RESULTS.json"]), EVAL_FLAGS).unwrap_err();
        assert!(err.contains("RESULTS.json"), "{err}");
    }

    #[test]
    fn switches_take_no_value_and_may_repeat() {
        let flags = parse_flags(
            &args(&["--timing", "--timing", "--check", "g.json"]),
            EVAL_FLAGS,
        )
        .unwrap();
        assert!(flags.contains_key("timing"));
        assert_eq!(flags.get("check").map(String::as_str), Some("g.json"));
        let err = parse_flags(&args(&["--timing=yes"]), EVAL_FLAGS).unwrap_err();
        assert!(err.contains("does not take a value"), "{err}");
    }

    #[test]
    fn valued_flags_require_values_and_reject_duplicates() {
        let err = parse_flags(&args(&["--suite"]), EVAL_FLAGS).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        // A following flag token is not a value.
        let err = parse_flags(&args(&["--suite", "--timing"]), EVAL_FLAGS).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        let err =
            parse_flags(&args(&["--suite", "tiny", "--suite", "small"]), EVAL_FLAGS).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn empty_args_parse_to_no_flags() {
        assert!(parse_flags(&[], SERVE_FLAGS).unwrap().is_empty());
    }

    #[test]
    fn chip_flags_accept_the_ci_invocation() {
        let flags = parse_flags(
            &args(&[
                "--suite",
                "chip-tiny",
                "--out=CHIP_RESULTS.json",
                "--check",
                "eval/golden_chip.json",
                "--shots-dir",
                "shots",
            ]),
            CHIP_FLAGS,
        )
        .unwrap();
        assert_eq!(flags.get("suite").map(String::as_str), Some("chip-tiny"));
        assert_eq!(flags.get("shots-dir").map(String::as_str), Some("shots"));
        // `--timing` belongs to eval, not chip.
        let err = parse_flags(&args(&["--timing"]), CHIP_FLAGS).unwrap_err();
        assert!(err.contains("--timing"), "{err}");
    }
}
