//! # cfaopc — fracturing-aware curvilinear ILT for circular e-beam mask writers
//!
//! A from-scratch Rust reproduction of *"Fracturing-aware Curvilinear ILT
//! via Circular E-beam Mask Writer"* (DAC 2024): inverse lithography that
//! emits masks already fractured into the overlapping variable-radius
//! circles of the circular e-beam writer.
//!
//! The facade re-exports every subsystem:
//!
//! * [`fft`] — self-contained 1-D/2-D FFT,
//! * [`grid`] — pixel geometry (rasterization, skeletons, morphology),
//! * [`litho`] — Hopkins/Abbe lithography simulation + manual adjoint,
//! * [`layouts`] — the ten benchmark tiles (Table 2 areas),
//! * [`ilt`] — pixel-level ILT engines (MOSAIC + SOTA-like baselines),
//! * [`fracture`] — rectangular fracturing, **CircleRule**, circle MRC,
//! * [`circleopt`] — **CircleOpt**, the paper's optimization-based method,
//! * [`metrics`] — L2 / PVB / EPE / shot count, result tables,
//! * [`eval`] — the sharded end-to-end evaluation harness behind
//!   `cfaopc eval` (suites, `RESULTS.json`, golden-file drift checks),
//! * [`chip`] — full-chip multi-tile decomposition behind `cfaopc chip`
//!   (halo windows, parallel per-tile pipelines, partition-of-unity seam
//!   stitching, cross-seam MRC, `CHIP_RESULTS.json`),
//! * [`viz`] — PGM/SVG rendering,
//! * [`trace`] — opt-in observability: hierarchical spans, atomic
//!   counters, and per-iteration [`trace::TelemetrySink`] records.
//!
//! # Quickstart
//!
//! ```
//! use cfaopc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small grid so this doc test stays fast; experiments use 512².
//! let sim = LithoSimulator::new(LithoConfig {
//!     size: 128,
//!     kernel_count: 4,
//!     ..LithoConfig::default()
//! })?;
//! let mut target = BitGrid::new(128, 128);
//! fill_rect(&mut target, Rect::new(56, 40, 64, 90));
//!
//! // Rule-based: pixel ILT, then fracture into circles.
//! let pixel = run_engine(&sim, &target, IltEngine::Mosaic, 4)?;
//! let circles = circle_rule(&pixel.mask_binary, &CircleRuleConfig::default(), 16.0);
//!
//! // Optimization-based: optimize the circles directly.
//! let opt = run_circleopt(
//!     &sim,
//!     &target,
//!     &CircleOptConfig { init_iterations: 2, circle_iterations: 2, ..CircleOptConfig::default() },
//! )?;
//! println!("CircleRule {} shots, CircleOpt {} shots", circles.shot_count(), opt.shot_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cfaopc_chip as chip;
pub use cfaopc_core as circleopt;
pub use cfaopc_ebeam as ebeam;
pub use cfaopc_eval as eval;
pub use cfaopc_fft as fft;
pub use cfaopc_fracture as fracture;
pub use cfaopc_grid as grid;
pub use cfaopc_ilt as ilt;
pub use cfaopc_layouts as layouts;
pub use cfaopc_litho as litho;
pub use cfaopc_metrics as metrics;
pub use cfaopc_serve as serve;
pub use cfaopc_trace as trace;
pub use cfaopc_viz as viz;

/// One-stop imports for applications.
pub mod prelude {
    pub use cfaopc_chip::{
        compare_chip_reports, run_chip_case, run_chip_case_full, run_chip_suite, ChipGeometry,
        ChipReport, ChipSpec,
    };
    pub use cfaopc_core::{
        compose, compose_soft, run_circleopt, run_circleopt_from, run_circleopt_from_traced,
        run_circleopt_traced, ste, CircleOptConfig, CircleOptResult, CircleParams, ComposeConfig,
        Composition, SparseCircles,
    };
    pub use cfaopc_ebeam::{
        correct_proximity, intended_pattern, DosedShot, EbeamPsf, PecConfig, WriterModel,
    };
    pub use cfaopc_eval::{
        compare_reports, run_suite, run_suite_timed, CaseRecord, EvalReport, SuiteSpec, Tolerance,
    };
    pub use cfaopc_fracture::{
        check_mrc, circle_rule, rect_fracture, rect_shot_count, CircleRuleConfig, CircleShot,
        CircularMask, MrcRules, ShotList,
    };
    pub use cfaopc_grid::{fill_circle, fill_rect, BitGrid, Grid2D, Point, Rect};
    pub use cfaopc_ilt::{
        run_engine, run_levelset_ilt, run_pixel_ilt, IltEngine, IltResult, LevelSetConfig,
        PixelIltConfig,
    };
    pub use cfaopc_layouts::{
        all_cases, benchmark_case, generate_chip, generate_layout, ChipGeneratorConfig, ChipLayout,
        GeneratorConfig, Layout, PAPER_AREAS_NM2, TILE_NM,
    };
    pub use cfaopc_litho::{
        bossung_surface, measure_cd, standard_sweep, CdAxis, CdProbe, LithoConfig, LithoSimulator,
        LossWeights, ProcessCorner,
    };
    pub use cfaopc_metrics::{
        epe_report, epe_violations, evaluate_mask, l2_error, measure_meef, pvb, EpeConfig,
        EpeReport, MaskMetrics, MeefReport, MetricRow, MetricTable,
    };
    pub use cfaopc_trace::{IterationRecord, JsonlSink, MemorySink, Stage, TelemetrySink};
    pub use cfaopc_viz::{save_pgm, SvgScene};
}
