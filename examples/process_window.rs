//! Process-window study: the depth-of-focus argument behind the circular
//! e-beam writer (paper ref. [7]) measured on our own masks.
//!
//! Compares the focus–exposure window of (a) the raw target used as a
//! mask, and (b) the CircleOpt mask, for the isolated contact of
//! benchmark case 10. Writes a Bossung CSV.
//!
//! ```sh
//! cargo run --release --example process_window
//! ```

use cfaopc::litho::{bossung_surface, standard_sweep, CdAxis, CdProbe};
use cfaopc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = LithoConfig {
        size: 256,
        kernel_count: 8,
        ..LithoConfig::default()
    };
    let sim = LithoSimulator::new(config)?;
    let n = sim.size();
    let target = benchmark_case(10)?.rasterize(n);

    // The 320 nm square's horizontal CD through its center.
    let probe = CdProbe {
        at: Point::new(n as i32 / 2, n as i32 / 2),
        axis: CdAxis::Horizontal,
    };
    let cd_target = 320.0;
    let (focus, doses) = standard_sweep(80.0, 4, 0.04, 4);

    let opt = run_circleopt(
        &sim,
        &target,
        &CircleOptConfig {
            init_iterations: 10,
            circle_iterations: 30,
            gamma: 3.0 * (n as f64 / 2048.0).powi(2),
            ..CircleOptConfig::default()
        },
    )?;

    let out_dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(out_dir)?;
    let mut csv = String::from("mask,defocus_nm,dose,cd_nm\n");

    println!("=== process window (case10, CD target {cd_target} nm ±10%) ===\n");
    for (name, mask) in [("raw-target", &target), ("circleopt", &opt.mask_raster)] {
        let surface = bossung_surface(&sim, mask, &probe, &focus, &doses)?;
        for p in &surface.points {
            csv.push_str(&format!(
                "{name},{},{:.3},{}\n",
                p.defocus_nm,
                p.dose,
                p.cd_nm.map_or(String::from("fail"), |c| format!("{c:.1}")),
            ));
        }
        let window = surface.window_fraction(cd_target, 0.10);
        println!(
            "{name:>12}: {:.0}% of the focus-exposure sweep holds CD within ±10%",
            window * 100.0
        );
        let through_focus: Vec<String> = focus
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let cd = surface.cd(i, doses.len() / 2);
                format!(
                    "{f:>4.0}nm:{}",
                    cd.map_or("  fail".into(), |c| format!("{c:>6.1}"))
                )
            })
            .collect();
        println!(
            "{:>12}  CD through focus @nominal dose: {}",
            "",
            through_focus.join("  ")
        );
    }
    let path = out_dir.join("process_window.csv");
    std::fs::write(&path, csv)?;
    println!("\n-> {}", path.display());
    println!(
        "({} circular shots in the CircleOpt mask)",
        opt.shot_count()
    );
    Ok(())
}
