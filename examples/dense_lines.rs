//! Dense line array (benchmark case 3 — the paper's hardest case):
//! sweep the CircleRule sample distance and watch the shot count /
//! quality trade-off that motivates CircleOpt (paper Figure 7).
//!
//! ```sh
//! cargo run --release --example dense_lines
//! ```

use cfaopc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = LithoConfig {
        size: 256,
        kernel_count: 8,
        ..LithoConfig::default()
    };
    let pixel_nm = config.pixel_nm();
    let sim = LithoSimulator::new(config)?;
    let target = benchmark_case(3)?.rasterize(sim.size());
    let epe_cfg = EpeConfig::default();

    println!("=== dense line array (case3): sample-distance sweep ===\n");
    let pixel = run_engine(&sim, &target, IltEngine::MultiIltLike, 20)?;
    println!(
        "pixel-ILT reference: {} VSB rectangle shots\n",
        rect_shot_count(&pixel.mask_binary)
    );

    println!(
        "{:>12} {:>18} {:>12} {:>12} {:>6}",
        "m (nm)", "method", "L2+PVB (nm^2)", "#Shot", "EPE"
    );
    for m_nm in [24.0, 32.0, 40.0] {
        let rule_cfg = CircleRuleConfig {
            sample_distance_nm: m_nm,
            ..CircleRuleConfig::default()
        };
        // CircleRule on the fixed pixel mask.
        let circles = circle_rule(&pixel.mask_binary, &rule_cfg, pixel_nm);
        let raster = circles.rasterize(sim.size(), sim.size());
        let mr = evaluate_mask(&sim, &raster, &target, &epe_cfg)?;
        println!(
            "{:>12} {:>18} {:>12.0} {:>12} {:>6}",
            m_nm,
            "CircleRule",
            mr.l2 + mr.pvb,
            circles.shot_count(),
            mr.epe
        );

        // CircleOpt with the same reparameterization density.
        let opt = run_circleopt(
            &sim,
            &target,
            &CircleOptConfig {
                init_iterations: 10,
                circle_iterations: 25,
                rule: rule_cfg,
                ..CircleOptConfig::default()
            },
        )?;
        let mo = evaluate_mask(&sim, &opt.mask_raster, &target, &epe_cfg)?;
        println!(
            "{:>12} {:>18} {:>12.0} {:>12} {:>6}",
            m_nm,
            "CircleOpt",
            mo.l2 + mo.pvb,
            opt.shot_count(),
            mo.epe
        );
    }
    println!("\nExpected shape (paper Fig. 7): shot count falls as m grows;");
    println!("CircleOpt is flatter in both quality and shot count.");
    Ok(())
}
