//! Stress test on generated layouts: run the full CFAOPC flow over a
//! batch of seeded random M1-style tiles (geometry the ten benchmark
//! cases do not cover) and verify invariants hold on every one.
//!
//! ```sh
//! cargo run --release --example stress_random -- 5   # number of seeds
//! ```

use cfaopc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let config = LithoConfig {
        size: 256,
        kernel_count: 8,
        ..LithoConfig::default()
    };
    let pixel_nm = config.pixel_nm();
    let sim = LithoSimulator::new(config)?;
    let n = sim.size();
    let gamma = 3.0 * (n as f64 / 2048.0).powi(2);
    let (r_min, r_max) = CircleRuleConfig::default().radius_range_px(pixel_nm);

    let mut table = MetricTable::new(format!("random stress ({seeds} tiles)"));
    for seed in 0..seeds {
        let layout = generate_layout(seed, &GeneratorConfig::default());
        let target = layout.rasterize(n);
        let result = run_circleopt(
            &sim,
            &target,
            &CircleOptConfig {
                init_iterations: 10,
                circle_iterations: 25,
                gamma,
                ..CircleOptConfig::default()
            },
        )?;
        // Invariants: every shot within writer limits, raster = union.
        let report = check_mrc(
            &result.mask,
            &MrcRules {
                r_min,
                r_max,
                min_spacing: 0.0,
            },
        );
        assert!(report.is_clean(), "seed {seed}: MRC violations");
        assert_eq!(result.mask_raster, result.mask.rasterize(n, n));

        let mut metrics = evaluate_mask(&sim, &result.mask_raster, &target, &EpeConfig::default())?;
        metrics.shots = result.shot_count();
        table.push(MetricRow::new(layout.name, metrics));
    }
    print!("{table}");
    println!("all tiles passed the MRC and union invariants");
    Ok(())
}
