//! Quickstart: optimize one pattern with both CFAOPC methods and print
//! the paper's four metrics for each.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cfaopc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 256² grid over the 2048 nm tile → 8 nm pixels. Benchmarks use
    // 512²; this keeps the quickstart under a minute on a laptop.
    let config = LithoConfig {
        size: 256,
        kernel_count: 8,
        ..LithoConfig::default()
    };
    let pixel_nm = config.pixel_nm();
    let sim = LithoSimulator::new(config)?;

    // Benchmark case 4: an isolated wire plus a stub.
    let target = benchmark_case(4)?.rasterize(sim.size());
    let epe_cfg = EpeConfig::default();

    println!(
        "=== CFAOPC quickstart: case4 @ {0}x{0} px ===\n",
        sim.size()
    );

    // --- Method 1: CircleRule on a pixel-ILT mask (paper §3) -----------
    let pixel = run_engine(&sim, &target, IltEngine::MultiIltLike, 20)?;
    let rule_cfg = CircleRuleConfig::default();
    let circles = circle_rule(&pixel.mask_binary, &rule_cfg, pixel_nm);
    let raster = circles.rasterize(sim.size(), sim.size());
    let mut m1 = evaluate_mask(&sim, &raster, &target, &epe_cfg)?;
    m1.shots = circles.shot_count();

    // For reference: the same pixel mask written on a VSB machine.
    let vsb_shots = rect_shot_count(&pixel.mask_binary);

    // --- Method 2: CircleOpt (paper §4) ---------------------------------
    let opt_cfg = CircleOptConfig {
        init_iterations: 10,
        circle_iterations: 30,
        ..CircleOptConfig::default()
    };
    let opt = run_circleopt(&sim, &target, &opt_cfg)?;
    let mut m2 = evaluate_mask(&sim, &opt.mask_raster, &target, &epe_cfg)?;
    m2.shots = opt.shot_count();

    let mut table = MetricTable::new("quickstart (case4)");
    table.push(MetricRow::new("MultiILT+CircleRule", m1));
    table.push(MetricRow::new("CircleOpt", m2));
    print!("{table}");
    println!("\nMultiILT mask on a VSB writer would need {vsb_shots} rectangle shots.");

    // Every CircleOpt shot obeys the writer's radius rules by construction.
    let (r_min, r_max) = opt_cfg.rule.radius_range_px(pixel_nm);
    let report = check_mrc(
        &opt.mask,
        &MrcRules {
            r_min,
            r_max,
            min_spacing: 0.0,
        },
    );
    println!(
        "CircleOpt MRC radius check: {}",
        if report.is_clean() {
            "clean"
        } else {
            "VIOLATIONS"
        }
    );
    Ok(())
}
