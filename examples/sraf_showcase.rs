//! SRAF showcase: an isolated contact (benchmark case 10) printed with
//! and without sub-resolution assist features, and what each costs in
//! circular shots. Renders SVG artifacts next to the binary.
//!
//! ```sh
//! cargo run --release --example sraf_showcase
//! ```

use cfaopc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = LithoConfig {
        size: 256,
        kernel_count: 8,
        ..LithoConfig::default()
    };
    let pixel_nm = config.pixel_nm();
    let sim = LithoSimulator::new(config)?;
    let n = sim.size();
    let target = benchmark_case(10)?.rasterize(n);
    let epe_cfg = EpeConfig::default();
    let out_dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(out_dir)?;

    println!("=== SRAF showcase (case10: isolated 320nm square) ===\n");

    // SRAF-free baseline: DevelSet-like (domain restricted to the target).
    let plain = run_engine(&sim, &target, IltEngine::DevelSetLike, 25)?;
    // SRAF-rich: MultiILT-like (full-domain, assists can nucleate).
    let sraf = run_engine(&sim, &target, IltEngine::MultiIltLike, 25)?;

    for (name, result) in [
        ("no-SRAF (DevelSet-like)", &plain),
        ("SRAF (MultiILT-like)", &sraf),
    ] {
        let circles = circle_rule(&result.mask_binary, &CircleRuleConfig::default(), pixel_nm);
        let raster = circles.rasterize(n, n);
        let mut metrics = evaluate_mask(&sim, &raster, &target, &epe_cfg)?;
        metrics.shots = circles.shot_count();
        println!(
            "{name:>24}: L2 {:>9.0}  PVB {:>9.0}  EPE {:>2}  #Shot {:>4}",
            metrics.l2, metrics.pvb, metrics.epe, metrics.shots
        );

        let printed = sim.print(&raster, ProcessCorner::Nominal)?;
        let svg = SvgScene::new(n, n)
            .mask(&target, "#4477aa", 0.35)
            .circles(&circles, "#cc3311")
            .contour(&printed, "#228833");
        let file = out_dir.join(format!(
            "sraf_{}.svg",
            name.split_whitespace()
                .next()
                .unwrap()
                .trim_end_matches(',')
        ));
        svg.save(&file)?;
        println!("{:>24}  wrote {}", "", file.display());
    }

    println!("\nSRAFs widen the process window (lower PVB) at the price of");
    println!("extra shots — the trade-off the circular writer makes cheap.");
    Ok(())
}
