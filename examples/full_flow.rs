//! Full CFAOPC flow on one benchmark tile, end to end, with artifacts:
//! layout → GLP text → raster target → CircleOpt → circular mask →
//! lithography prints at all corners → metrics → SVG + PGM dumps.
//!
//! ```sh
//! cargo run --release --example full_flow -- 2     # benchmark case 2
//! ```

use cfaopc::prelude::*;
use cfaopc_litho::loss_only;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let config = LithoConfig {
        size: 256,
        kernel_count: 8,
        ..LithoConfig::default()
    };
    let pixel_nm = config.pixel_nm();
    let sim = LithoSimulator::new(config)?;
    let n = sim.size();
    let out_dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(out_dir)?;

    // 1. Layout and its interchange format.
    let layout = benchmark_case(case)?;
    let glp_path = out_dir.join(format!("{}.glp", layout.name));
    std::fs::write(&glp_path, layout.to_glp())?;
    println!(
        "[1] {} ({} nm² over {} rects) -> {}",
        layout.name,
        layout.area_nm2(),
        layout.rects.len(),
        glp_path.display()
    );

    // 2. Raster target.
    let target = Layout::from_glp(&std::fs::read_to_string(&glp_path)?)?.rasterize(n);
    println!(
        "[2] rasterized at {n}x{n} px ({pixel_nm} nm/px): {} px set",
        target.count_ones()
    );

    // 3. CircleOpt.
    let opt_cfg = CircleOptConfig {
        init_iterations: 10,
        circle_iterations: 30,
        ..CircleOptConfig::default()
    };
    let result = run_circleopt(&sim, &target, &opt_cfg)?;
    println!(
        "[3] CircleOpt: {} shots after {} circle iterations (stage-1 mask had {} px)",
        result.shot_count(),
        result.history.len(),
        result.init_mask.count_ones()
    );
    if let (Some(first), Some(last)) = (result.history.first(), result.history.last()) {
        println!(
            "    relaxed loss {:.0} -> {:.0} (L2 {:.0} -> {:.0})",
            first.loss.total, last.loss.total, first.loss.l2, last.loss.l2
        );
    }

    // 4. Prints at every process corner.
    let [nominal, pmax, pmin] = sim.print_corners(&result.mask_raster)?;
    println!(
        "[4] printed px — nominal {}, max-dose {}, defocused-min {}",
        nominal.count_ones(),
        pmax.count_ones(),
        pmin.count_ones()
    );

    // 5. Metrics.
    let mut metrics = evaluate_mask(&sim, &result.mask_raster, &target, &EpeConfig::default())?;
    metrics.shots = result.shot_count();
    let relaxed = loss_only(
        &sim,
        &result.mask_raster.to_real(),
        &target.to_real(),
        LossWeights::default(),
    )?;
    println!(
        "[5] L2 {:.0} nm²  PVB {:.0} nm²  EPE {}  #Shot {}  (relaxed total {:.0})",
        metrics.l2, metrics.pvb, metrics.epe, metrics.shots, relaxed.total
    );

    // 6. Artifacts.
    let svg_path = out_dir.join(format!("{}_circleopt.svg", layout.name));
    SvgScene::new(n, n)
        .mask(&target, "#4477aa", 0.35)
        .circles(&result.mask, "#cc3311")
        .contour(&nominal, "#228833")
        .save(&svg_path)?;
    let aerial = sim.aerial_image(&result.mask_raster.to_real(), ProcessCorner::Nominal)?;
    let pgm_path = out_dir.join(format!("{}_aerial.pgm", layout.name));
    save_pgm(&aerial, &pgm_path)?;
    println!(
        "[6] wrote {} and {}",
        svg_path.display(),
        pgm_path.display()
    );
    Ok(())
}
