//! Offline stub of `rand` 0.8.
//!
//! The workspace uses rand only for *deterministic, seeded* synthetic data
//! (layout generation, e-beam shot jitter), always through
//! `StdRng::seed_from_u64`. This stub supplies that surface — `SeedableRng`,
//! `Rng::{gen, gen_range, gen_bool}` over integer/float ranges — backed by
//! SplitMix64. Streams differ from upstream `StdRng` (ChaCha12), which is
//! fine: callers only rely on determinism per seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the subset of `rand::SeedableRng` used
/// in-tree.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that `Rng::gen` can produce.
pub trait Generable {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Generable for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Generable for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Generable for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Converts a uniform `u64` to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`bool`, `u64`, or `f64` in `[0,1)`).
    fn gen<T: Generable>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// Uniform value in `range` (half-open or inclusive int/float ranges).
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded RNG (SplitMix64 core in this stub).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele et al.): passes BigCrush, one add + two xors.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(3i32..=9);
            assert!((3..=9).contains(&w));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
