//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `prop_oneof!`, the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, and
//! [`collection::vec`] — as a deterministic generate-and-check runner.
//!
//! Differences from upstream, deliberately accepted for the offline build:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering instead of a minimized counterexample.
//! * **Deterministic seeding.** Each test derives its RNG seed from its own
//!   name, so runs are reproducible without `.proptest-regressions` files
//!   (which are ignored).
//! * Only the strategies used in-tree are implemented: primitive ranges,
//!   tuples up to arity 6, `collection::vec`, `Just`, unions, map/flat-map.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not the whole process) so the runner can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discards the current case (without counting it) when a precondition does
/// not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: repeatedly samples the argument strategies and
/// runs the body, failing on the first counterexample (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr;
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(64);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest stub: too many rejected cases in {} ({} attempts for {} cases)",
                        stringify!($name), attempts, config.cases,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)*
                    let dbg_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed after {} cases: {}\n  inputs: {}\n  (offline proptest stub: no shrinking)",
                                stringify!($name), accepted, msg, dbg_inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}
