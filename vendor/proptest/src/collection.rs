//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec`]: an exact `usize` or a
/// (half-open / inclusive) `usize` range, mirroring `proptest`'s `SizeRange`
/// conversions used in this workspace.
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.usize_below(self.end - self.start)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty vec size range");
        lo + rng.usize_below(hi - lo + 1)
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// comes from `size`.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
