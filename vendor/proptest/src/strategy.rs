//! Value-generation strategies (no shrinking in this offline stub).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Mirrors `proptest::strategy::Strategy`, minus shrinking: `generate`
/// replaces `new_tree` + simplification.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from every generated value.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (the runner retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "proptest stub: filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy; produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies; built by [`crate::prop_oneof!`].
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
