//! Test-runner configuration, case outcome, and the deterministic RNG.

/// Per-test configuration; only `cases` is honored by the stub runner.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the stub trims to keep the offline
        // suite fast while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property's precondition (`prop_assume!`) rejected the inputs.
    Reject(String),
    /// An assertion failed: the property does not hold for these inputs.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-test RNG (SplitMix64 seeded from the test's name via
/// FNV-1a, so every run of a given test sees the same cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test identifier.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next uniform 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "usize_below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}
