//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile without network access.
//! No code in this workspace performs serde-based (de)serialization; JSON
//! reports are emitted by hand in `cfaopc-metrics`/`cfaopc-bench`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
