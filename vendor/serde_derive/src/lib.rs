//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as forward-looking
//! annotations — nothing in-tree serializes through serde (reports are written
//! as hand-built JSON). This stub lets `#[derive(Serialize, Deserialize)]`
//! and `#[serde(...)]` helper attributes compile in the offline container
//! without pulling in `syn`/`quote`; it expands to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers) and emits no
/// code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers) and emits
/// no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
