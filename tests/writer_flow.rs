//! Integration: CircleOpt output → shot list → e-beam writer, end to end.

use cfaopc::prelude::*;

#[test]
fn circleopt_shots_survive_the_writer() {
    let sim = LithoSimulator::new(LithoConfig {
        size: 256,
        kernel_count: 6,
        ..LithoConfig::default()
    })
    .unwrap();
    let n = sim.size();
    let px = sim.config().pixel_nm();
    let target = benchmark_case(8).unwrap().rasterize(n);
    let result = run_circleopt(
        &sim,
        &target,
        &CircleOptConfig {
            init_iterations: 8,
            circle_iterations: 12,
            gamma: 3.0 * (n as f64 / 2048.0).powi(2),
            ..CircleOptConfig::default()
        },
    )
    .unwrap();
    assert!(result.shot_count() > 0);

    // Round-trip through the writer interchange format.
    let list = ShotList::new(result.mask.clone(), n, n, px);
    let parsed = ShotList::from_text(&list.to_text()).unwrap();
    assert_eq!(parsed.mask, result.mask);

    // Write the mask on the simulated e-beam machine with the paper's
    // short-range blur. Masks are written at 4x magnification, so the
    // writer grid pitch is 4x the wafer-scale pitch.
    let writer = WriterModel::new(n, px * 4.0, EbeamPsf::forward_only(30.0)).unwrap();
    let shots = WriterModel::dose_circles(&parsed.mask);
    let intended = intended_pattern(&shots, n);
    let corrected = correct_proximity(&writer, &shots, &PecConfig::default()).shots;
    let err = writer.writing_error(&corrected, &intended);
    assert!(
        err < intended.count_ones() / 4,
        "writing error {err} vs intent {} px",
        intended.count_ones()
    );

    // And the written mask still prints the target acceptably: its
    // lithography L2 stays within 2x of the directly-rasterized mask's.
    let written = writer.write(&corrected);
    let direct = evaluate_mask(&sim, &result.mask_raster, &target, &EpeConfig::default()).unwrap();
    let via_writer = evaluate_mask(&sim, &written, &target, &EpeConfig::default()).unwrap();
    assert!(
        via_writer.l2 <= direct.l2 * 2.0 + 2000.0,
        "writing degraded printing too much: {} vs {}",
        via_writer.l2,
        direct.l2
    );
}

#[test]
fn meef_of_an_optimized_mask_is_finite() {
    let sim = LithoSimulator::new(LithoConfig {
        size: 128,
        kernel_count: 6,
        ..LithoConfig::default()
    })
    .unwrap();
    let n = sim.size();
    let target = benchmark_case(10).unwrap().rasterize(n);
    let probe = CdProbe {
        at: Point::new(n as i32 / 2, n as i32 / 2),
        axis: CdAxis::Horizontal,
    };
    let result = run_circleopt(
        &sim,
        &target,
        &CircleOptConfig {
            init_iterations: 6,
            circle_iterations: 8,
            gamma: 3.0 * (n as f64 / 2048.0).powi(2),
            ..CircleOptConfig::default()
        },
    )
    .unwrap();
    let meef = measure_meef(&sim, &result.mask_raster, &probe).unwrap();
    if let Some(report) = meef {
        assert!(report.meef.is_finite());
        assert!(report.cd_nominal_nm > 0.0);
    }
}
