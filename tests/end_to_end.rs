//! Cross-crate integration tests: the full CFAOPC pipelines on real
//! benchmark tiles at reduced resolution.

use cfaopc::prelude::*;

fn test_sim(size: usize) -> LithoSimulator {
    LithoSimulator::new(LithoConfig {
        size,
        kernel_count: 6,
        ..LithoConfig::default()
    })
    .expect("valid test configuration")
}

#[test]
fn circle_rule_pipeline_on_case4() {
    let sim = test_sim(256);
    let pixel_nm = sim.config().pixel_nm();
    let n = sim.size();
    let target = benchmark_case(4).unwrap().rasterize(n);

    let pixel = run_engine(&sim, &target, IltEngine::MultiIltLike, 12).unwrap();
    assert!(pixel.mask_binary.count_ones() > 0);

    let circles = circle_rule(&pixel.mask_binary, &CircleRuleConfig::default(), pixel_nm);
    assert!(circles.shot_count() > 0);

    // The fractured mask still prints: L2 finite, EPE bounded by the
    // total sample count.
    let raster = circles.rasterize(n, n);
    let metrics = evaluate_mask(&sim, &raster, &target, &EpeConfig::default()).unwrap();
    assert!(metrics.l2 > 0.0 && metrics.l2.is_finite());
    assert!(metrics.pvb >= 0.0);
}

#[test]
fn circles_beat_rectangles_at_mask_writer_resolution() {
    // The Figure 1 claim lives at the writer's native 1 nm/px scale,
    // where every curved boundary row costs a fresh VSB rectangle.
    // Build a genuinely curvilinear mask (disks + a rounded bar) at
    // 1 nm/px and fracture it both ways.
    let n = 512;
    let mut mask = BitGrid::new(n, n);
    fill_circle(&mut mask, Point::new(120, 120), 60);
    fill_circle(&mut mask, Point::new(300, 140), 45);
    // Rounded-end bar: a rectangle capped with disks.
    fill_rect(&mut mask, Rect::new(100, 320, 400, 380));
    fill_circle(&mut mask, Point::new(100, 350), 30);
    fill_circle(&mut mask, Point::new(400, 350), 30);

    let rects = rect_shot_count(&mask);
    let circles = circle_rule(&mask, &CircleRuleConfig::default(), 1.0);
    assert!(
        circles.shot_count() * 3 < rects,
        "circles {} should be well under a third of rectangles {}",
        circles.shot_count(),
        rects
    );
}

#[test]
fn circleopt_pipeline_on_case4() {
    let sim = test_sim(256);
    let n = sim.size();
    let pixel_nm = sim.config().pixel_nm();
    let target = benchmark_case(4).unwrap().rasterize(n);

    let cfg = CircleOptConfig {
        init_iterations: 8,
        circle_iterations: 12,
        ..CircleOptConfig::default()
    };
    let result = run_circleopt(&sim, &target, &cfg).unwrap();
    assert!(result.shot_count() > 0);

    // The mask is a pure union of in-range circles (CFAOPC constraint).
    let (r_min, r_max) = cfg.rule.radius_range_px(pixel_nm);
    let report = check_mrc(
        &result.mask,
        &MrcRules {
            r_min,
            r_max,
            min_spacing: 0.0,
        },
    );
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(result.mask_raster, result.mask.rasterize(n, n));

    // It prints something sensible.
    let metrics = evaluate_mask(&sim, &result.mask_raster, &target, &EpeConfig::default()).unwrap();
    assert!(metrics.l2.is_finite());
    let printed = sim
        .print(&result.mask_raster, ProcessCorner::Nominal)
        .unwrap();
    assert!(printed.count_ones() > 0, "CircleOpt mask prints nothing");
}

#[test]
fn layout_glp_roundtrip_feeds_the_pipeline() {
    let layout = benchmark_case(8).unwrap();
    let text = layout.to_glp();
    let parsed = Layout::from_glp(&text).unwrap();
    assert_eq!(parsed.area_nm2(), PAPER_AREAS_NM2[7]);
    let a = layout.rasterize(256);
    let b = parsed.rasterize(256);
    assert_eq!(a, b);
}

#[test]
fn all_cases_rasterize_and_fracture() {
    for layout in all_cases() {
        let mask = layout.rasterize(256);
        assert!(mask.count_ones() > 0, "{} rasterized empty", layout.name);
        let circles = circle_rule(&mask, &CircleRuleConfig::default(), 8.0);
        assert!(
            circles.shot_count() > 0,
            "{} fractured to zero shots",
            layout.name
        );
        // Every raster pixel of the circle union lies close to the
        // original mask (cover-rate guarantee keeps circles mostly
        // inside).
        let raster = circles.rasterize(256, 256);
        let inside = raster.intersection_count(&mask);
        assert!(
            inside as f64 >= 0.5 * raster.count_ones() as f64,
            "{}: circles wander far outside the mask",
            layout.name
        );
    }
}

#[test]
fn metric_table_aggregates_pipeline_rows() {
    let sim = test_sim(128);
    let n = sim.size();
    let mut table = MetricTable::new("integration");
    for case in [4usize, 10] {
        let target = benchmark_case(case).unwrap().rasterize(n);
        let metrics = evaluate_mask(&sim, &target, &target, &EpeConfig::default()).unwrap();
        table.push(MetricRow::new(format!("case{case}"), metrics));
    }
    assert_eq!(table.rows.len(), 2);
    let csv = table.to_csv();
    assert!(csv.lines().count() == 4);
    assert!(table.to_string().contains("average"));
}
