//! Thread-count invariance of the metrics layer.
//!
//! `epe_report` walks sample sites in a fixed order and `evaluate_mask`
//! only consumes bit-identical litho outputs, so every number they
//! produce must be byte-for-byte independent of the worker pool size.
//! Following the litho concurrency test, a single umbrella test pins
//! `CFAOPC_THREADS=4` before the pool exists and compares the pooled
//! run against a forced fully-serial run of the same process.

use cfaopc_fft::parallel::{with_worker_limit, worker_count};
use cfaopc_layouts::benchmark_case;
use cfaopc_litho::{LithoConfig, LithoSimulator, ProcessCorner};
use cfaopc_metrics::{epe_report, evaluate_mask, EpeConfig};

#[test]
fn metrics_are_bit_identical_serial_vs_parallel() {
    std::env::set_var("CFAOPC_THREADS", "4");
    assert_eq!(worker_count(), 4, "CFAOPC_THREADS must win at pool setup");

    let sim = LithoSimulator::new(LithoConfig::fast_test()).unwrap();
    let n = sim.size();
    let pixel_nm = sim.config().pixel_nm();
    let target = benchmark_case(4).unwrap().rasterize(n);
    let printed = sim.print(&target, ProcessCorner::Nominal).unwrap();
    let config = EpeConfig::default();

    let parallel = epe_report(&printed, &target, &config, pixel_nm);
    let serial = with_worker_limit(1, || epe_report(&printed, &target, &config, pixel_nm));
    assert_eq!(parallel.sites, serial.sites);
    assert_eq!(parallel.violations, serial.violations);
    let pbits: Vec<u64> = parallel
        .displacements_nm
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let sbits: Vec<u64> = serial
        .displacements_nm
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(pbits, sbits, "EPE displacements depend on thread count");

    // The full metric bundle goes through print_corners (three aerial
    // images on the pool); its floats must not move either.
    let par_metrics = evaluate_mask(&sim, &target, &target, &config).unwrap();
    let ser_metrics = with_worker_limit(1, || {
        evaluate_mask(&sim, &target, &target, &config).unwrap()
    });
    assert_eq!(par_metrics.l2.to_bits(), ser_metrics.l2.to_bits());
    assert_eq!(par_metrics.pvb.to_bits(), ser_metrics.pvb.to_bits());
    assert_eq!(par_metrics.epe, ser_metrics.epe);
    assert_eq!(par_metrics.shots, ser_metrics.shots);
}
