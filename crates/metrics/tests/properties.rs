//! Property-based tests for the evaluation metrics.

use cfaopc_grid::{dilate, fill_rect, BitGrid, Rect, Structuring};
use cfaopc_metrics::{epe_violations, l2_error, pvb, sample_sites, EpeConfig};
use proptest::prelude::*;

const N: usize = 96;

fn arb_target() -> impl Strategy<Value = BitGrid> {
    proptest::collection::vec((8i32..80, 8i32..80, 6i32..24, 6i32..24), 1..4).prop_map(|v| {
        let mut t = BitGrid::new(N, N);
        for (x, y, w, h) in v {
            fill_rect(&mut t, Rect::new(x, y, x + w, y + h));
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn l2_is_a_metric(a in arb_target(), b in arb_target()) {
        prop_assert_eq!(l2_error(&a, &a, 4.0), 0.0);
        prop_assert_eq!(l2_error(&a, &b, 4.0), l2_error(&b, &a, 4.0));
        prop_assert!(l2_error(&a, &b, 4.0) >= 0.0);
    }

    #[test]
    fn pvb_symmetry_and_pixel_scaling(a in arb_target(), b in arb_target()) {
        prop_assert_eq!(pvb(&a, &b, 2.0), pvb(&b, &a, 2.0));
        prop_assert!((pvb(&a, &b, 4.0) - 4.0 * pvb(&a, &b, 2.0)).abs() < 1e-9);
    }

    #[test]
    fn perfect_print_never_violates_epe(t in arb_target()) {
        prop_assert_eq!(epe_violations(&t, &t, &EpeConfig::default(), 4.0), 0);
    }

    #[test]
    fn empty_print_violates_every_site(t in arb_target()) {
        let cfg = EpeConfig::default();
        let sites = sample_sites(&t, &cfg, 4.0).len();
        let empty = BitGrid::new(N, N);
        prop_assert_eq!(epe_violations(&empty, &t, &cfg, 4.0), sites);
    }

    #[test]
    fn violations_grow_monotonically_with_undersizing(t in arb_target()) {
        // Shrinking the print more can only add violations.
        let cfg = EpeConfig::default();
        let mut prev = epe_violations(&t, &t, &cfg, 4.0);
        for r in 1..=6 {
            let eroded = cfaopc_grid::erode(&t, Structuring::Square(r));
            let v = epe_violations(&eroded, &t, &cfg, 4.0);
            prop_assert!(v >= prev, "erode {r}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn sample_sites_lie_on_the_boundary(t in arb_target()) {
        let boundary = cfaopc_grid::boundary_pixels(&t);
        for s in sample_sites(&t, &EpeConfig::default(), 4.0) {
            prop_assert!(boundary.at(s.site), "site {} not on boundary", s.site);
        }
    }

    #[test]
    fn small_uniform_bloat_within_constraint_is_clean(
        x in 8i32..60, y in 8i32..60, w in 6i32..24, h in 6i32..24,
    ) {
        // 4 nm/px, constraint 15 nm ⇒ a 1-px (4 nm) uniform bloat passes.
        // Single shape only: dilating multiple shapes can bridge a gap,
        // which legitimately displaces edges beyond the constraint.
        let mut t = BitGrid::new(N, N);
        fill_rect(&mut t, Rect::new(x, y, x + w, y + h));
        let fat = dilate(&t, Structuring::Square(1));
        prop_assert_eq!(epe_violations(&fat, &t, &EpeConfig::default(), 4.0), 0);
    }
}
