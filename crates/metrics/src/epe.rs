//! Edge placement error (paper §2.3).
//!
//! Sample points are placed along every horizontal and vertical edge of
//! the target shapes; a point violates when the printed contour deviates
//! from the target edge by more than the EPE constraint. Following common
//! ILT evaluation practice (and the ICCAD-13 convention the paper uses),
//! the check probes the printed image at `constraint` nanometres inside
//! and outside the target edge along its normal: the inner probe must
//! print, the outer probe must not.

use cfaopc_grid::{BitGrid, Point};
use serde::{Deserialize, Serialize};

/// EPE measurement parameters, in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpeConfig {
    /// Maximum tolerated edge displacement (ICCAD-13 uses 15 nm).
    pub constraint_nm: f64,
    /// Spacing between consecutive sample points along an edge
    /// (ICCAD-13 measures roughly every 40 nm).
    pub spacing_nm: f64,
    /// Minimum edge length to receive a sample point at all.
    pub min_edge_nm: f64,
    /// Samples keep this distance from edge endpoints (corners); EPE at
    /// corners is ill-defined along a single normal, so checkers inset
    /// their sample points.
    pub corner_inset_nm: f64,
}

impl Default for EpeConfig {
    fn default() -> Self {
        EpeConfig {
            constraint_nm: 15.0,
            spacing_nm: 40.0,
            min_edge_nm: 20.0,
            corner_inset_nm: 20.0,
        }
    }
}

/// One EPE sample site: a point on a target edge and its outward normal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpeSample {
    /// The edge pixel (just inside the target).
    pub site: Point,
    /// Unit outward normal (one of the four axis directions).
    pub normal: (i32, i32),
}

/// Extracts EPE sample sites from a binary target.
///
/// Edges are maximal runs of boundary pixels facing the same axis
/// direction; each run longer than `min_edge_nm` gets its midpoint plus
/// points every `spacing_nm`.
pub fn sample_sites(target: &BitGrid, config: &EpeConfig, pixel_nm: f64) -> Vec<EpeSample> {
    let sampling = RunSampling {
        spacing_px: (config.spacing_nm / pixel_nm).round().max(1.0) as usize,
        min_len_px: (config.min_edge_nm / pixel_nm).round().max(1.0) as usize,
        inset_px: (config.corner_inset_nm / pixel_nm).round().max(0.0) as i32,
    };
    let (w, h) = (target.width(), target.height());
    let mut samples = Vec::new();

    // Vertical edges (left/right faces): scan columns for runs.
    for x in 0..w as i32 {
        for (dx, normal) in [(-1, (-1, 0)), (1, (1, 0))] {
            let mut run_start: Option<i32> = None;
            for y in 0..=h as i32 {
                let on_edge = y < h as i32
                    && target.at(Point::new(x, y))
                    && !target.at(Point::new(x + dx, y));
                match (on_edge, run_start) {
                    (true, None) => run_start = Some(y),
                    (false, Some(start)) => {
                        emit_run(
                            &mut samples,
                            |t| Point::new(x, t),
                            start,
                            y,
                            sampling,
                            normal,
                        );
                        run_start = None;
                    }
                    _ => {}
                }
            }
        }
    }
    // Horizontal edges (top/bottom faces): scan rows for runs.
    for y in 0..h as i32 {
        for (dy, normal) in [(-1, (0, -1)), (1, (0, 1))] {
            let mut run_start: Option<i32> = None;
            for x in 0..=w as i32 {
                let on_edge = x < w as i32
                    && target.at(Point::new(x, y))
                    && !target.at(Point::new(x, y + dy));
                match (on_edge, run_start) {
                    (true, None) => run_start = Some(x),
                    (false, Some(start)) => {
                        emit_run(
                            &mut samples,
                            |t| Point::new(t, y),
                            start,
                            x,
                            sampling,
                            normal,
                        );
                        run_start = None;
                    }
                    _ => {}
                }
            }
        }
    }
    samples
}

#[derive(Clone, Copy)]
struct RunSampling {
    spacing_px: usize,
    min_len_px: usize,
    inset_px: i32,
}

fn emit_run(
    samples: &mut Vec<EpeSample>,
    make: impl Fn(i32) -> Point,
    start: i32,
    end: i32,
    sampling: RunSampling,
    normal: (i32, i32),
) {
    let RunSampling {
        spacing_px,
        min_len_px,
        inset_px,
    } = sampling;
    let len = (end - start) as usize;
    if len < min_len_px {
        return;
    }
    // Midpoint plus symmetric points every `spacing_px`, kept `inset_px`
    // away from the run's endpoints (the midpoint is always emitted).
    let mid = start + (end - start) / 2;
    let mut offsets = vec![0i32];
    let mut k = 1i32;
    while (k as usize) * spacing_px <= len / 2 {
        offsets.push(k * spacing_px as i32);
        offsets.push(-k * spacing_px as i32);
        k += 1;
    }
    for off in offsets {
        let t = mid + off;
        let in_run = t >= start && t < end;
        let clear_of_corners = off == 0 || (t >= start + inset_px && t < end - inset_px);
        if in_run && clear_of_corners {
            samples.push(EpeSample {
                site: make(t),
                normal,
            });
        }
    }
}

/// Counts EPE violations of `printed` against `target`.
///
/// # Examples
///
/// ```
/// use cfaopc_grid::{fill_rect, BitGrid, Rect};
/// use cfaopc_metrics::{epe_violations, EpeConfig};
///
/// let mut target = BitGrid::new(128, 128);
/// fill_rect(&mut target, Rect::new(32, 32, 96, 96));
/// // A perfect print has zero EPE violations.
/// assert_eq!(epe_violations(&target, &target, &EpeConfig::default(), 4.0), 0);
/// ```
pub fn epe_violations(
    printed: &BitGrid,
    target: &BitGrid,
    config: &EpeConfig,
    pixel_nm: f64,
) -> usize {
    let sites = sample_sites(target, config, pixel_nm);
    let c = (config.constraint_nm / pixel_nm).round().max(1.0) as i32;
    sites
        .iter()
        .filter(|s| edge_displacement(printed, s, c).is_none())
        .count()
}

/// Per-site edge-displacement statistics — everything
/// [`epe_violations`] condenses into one count.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpeReport {
    /// Number of sample sites measured.
    pub sites: usize,
    /// Sites whose printed edge deviates beyond the constraint (or has
    /// no printed edge within twice the constraint).
    pub violations: usize,
    /// Signed displacements in nm (positive = printed edge outside the
    /// target), for every site where an edge was found within twice the
    /// constraint.
    pub displacements_nm: Vec<f64>,
}

impl EpeReport {
    /// Largest absolute measured displacement in nm.
    pub fn max_abs_nm(&self) -> f64 {
        self.displacements_nm
            .iter()
            .map(|d| d.abs())
            .fold(0.0, f64::max)
    }

    /// Mean absolute measured displacement in nm (0 when no edges found).
    pub fn mean_abs_nm(&self) -> f64 {
        if self.displacements_nm.is_empty() {
            return 0.0;
        }
        self.displacements_nm.iter().map(|d| d.abs()).sum::<f64>()
            / self.displacements_nm.len() as f64
    }
}

/// Full edge-displacement report: like [`epe_violations`] but keeping
/// every site's signed displacement (searched out to twice the
/// constraint) for distribution analysis.
///
/// # Examples
///
/// ```
/// use cfaopc_grid::{dilate, fill_rect, BitGrid, Rect, Structuring};
/// use cfaopc_metrics::{epe_report, EpeConfig};
///
/// let mut target = BitGrid::new(128, 128);
/// fill_rect(&mut target, Rect::new(32, 32, 96, 96));
/// let fat = dilate(&target, Structuring::Square(2)); // 8 nm bloat
/// let report = epe_report(&fat, &target, &EpeConfig::default(), 4.0);
/// assert_eq!(report.violations, 0);
/// assert!(report.max_abs_nm() <= 15.0);
/// assert!(report.displacements_nm.iter().all(|&d| d > 0.0)); // outward
/// ```
pub fn epe_report(
    printed: &BitGrid,
    target: &BitGrid,
    config: &EpeConfig,
    pixel_nm: f64,
) -> EpeReport {
    let sites = sample_sites(target, config, pixel_nm);
    let c = (config.constraint_nm / pixel_nm).round().max(1.0) as i32;
    let mut report = EpeReport {
        sites: sites.len(),
        ..EpeReport::default()
    };
    for s in &sites {
        match edge_displacement(printed, s, 2 * c) {
            Some(t) => {
                report.displacements_nm.push(t as f64 * pixel_nm);
                if t.abs() > c {
                    report.violations += 1;
                }
            }
            None => report.violations += 1,
        }
    }
    report
}

/// Finds the printed edge along the sample's outward normal: the signed
/// offset `t` (in pixels, relative to the target edge pixel at `t = 0`)
/// of the closest printed→unprinted transition within `±constraint`.
/// Returns `None` when no edge lies within the constraint — an EPE
/// violation. This measures *edge displacement* directly, so features
/// narrower than twice the constraint are handled correctly (a perfect
/// print of a thin wire has its edge exactly at `t = 0`).
fn edge_displacement(printed: &BitGrid, sample: &EpeSample, constraint_px: i32) -> Option<i32> {
    let at = |t: i32| {
        printed.at(Point::new(
            sample.site.x + sample.normal.0 * t,
            sample.site.y + sample.normal.1 * t,
        ))
    };
    let mut best: Option<i32> = None;
    for t in -constraint_px..=constraint_px {
        if at(t) && !at(t + 1) && best.is_none_or(|b: i32| t.abs() < b.abs()) {
            best = Some(t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{dilate, erode, fill_rect, Rect, Structuring};

    fn target_rect(n: usize, r: Rect) -> BitGrid {
        let mut t = BitGrid::new(n, n);
        fill_rect(&mut t, r);
        t
    }

    #[test]
    fn perfect_print_has_zero_epe() {
        let t = target_rect(128, Rect::new(20, 30, 100, 90));
        assert_eq!(epe_violations(&t, &t, &EpeConfig::default(), 4.0), 0);
    }

    #[test]
    fn empty_print_violates_everywhere() {
        let t = target_rect(128, Rect::new(20, 30, 100, 90));
        let empty = BitGrid::new(128, 128);
        let sites = sample_sites(&t, &EpeConfig::default(), 4.0);
        assert!(!sites.is_empty());
        assert_eq!(
            epe_violations(&empty, &t, &EpeConfig::default(), 4.0),
            sites.len()
        );
    }

    #[test]
    fn small_shift_within_constraint_is_tolerated() {
        // Constraint 15nm at 4nm/px = ~4px; shift by 2px.
        let t = target_rect(128, Rect::new(20, 30, 100, 90));
        let shifted = target_rect(128, Rect::new(22, 30, 102, 90));
        assert_eq!(epe_violations(&shifted, &t, &EpeConfig::default(), 4.0), 0);
    }

    #[test]
    fn large_shrink_violates() {
        let t = target_rect(128, Rect::new(20, 30, 100, 90));
        let shrunk = erode(&t, Structuring::Square(6)); // 24nm undercut
        let v = epe_violations(&shrunk, &t, &EpeConfig::default(), 4.0);
        let sites = sample_sites(&t, &EpeConfig::default(), 4.0);
        assert_eq!(v, sites.len(), "every sample sees >15nm pullback");
    }

    #[test]
    fn large_bulge_violates() {
        let t = target_rect(128, Rect::new(40, 40, 88, 88));
        let fat = dilate(&t, Structuring::Square(6));
        let v = epe_violations(&fat, &t, &EpeConfig::default(), 4.0);
        assert!(v > 0);
    }

    #[test]
    fn sample_density_scales_with_edge_length() {
        let short = target_rect(256, Rect::new(10, 10, 30, 30)); // 80nm sides
        let long = target_rect(256, Rect::new(10, 10, 210, 210)); // 800nm sides
        let cfg = EpeConfig::default();
        let s1 = sample_sites(&short, &cfg, 4.0).len();
        let s2 = sample_sites(&long, &cfg, 4.0).len();
        assert!(s2 > 2 * s1, "{s2} vs {s1}");
    }

    #[test]
    fn tiny_edges_are_skipped() {
        // 2px = 8nm < min_edge_nm: no samples at all.
        let t = target_rect(64, Rect::new(10, 10, 12, 12));
        assert!(sample_sites(&t, &EpeConfig::default(), 4.0).is_empty());
    }

    #[test]
    fn report_counts_match_epe_violations() {
        let t = target_rect(128, Rect::new(20, 30, 100, 90));
        let shrunk = erode(&t, Structuring::Square(2));
        let cfg = EpeConfig::default();
        let report = epe_report(&shrunk, &t, &cfg, 4.0);
        assert_eq!(report.violations, epe_violations(&shrunk, &t, &cfg, 4.0));
        assert_eq!(report.sites, sample_sites(&t, &cfg, 4.0).len());
        // Uniform 8nm undercut: every displacement is -8nm.
        for &d in &report.displacements_nm {
            assert_eq!(d, -8.0);
        }
        assert_eq!(report.mean_abs_nm(), 8.0);
        assert_eq!(report.max_abs_nm(), 8.0);
    }

    #[test]
    fn report_on_empty_print_has_no_displacements() {
        let t = target_rect(128, Rect::new(20, 30, 100, 90));
        let empty = BitGrid::new(128, 128);
        let report = epe_report(&empty, &t, &EpeConfig::default(), 4.0);
        assert_eq!(report.violations, report.sites);
        assert!(report.displacements_nm.is_empty());
        assert_eq!(report.mean_abs_nm(), 0.0);
    }

    #[test]
    fn normals_point_outward() {
        let t = target_rect(64, Rect::new(16, 16, 48, 48));
        for s in sample_sites(&t, &EpeConfig::default(), 4.0) {
            // One step along the normal leaves the target.
            let out = Point::new(s.site.x + s.normal.0, s.site.y + s.normal.1);
            assert!(t.at(s.site));
            assert!(!t.at(out));
        }
    }
}
