//! Evaluation metrics for CFAOPC masks (paper §2.3).
//!
//! * [`l2_error`] — squared L2 between the nominal print and the target
//!   (Eq. 4), reported in nm²;
//! * [`pvb`] — process-variation band between the outer and inner corner
//!   prints (Eq. 5), reported in nm²;
//! * [`epe_violations`] — edge-placement-error count with the ICCAD-13
//!   constraint/sampling conventions;
//! * [`MaskMetrics`] / [`evaluate_mask`] — one-call evaluation of a binary
//!   mask through the lithography simulator;
//! * [`MetricRow`] / [`MetricTable`] — the per-case and averaged rows the
//!   paper's tables report, with plain-text and CSV rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epe;
mod meef;
mod table;

pub use epe::{epe_report, epe_violations, sample_sites, EpeConfig, EpeReport, EpeSample};
pub use meef::{measure_meef, MeefReport};
pub use table::{MetricRow, MetricTable};

use cfaopc_grid::BitGrid;
use cfaopc_litho::{LithoError, LithoSimulator};
use serde::{Deserialize, Serialize};

/// Squared L2 between two binary images in nm² (paper Eq. 4): for binary
/// images the squared distance is the symmetric-difference pixel count
/// scaled by the pixel area.
pub fn l2_error(printed_nominal: &BitGrid, target: &BitGrid, pixel_nm: f64) -> f64 {
    printed_nominal.xor_count(target) as f64 * pixel_nm * pixel_nm
}

/// Process variation band in nm² (paper Eq. 5): squared L2 between the
/// prints at the maximum and minimum process corners.
pub fn pvb(printed_max: &BitGrid, printed_min: &BitGrid, pixel_nm: f64) -> f64 {
    printed_max.xor_count(printed_min) as f64 * pixel_nm * pixel_nm
}

/// The four paper metrics for one mask on one case.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MaskMetrics {
    /// Squared L2 of the nominal print vs the target, nm².
    pub l2: f64,
    /// PVB between the process corners, nm².
    pub pvb: f64,
    /// EPE violation count.
    pub epe: usize,
    /// Shot count (filled in by the fracturing stage; 0 when unknown).
    pub shots: usize,
}

/// Prints `mask` at all process corners and evaluates L2, PVB and EPE
/// against `target`. `shots` is left at 0 for the caller to fill in.
///
/// # Errors
///
/// Returns [`LithoError`] when shapes do not match the simulator grid.
pub fn evaluate_mask(
    sim: &LithoSimulator,
    mask: &BitGrid,
    target: &BitGrid,
    epe_config: &EpeConfig,
) -> Result<MaskMetrics, LithoError> {
    let [nominal, max, min] = sim.print_corners(mask)?;
    let px = sim.config().pixel_nm();
    Ok(MaskMetrics {
        l2: l2_error(&nominal, target, px),
        pvb: pvb(&max, &min, px),
        epe: epe_violations(&nominal, target, epe_config, px),
        shots: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{fill_rect, Rect};
    use cfaopc_litho::LithoConfig;

    #[test]
    fn l2_of_identical_masks_is_zero() {
        let mut a = BitGrid::new(16, 16);
        fill_rect(&mut a, Rect::new(2, 2, 10, 10));
        assert_eq!(l2_error(&a, &a, 4.0), 0.0);
    }

    #[test]
    fn l2_scales_with_pixel_area() {
        let a = BitGrid::new(8, 8);
        let mut b = BitGrid::new(8, 8);
        b.set(0, 0, true);
        b.set(1, 0, true);
        assert_eq!(l2_error(&a, &b, 1.0), 2.0);
        assert_eq!(l2_error(&a, &b, 4.0), 32.0);
    }

    #[test]
    fn pvb_is_symmetric() {
        let mut a = BitGrid::new(8, 8);
        fill_rect(&mut a, Rect::new(1, 1, 6, 6));
        let mut b = BitGrid::new(8, 8);
        fill_rect(&mut b, Rect::new(2, 2, 5, 5));
        assert_eq!(pvb(&a, &b, 2.0), pvb(&b, &a, 2.0));
        assert!(pvb(&a, &b, 2.0) > 0.0);
    }

    #[test]
    fn evaluate_mask_end_to_end() {
        let cfg = LithoConfig::fast_test();
        let sim = LithoSimulator::new(cfg.clone()).unwrap();
        let n = cfg.size;
        let mut target = BitGrid::new(n, n);
        // fast_test is 64px over 2048nm => 32nm/px; a 32nm-wide bar is at
        // the resolution limit and cannot print faithfully from the raw
        // target.
        fill_rect(&mut target, Rect::new(31, 20, 32, 44));
        let m = evaluate_mask(&sim, &target, &target, &EpeConfig::default()).unwrap();
        assert!(
            m.l2 > 0.0,
            "a 32nm bar printed from the raw target must deviate"
        );
        assert!(m.pvb >= 0.0);
        assert_eq!(m.shots, 0);
    }

    #[test]
    fn evaluate_mask_empty_target_empty_mask() {
        let cfg = LithoConfig::fast_test();
        let sim = LithoSimulator::new(cfg.clone()).unwrap();
        let n = cfg.size;
        let empty = BitGrid::new(n, n);
        let m = evaluate_mask(&sim, &empty, &empty, &EpeConfig::default()).unwrap();
        assert_eq!(m.l2, 0.0);
        assert_eq!(m.pvb, 0.0);
        assert_eq!(m.epe, 0);
    }
}
