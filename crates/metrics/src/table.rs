//! Result rows and tables in the paper's reporting format.

use crate::MaskMetrics;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One table row: a named case (or method) with its four metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRow {
    /// Row label, e.g. `case3` or `MultiILT+CircleRule`.
    pub label: String,
    /// The metrics.
    pub metrics: MaskMetrics,
}

impl MetricRow {
    /// Creates a row.
    pub fn new(label: impl Into<String>, metrics: MaskMetrics) -> Self {
        MetricRow {
            label: label.into(),
            metrics,
        }
    }
}

/// A named collection of rows with formatting and averaging, mirroring
/// the layout of the paper's Tables 1–3.
///
/// # Examples
///
/// ```
/// use cfaopc_metrics::{MaskMetrics, MetricRow, MetricTable};
///
/// let mut t = MetricTable::new("demo");
/// t.push(MetricRow::new("case1", MaskMetrics { l2: 100.0, pvb: 200.0, epe: 2, shots: 10 }));
/// t.push(MetricRow::new("case2", MaskMetrics { l2: 300.0, pvb: 400.0, epe: 4, shots: 30 }));
/// let avg = t.average();
/// assert_eq!(avg.l2, 200.0);
/// assert_eq!(avg.shots, 20);
/// assert!(t.to_csv().starts_with("label,l2_nm2,pvb_nm2,epe,shots"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricTable {
    /// Table title.
    pub title: String,
    /// Rows in insertion order.
    pub rows: Vec<MetricRow>,
}

impl MetricTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>) -> Self {
        MetricTable {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: MetricRow) {
        self.rows.push(row);
    }

    /// Arithmetic mean of every metric across rows (the paper's
    /// `Average` line). EPE and shot counts are averaged as reals and
    /// reported rounded like the paper (`14.4`, `123.8` → kept as f64 in
    /// [`MetricTable::average_f`]; this method rounds to nearest).
    ///
    /// # Panics
    ///
    /// Panics when the table is empty.
    pub fn average(&self) -> MaskMetrics {
        let f = self.average_f();
        MaskMetrics {
            l2: f.0,
            pvb: f.1,
            epe: f.2.round() as usize,
            shots: f.3.round() as usize,
        }
    }

    /// Averages as `(l2, pvb, epe, shots)` floats, exactly as the paper
    /// prints fractional average EPE/shot values.
    ///
    /// # Panics
    ///
    /// Panics when the table is empty.
    pub fn average_f(&self) -> (f64, f64, f64, f64) {
        assert!(!self.rows.is_empty(), "cannot average an empty table");
        let n = self.rows.len() as f64;
        let mut acc = (0.0, 0.0, 0.0, 0.0);
        for r in &self.rows {
            acc.0 += r.metrics.l2;
            acc.1 += r.metrics.pvb;
            acc.2 += r.metrics.epe as f64;
            acc.3 += r.metrics.shots as f64;
        }
        (acc.0 / n, acc.1 / n, acc.2 / n, acc.3 / n)
    }

    /// CSV rendering (header + one line per row + average line when
    /// non-empty).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,l2_nm2,pvb_nm2,epe,shots\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.1},{:.1},{},{}\n",
                r.label, r.metrics.l2, r.metrics.pvb, r.metrics.epe, r.metrics.shots
            ));
        }
        if !self.rows.is_empty() {
            let (l2, pvb, epe, shots) = self.average_f();
            out.push_str(&format!("average,{l2:.1},{pvb:.1},{epe:.1},{shots:.1}\n"));
        }
        out
    }
}

impl fmt::Display for MetricTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        writeln!(
            f,
            "{:<28} {:>12} {:>12} {:>6} {:>7}",
            "case", "L2 (nm^2)", "PVB (nm^2)", "EPE", "#Shot"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<28} {:>12.1} {:>12.1} {:>6} {:>7}",
                r.label, r.metrics.l2, r.metrics.pvb, r.metrics.epe, r.metrics.shots
            )?;
        }
        if !self.rows.is_empty() {
            let (l2, pvb, epe, shots) = self.average_f();
            writeln!(
                f,
                "{:<28} {:>12.1} {:>12.1} {:>6.1} {:>7.1}",
                "average", l2, pvb, epe, shots
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> MetricTable {
        let mut t = MetricTable::new("t");
        t.push(MetricRow::new(
            "a",
            MaskMetrics {
                l2: 10.0,
                pvb: 20.0,
                epe: 1,
                shots: 5,
            },
        ));
        t.push(MetricRow::new(
            "b",
            MaskMetrics {
                l2: 30.0,
                pvb: 40.0,
                epe: 2,
                shots: 10,
            },
        ));
        t
    }

    #[test]
    fn average_is_arithmetic_mean() {
        let t = sample_table();
        let avg = t.average();
        assert_eq!(avg.l2, 20.0);
        assert_eq!(avg.pvb, 30.0);
        assert_eq!(avg.epe, 2); // 1.5 rounds to 2
        assert_eq!(avg.shots, 8); // 7.5 rounds to 8
        let f = t.average_f();
        assert_eq!(f.2, 1.5);
        assert_eq!(f.3, 7.5);
    }

    #[test]
    #[should_panic(expected = "cannot average an empty table")]
    fn empty_average_panics() {
        MetricTable::new("empty").average();
    }

    #[test]
    fn csv_has_header_rows_and_average() {
        let t = sample_table();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("label,"));
        assert!(lines[1].starts_with("a,10.0"));
        assert!(lines[3].starts_with("average,20.0,30.0,1.5,7.5"));
    }

    #[test]
    fn display_contains_title_and_labels() {
        let t = sample_table();
        let s = t.to_string();
        assert!(s.contains("== t =="));
        assert!(s.contains("#Shot"));
        assert!(s.contains('a'));
        assert!(s.contains("average"));
    }
}
