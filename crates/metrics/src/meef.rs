//! Mask Error Enhancement Factor (MEEF).
//!
//! MEEF quantifies how strongly mask CD errors amplify on the wafer:
//! `MEEF = ΔCD_wafer / ΔCD_mask` (at 1× magnification). Low-k1 imaging
//! pushes MEEF well above 1, which is why mask-side fidelity — the whole
//! point of fracturing-aware optimization — matters. We measure it by
//! biasing the mask ±1 pixel and differencing the printed CDs.

use cfaopc_grid::{dilate, erode, BitGrid, Structuring};
use cfaopc_litho::{measure_cd, CdProbe, LithoError, LithoSimulator, ProcessCorner};

/// MEEF measurement outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeefReport {
    /// Printed CD of the unbiased mask, nm.
    pub cd_nominal_nm: f64,
    /// Printed CD with the mask dilated by one pixel, nm.
    pub cd_plus_nm: f64,
    /// Printed CD with the mask eroded by one pixel, nm.
    pub cd_minus_nm: f64,
    /// The central-difference MEEF estimate.
    pub meef: f64,
}

/// Measures MEEF for `mask` at `probe`.
///
/// The mask is biased ±1 pixel with a square structuring element (every
/// edge moves by one pixel, so the mask CD changes by `2·pixel_nm` per
/// bias step) and the printed CD difference is divided by the total mask
/// CD swing.
///
/// Returns `None` when the feature fails to print under any of the three
/// biases (MEEF is undefined off the process window).
///
/// # Errors
///
/// Returns [`LithoError`] on shape mismatches.
pub fn measure_meef(
    sim: &LithoSimulator,
    mask: &BitGrid,
    probe: &CdProbe,
) -> Result<Option<MeefReport>, LithoError> {
    let px = sim.config().pixel_nm();
    let plus = dilate(mask, Structuring::Square(1));
    let minus = erode(mask, Structuring::Square(1));
    let mut cds = [0.0f64; 3];
    for (slot, m) in cds.iter_mut().zip([mask, &plus, &minus]) {
        let printed = sim.print(m, ProcessCorner::Nominal)?;
        match measure_cd(&printed, probe, px) {
            Some(cd) => *slot = cd,
            None => return Ok(None),
        }
    }
    let mask_swing = 4.0 * px; // +1px and −1px biases: mask CD spans 4 px
    Ok(Some(MeefReport {
        cd_nominal_nm: cds[0],
        cd_plus_nm: cds[1],
        cd_minus_nm: cds[2],
        meef: (cds[1] - cds[2]) / mask_swing,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{fill_rect, Point, Rect};
    use cfaopc_litho::{CdAxis, LithoConfig};

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig {
            size: 128,
            kernel_count: 6,
            ..LithoConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn meef_of_a_printable_bar_is_positive() {
        let s = sim();
        let n = s.size();
        let mut mask = BitGrid::new(n, n);
        // 16 nm/px: a 128 nm x 768 nm bar.
        fill_rect(&mut mask, Rect::new(60, 40, 68, 88));
        let probe = CdProbe {
            at: Point::new(64, 64),
            axis: CdAxis::Horizontal,
        };
        let report = measure_meef(&s, &mask, &probe).unwrap().unwrap();
        assert!(report.cd_nominal_nm > 0.0);
        assert!(
            report.cd_plus_nm >= report.cd_nominal_nm,
            "+bias must not shrink the print"
        );
        assert!(report.cd_minus_nm <= report.cd_nominal_nm);
        assert!(report.meef > 0.0, "MEEF must be positive: {}", report.meef);
        assert!(
            report.meef < 20.0,
            "MEEF implausibly large: {}",
            report.meef
        );
    }

    #[test]
    fn unprintable_feature_has_no_meef() {
        let s = sim();
        let n = s.size();
        let mut mask = BitGrid::new(n, n);
        mask.set(64, 64, true); // 16 nm dot: far below resolution
        let probe = CdProbe {
            at: Point::new(64, 64),
            axis: CdAxis::Horizontal,
        };
        assert_eq!(measure_meef(&s, &mask, &probe).unwrap(), None);
    }
}
