//! Property-based tests for the FFT substrate.

use cfaopc_fft::{naive_dft_into, Complex, Direction, Fft, Fft2d, Rfft2d};
use proptest::prelude::*;

fn complex_vec(log2_len: std::ops::Range<u32>) -> impl Strategy<Value = Vec<Complex>> {
    log2_len.prop_flat_map(|lg| {
        let n = 1usize << lg;
        proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), n)
            .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
    })
}

fn real_field(
    log2_h: std::ops::Range<u32>,
    log2_w: std::ops::Range<u32>,
) -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (log2_h, log2_w).prop_flat_map(|(lh, lw)| {
        let h = 1usize << lh;
        let w = 1usize << lw;
        proptest::collection::vec(-10.0f64..10.0, h * w).prop_map(move |v| (h, w, v))
    })
}

/// Ulp-scaled agreement tolerance between two radix-2 pipelines of the
/// same transform: a few rounding steps per butterfly stage.
fn fft_tol(peak: f64, len: usize) -> f64 {
    peak.max(1.0) * f64::EPSILON * 8.0 * (len as f64).log2().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_then_inverse_is_identity(input in complex_vec(0..8)) {
        let n = input.len();
        let plan = Fft::new(n).unwrap();
        let mut buf = input.clone();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    #[test]
    fn forward_matches_reference(input in complex_vec(0..6)) {
        let n = input.len();
        // `naive_dft_into` keeps the reference allocation-free inside
        // the proptest loop.
        let mut expected = vec![Complex::ZERO; n];
        naive_dft_into(&input, Direction::Forward, &mut expected);
        let mut got = input.clone();
        Fft::new(n).unwrap().forward(&mut got).unwrap();
        for (a, b) in got.iter().zip(&expected) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_holds(input in complex_vec(1..8)) {
        let n = input.len();
        let time: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = input;
        Fft::new(n).unwrap().forward(&mut freq).unwrap();
        let spec: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - spec).abs() <= 1e-6 * time.max(1.0));
    }

    #[test]
    fn conjugate_symmetry_for_real_input(reals in proptest::collection::vec(-10.0f64..10.0, 64)) {
        let n = reals.len();
        let mut buf: Vec<Complex> = reals.iter().map(|&r| Complex::from_re(r)).collect();
        Fft::new(n).unwrap().forward(&mut buf).unwrap();
        for k in 1..n {
            let a = buf[k];
            let b = buf[n - k].conj();
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn fft2d_roundtrip(input in complex_vec(4..6)) {
        // Interpret the vector as a (n/4) x 4... keep it simple: 2^lg = h*w with w=4.
        let len = input.len();
        let w = 4usize;
        let h = len / w;
        let plan = Fft2d::new(h, w).unwrap();
        let mut buf = input.clone();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    #[test]
    fn fft2d_linearity(a in complex_vec(4..5), b in complex_vec(4..5)) {
        let n = 4usize;
        let h = a.len() / n;
        let plan = Fft2d::new(h, n).unwrap();
        let mut sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        plan.forward(&mut sum).unwrap();
        let mut fa = a;
        plan.forward(&mut fa).unwrap();
        let mut fb = b;
        plan.forward(&mut fb).unwrap();
        for ((s, x), y) in sum.iter().zip(&fa).zip(&fb) {
            prop_assert!((*s - (*x + *y)).abs() < 1e-6);
        }
    }
}

// A separate block: the proptest! TT-muncher hits the compiler's
// recursion limit when every property shares one invocation.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rfft2d_agrees_with_complex_plan(case in real_field(0..6, 0..6)) {
        // (Tuple destructured in the body: proptest 1.0's macro cannot
        // parse tuple patterns in the parameter position.)
        let (h, w, reals) = case;
        // The Hermitian-symmetry plan and the full complex plan compute
        // the same spectrum up to a few ulps of reassociation per stage.
        let rplan = Rfft2d::new(h, w).unwrap();
        let plan = Fft2d::new(h, w).unwrap();
        let mut got = vec![Complex::ZERO; h * w];
        rplan.forward_into(&reals, &mut got).unwrap();
        let mut want: Vec<Complex> = reals.iter().map(|&r| Complex::from_re(r)).collect();
        plan.forward(&mut want).unwrap();
        let peak = want.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        let tol = fft_tol(peak, h * w);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            prop_assert!((*a - *b).abs() <= tol, "bin {i}: {a:?} vs {b:?} (tol {tol})");
        }
    }

    #[test]
    fn rfft2d_forward_re_round_trips(case in real_field(0..6, 0..6)) {
        let (h, w, reals) = case;
        // FFT(FFT(x)) = N·x(−·) for real x, so the half-spectrum
        // `Re[FFT(·)]` of the forward spectrum recovers the (reflected,
        // scaled) input.
        let rplan = Rfft2d::new(h, w).unwrap();
        let mut spectrum = vec![Complex::ZERO; h * w];
        rplan.forward_into(&reals, &mut spectrum).unwrap();
        let mut twice = vec![0.0f64; h * w];
        rplan.forward_re_into(&spectrum, &mut twice).unwrap();
        let n = (h * w) as f64;
        let peak = reals.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let tol = fft_tol(peak, h * w) * n;
        for y in 0..h {
            for x in 0..w {
                let src = n * reals[((h - y) % h) * w + ((w - x) % w)];
                let got = twice[y * w + x];
                prop_assert!((got - src).abs() <= tol, "({x},{y}): {got} vs {src}");
            }
        }
    }
}
