//! Property-based tests for the FFT substrate.

use cfaopc_fft::{naive_dft, Complex, Direction, Fft, Fft2d};
use proptest::prelude::*;

fn complex_vec(log2_len: std::ops::Range<u32>) -> impl Strategy<Value = Vec<Complex>> {
    log2_len.prop_flat_map(|lg| {
        let n = 1usize << lg;
        proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), n)
            .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_then_inverse_is_identity(input in complex_vec(0..8)) {
        let n = input.len();
        let plan = Fft::new(n).unwrap();
        let mut buf = input.clone();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    #[test]
    fn forward_matches_reference(input in complex_vec(0..6)) {
        let n = input.len();
        let expected = naive_dft(&input, Direction::Forward);
        let mut got = input.clone();
        Fft::new(n).unwrap().forward(&mut got).unwrap();
        for (a, b) in got.iter().zip(&expected) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_holds(input in complex_vec(1..8)) {
        let n = input.len();
        let time: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = input;
        Fft::new(n).unwrap().forward(&mut freq).unwrap();
        let spec: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - spec).abs() <= 1e-6 * time.max(1.0));
    }

    #[test]
    fn conjugate_symmetry_for_real_input(reals in proptest::collection::vec(-10.0f64..10.0, 64)) {
        let n = reals.len();
        let mut buf: Vec<Complex> = reals.iter().map(|&r| Complex::from_re(r)).collect();
        Fft::new(n).unwrap().forward(&mut buf).unwrap();
        for k in 1..n {
            let a = buf[k];
            let b = buf[n - k].conj();
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn fft2d_roundtrip(input in complex_vec(4..6)) {
        // Interpret the vector as a (n/4) x 4... keep it simple: 2^lg = h*w with w=4.
        let len = input.len();
        let w = 4usize;
        let h = len / w;
        let plan = Fft2d::new(h, w).unwrap();
        let mut buf = input.clone();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    #[test]
    fn fft2d_linearity(a in complex_vec(4..5), b in complex_vec(4..5)) {
        let n = 4usize;
        let h = a.len() / n;
        let plan = Fft2d::new(h, n).unwrap();
        let mut sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        plan.forward(&mut sum).unwrap();
        let mut fa = a;
        plan.forward(&mut fa).unwrap();
        let mut fb = b;
        plan.forward(&mut fb).unwrap();
        for ((s, x), y) in sum.iter().zip(&fa).zip(&fb) {
            prop_assert!((*s - (*x + *y)).abs() < 1e-6);
        }
    }
}
