//! Worker-pool concurrency guarantees.
//!
//! A single umbrella test pins `CFAOPC_THREADS=4` before the pool
//! configuration is first consulted, so a real 4-worker pool is
//! exercised even on single-core CI machines, then checks every
//! guarantee sequentially in that known configuration. (Separate
//! `#[test]`s would race on the process-wide pool setup.)

use cfaopc_fft::parallel::{par_for, pool_thread_count, with_worker_limit, worker_count};
use cfaopc_fft::{Complex, Fft2d, Rfft2d};
use std::sync::atomic::{AtomicUsize, Ordering};

const N: usize = 64;

fn test_signal() -> Vec<Complex> {
    (0..N * N)
        .map(|i| {
            let x = i as f64;
            Complex::new(
                (x * 0.37).sin() + 0.25 * (x * 0.011).cos(),
                (x * 0.73).cos(),
            )
        })
        .collect()
}

fn bits(v: &[Complex]) -> Vec<(u64, u64)> {
    v.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
}

#[test]
fn pool_guarantees_with_forced_four_workers() {
    // Must run before anything touches the pool in this process.
    std::env::set_var("CFAOPC_THREADS", "4");
    assert_eq!(worker_count(), 4, "CFAOPC_THREADS must win at pool setup");

    serial_and_parallel_transforms_are_bit_identical();
    rfft_transforms_are_worker_count_invariant();
    steady_state_spawns_no_new_threads();
    panics_cross_the_pool_boundary();
}

fn rfft_transforms_are_worker_count_invariant() {
    // Every parallel region in `Rfft2d` writes disjoint chunks whose
    // contents do not depend on scheduling, so any worker limit must
    // reproduce the full pool's bits — including the serial limit of 1.
    let rplan = Rfft2d::square(N).unwrap();
    let plan = Fft2d::square(N).unwrap();
    let reals: Vec<f64> = (0..N * N)
        .map(|i| {
            let x = i as f64;
            (x * 0.29).sin() + 0.4 * (x * 0.017).cos()
        })
        .collect();

    let mut full = vec![Complex::ZERO; N * N];
    rplan.forward_into(&reals, &mut full).unwrap();
    for limit in 1..=4usize {
        let mut limited = vec![Complex::ZERO; N * N];
        with_worker_limit(limit, || rplan.forward_into(&reals, &mut limited).unwrap());
        assert_eq!(
            bits(&full),
            bits(&limited),
            "Rfft2d::forward_into depends on worker limit {limit}"
        );
    }

    let mut re_full = vec![0.0f64; N * N];
    rplan.forward_re_into(&full, &mut re_full).unwrap();
    for limit in 1..=4usize {
        let mut re_limited = vec![0.0f64; N * N];
        with_worker_limit(limit, || {
            rplan.forward_re_into(&full, &mut re_limited).unwrap()
        });
        let a: Vec<u64> = re_full.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = re_limited.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            a, b,
            "Rfft2d::forward_re_into depends on worker limit {limit}"
        );
    }

    // And the half plan agrees with the full complex plan up to a few
    // ulps of per-stage reassociation.
    let mut want: Vec<Complex> = reals.iter().map(|&r| Complex::from_re(r)).collect();
    plan.forward(&mut want).unwrap();
    let peak = want.iter().map(|z| z.abs()).fold(1.0f64, f64::max);
    let tol = peak * f64::EPSILON * 8.0 * ((N * N) as f64).log2();
    for (a, b) in full.iter().zip(&want) {
        assert!((*a - *b).abs() <= tol, "{a:?} vs {b:?} (tol {tol})");
    }
}

fn serial_and_parallel_transforms_are_bit_identical() {
    let plan = Fft2d::square(N).unwrap();
    let signal = test_signal();

    let mut parallel_fwd = signal.clone();
    plan.forward(&mut parallel_fwd).unwrap();
    let mut serial_fwd = signal.clone();
    plan.forward_serial(&mut serial_fwd).unwrap();
    assert_eq!(
        bits(&parallel_fwd),
        bits(&serial_fwd),
        "forward: pool vs forward_serial"
    );

    // A worker limit of 1 must reproduce the same bits through the
    // public parallel entry points.
    let mut limited_fwd = signal.clone();
    with_worker_limit(1, || plan.forward(&mut limited_fwd).unwrap());
    assert_eq!(
        bits(&parallel_fwd),
        bits(&limited_fwd),
        "forward: pool vs worker_limit(1)"
    );

    let mut parallel_inv = parallel_fwd.clone();
    plan.inverse(&mut parallel_inv).unwrap();
    let mut serial_inv = parallel_fwd.clone();
    plan.inverse_serial(&mut serial_inv).unwrap();
    assert_eq!(
        bits(&parallel_inv),
        bits(&serial_inv),
        "inverse: pool vs inverse_serial"
    );
    let mut limited_inv = parallel_fwd.clone();
    with_worker_limit(1, || plan.inverse(&mut limited_inv).unwrap());
    assert_eq!(
        bits(&parallel_inv),
        bits(&limited_inv),
        "inverse: pool vs worker_limit(1)"
    );
}

/// Current thread count of this process, from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn process_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .expect("parsing /proc/self/status")
}

fn steady_state_spawns_no_new_threads() {
    let plan = Fft2d::square(N).unwrap();
    let mut buf = test_signal();
    // First parallel region: the pool is created here (lazily).
    plan.forward(&mut buf).unwrap();
    assert_eq!(
        pool_thread_count(),
        worker_count() - 1,
        "pool spawns workers minus the participating caller"
    );

    #[cfg(target_os = "linux")]
    let os_threads_before = process_thread_count();
    for _ in 0..20 {
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
    }
    assert_eq!(
        pool_thread_count(),
        worker_count() - 1,
        "steady-state transforms must reuse the pool"
    );
    #[cfg(target_os = "linux")]
    assert_eq!(
        process_thread_count(),
        os_threads_before,
        "steady-state transforms must not change the process thread count"
    );
}

fn panics_cross_the_pool_boundary() {
    let result = std::panic::catch_unwind(|| {
        par_for(256, |i| {
            if i == 200 {
                panic!("worker panic escapes");
            }
        });
    });
    assert!(
        result.is_err(),
        "a panic on a pool worker must reach the caller"
    );

    // Every index of a fresh region still runs: the pool fully recovered.
    let hits = AtomicUsize::new(0);
    par_for(256, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 256);
}
