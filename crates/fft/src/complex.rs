//! A minimal double-precision complex number.
//!
//! The lithography stack only needs a handful of operations on complex
//! values (add, mul, conjugate, modulus) so we carry our own 16-byte
//! [`Complex`] instead of pulling in an external numerics crate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` in double precision.
///
/// # Examples
///
/// ```
/// use cfaopc_fft::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a + b, Complex::new(4.0, 1.0));
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// assert_eq!(a.conj(), Complex::new(1.0, -2.0));
/// ```
// `repr(C)` pins the [re, im] field order so the SIMD kernels in
// [`crate::simd`] may reinterpret `&[Complex]` as packed f64 pairs.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns `e^{iθ}` (a unit phasor with phase `theta` in radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(modulus: f64, phase: f64) -> Self {
        let (s, c) = phase.sin_cos();
        Complex {
            re: modulus * c,
            im: modulus * s,
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`. Cheaper than [`Complex::abs`] and what
    /// the Hopkins model (`|h ⊗ M|²`) actually needs.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `√(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in radians in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.5, -1.5);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert!(close(z * Complex::I * Complex::I, -z));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(close(z * z.conj(), Complex::from_re(25.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.7, -0.3);
        let b = Complex::new(-2.1, 0.9);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.5);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.75);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sum_accumulates() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", Complex::ZERO), "0+0i");
    }
}
