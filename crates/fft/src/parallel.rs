//! Persistent-pool data-parallel helpers.
//!
//! The lithography pipeline is embarrassingly parallel across FFT rows,
//! optical kernels and circle shots, and the optimizer calls into these
//! helpers thousands of times per run. Rather than spawn scoped threads on
//! every call (the original design) or pull in a work-stealing runtime, this
//! module keeps one **process-wide worker pool**: long-lived threads created
//! lazily on the first parallel region and reused for every region after
//! that, so steady-state parallel calls spawn zero new OS threads.
//!
//! How a region runs:
//!
//! 1. The caller publishes a [`Region`] (an atomic work cursor over `0..n`
//!    plus a type-erased reference to the closure) on the pool's queue and
//!    wakes the workers.
//! 2. Workers and the caller all claim indices through the cursor — dynamic
//!    claiming, so uneven work balances out; the unit of work (an FFT row
//!    block, a whole kernel convolution) is large enough that the claim
//!    cost is noise.
//! 3. The caller participates until the cursor is exhausted, then blocks
//!    until every claimed index has finished. Only then does it return,
//!    which is what makes lending the non-`'static` closure to the pool
//!    sound.
//!
//! Panics inside a task are caught on the worker, carried back, and resumed
//! on the calling thread once the region has fully drained; the workers
//! themselves survive. Regions are reentrant: a task may itself open a
//! nested parallel region (the nested caller participates in its own
//! region, so progress is always guaranteed), although the hot paths in
//! `cfaopc-litho` deliberately flatten nesting instead — one parallel
//! region with serial FFTs inside beats thread-thrashing nested regions.
//!
//! `CFAOPC_THREADS` overrides the worker count; it is read **once**, when
//! the pool configuration is first consulted, and clamped to `[1, 32]`.
//! `CFAOPC_THREADS=1` keeps everything on the calling thread and never
//! creates the pool. Unparsable values emit a warning on stderr and fall
//! back to auto-detection. [`with_worker_limit`] narrows the count further
//! for a scope (e.g. benchmarking scaling curves, or forcing a bit-exact
//! serial run next to a parallel one in tests).

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool size; beyond this the FFT row blocks are too small
/// for extra threads to pay for themselves.
const MAX_WORKERS: usize = 32;

/// Returns the configured worker count: `CFAOPC_THREADS` if set and valid,
/// else `available_parallelism`, both clamped to `[1, 32]`.
///
/// The value is computed once per process (the persistent pool is sized by
/// it); changing the environment variable afterwards has no effect.
/// Unparsable values are ignored with a warning on stderr.
pub fn worker_count() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        if let Ok(v) = std::env::var("CFAOPC_THREADS") {
            match v.trim().parse::<usize>() {
                Ok(n) => return n.clamp(1, MAX_WORKERS),
                Err(_) => {
                    eprintln!(
                        "cfaopc-fft: warning: CFAOPC_THREADS={v:?} is not a valid \
                         thread count; falling back to auto-detection"
                    );
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, MAX_WORKERS)
    })
}

thread_local! {
    static WORKER_LIMIT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Runs `f` with parallel regions on this thread capped at `limit` workers
/// (including the calling thread). `limit == 1` forces fully serial, inline
/// execution — bit-identical to what a `CFAOPC_THREADS=1` process computes —
/// which is how the test suite compares serial and parallel results within
/// one process. Limits nest; the innermost one wins.
pub fn with_worker_limit<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    let limit = limit.max(1);
    let prev = WORKER_LIMIT.with(|l| l.replace(limit));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_LIMIT.with(|l| l.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Worker count after applying the scoped [`with_worker_limit`] cap.
fn effective_workers() -> usize {
    worker_count().min(WORKER_LIMIT.with(|l| l.get()))
}

/// Splits `workers` threads across `slots` concurrent coarse-grained
/// tasks, distributing the remainder so no worker sits idle: slot `i`
/// gets `workers / slots`, plus one if `i < workers % slots`, and always
/// at least 1 (oversubscribed slots run serially rather than starve).
///
/// This is the share table for two-level scheduling — an outer claim of
/// whole tasks (eval cases, daemon jobs) where each task caps its inner
/// regions at its share via [`with_worker_limit`]. `4` workers over `3`
/// slots yields `[2, 1, 1]`, not the `[1, 1, 1]`-plus-idle-worker split
/// a plain `workers / slots` produces. Because inner regions are
/// bit-identical at any worker limit, the uneven shares never change
/// results — only how fully the pool is used.
pub fn worker_shares(workers: usize, slots: usize) -> Vec<usize> {
    let slots = slots.max(1);
    let workers = workers.max(1);
    let base = workers / slots;
    let rem = workers % slots;
    (0..slots)
        .map(|i| (base + usize::from(i < rem)).max(1))
        .collect()
}

/// Number of OS threads the persistent pool has spawned so far (0 until the
/// first parallel region runs, then constant). Exposed for benchmarks and
/// the steady-state "zero new threads" test.
pub fn pool_thread_count() -> usize {
    POOL.get().map_or(0, |p| p.spawned)
}

/// Type-erased borrow of a region body. The region protocol (caller blocks
/// until all claimed indices finish) keeps the borrow alive for as long as
/// any thread can dereference it.
#[derive(Clone, Copy)]
struct RawTask(&'static (dyn Fn(usize) + Sync));

/// One parallel region: an atomic cursor over `0..n` plus completion
/// tracking. Shared between the caller and the pool workers via `Arc`.
struct Region {
    task: RawTask,
    n: usize,
    /// Next unclaimed index; claims beyond `n` mean "exhausted".
    next: AtomicUsize,
    /// Finished task count; the region is complete when it reaches `n`.
    done: AtomicUsize,
    /// Cap on pool workers attached concurrently (caller not counted).
    max_extra: usize,
    /// Pool workers currently attached.
    extra: AtomicUsize,
    /// Completion flag + first caught panic, guarded for the condvar.
    state: Mutex<RegionState>,
    finished: Condvar,
}

struct RegionState {
    complete: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Region {
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }

    /// Reserves an attachment slot for a pool worker, respecting the cap.
    fn try_attach(&self) -> bool {
        let mut cur = self.extra.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_extra {
                return false;
            }
            match self.extra.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    fn detach(&self) {
        self.extra.fetch_sub(1, Ordering::Relaxed);
    }

    /// Claims and runs indices until the cursor is exhausted. Panics from
    /// the task body are caught and recorded (first one wins); every claimed
    /// index still counts toward completion so the caller never hangs.
    fn participate(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            let result = catch_unwind(AssertUnwindSafe(|| (self.task.0)(i)));
            if let Err(payload) = result {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                st.panic.get_or_insert(payload);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                st.complete = true;
                self.finished.notify_all();
            }
        }
    }

    /// Blocks until every index has finished, then surfaces the first panic.
    fn wait_and_propagate(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !st.complete {
            st = self.finished.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(payload) = st.panic.take() {
            drop(st);
            resume_unwind(payload);
        }
    }
}

/// The process-wide pool: a queue of active regions and the workers that
/// drain it.
struct Pool {
    shared: Arc<PoolShared>,
    /// Worker threads spawned (pool size minus the participating caller).
    spawned: usize,
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Region>>>,
    work_available: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    fn global() -> &'static Pool {
        POOL.get_or_init(|| {
            let shared = Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                work_available: Condvar::new(),
            });
            let spawned = worker_count().saturating_sub(1);
            for i in 0..spawned {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cfaopc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning pool worker");
            }
            Pool { shared, spawned }
        })
    }

    fn inject(&self, region: Arc<Region>) {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(region);
        drop(q);
        self.shared.work_available.notify_all();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let region = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                // Retire exhausted regions from the front; their caller holds
                // its own Arc and is responsible for completion.
                while q.front().is_some_and(|r| r.exhausted()) {
                    q.pop_front();
                }
                // First region with free work and a free attachment slot.
                let claimed = q.iter().find(|r| !r.exhausted() && r.try_attach()).cloned();
                match claimed {
                    Some(r) => break r,
                    None => {
                        q = shared
                            .work_available
                            .wait(q)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        };
        region.participate();
        region.detach();
        if !region.exhausted() {
            // We hit the attachment cap race or bailed early: let a sleeping
            // worker reconsider the region.
            shared.work_available.notify_all();
        }
    }
}

/// Runs `f(0..n)` on the persistent pool with at most `workers` threads
/// (including the caller). Blocks until the whole region has finished;
/// resumes the first panic on the calling thread.
///
/// # Safety-by-protocol
///
/// The closure reference is lifetime-erased before it is shared with the
/// pool. This is sound because (a) the caller does not return until
/// `done == n`, i.e. every dereference has completed, and (b) once the
/// cursor passes `n`, workers only touch the region's atomics, never the
/// closure.
fn run_region(n: usize, workers: usize, f: &(dyn Fn(usize) + Sync)) {
    debug_assert!(n > 1 && workers > 1);
    cfaopc_trace::counters::POOL_REGIONS.incr();
    // SAFETY: see "Safety-by-protocol" above — the borrow outlives every
    // dereference because this function blocks until the region drains.
    #[allow(unsafe_code)]
    let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let region = Arc::new(Region {
        task: RawTask(task),
        n,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        max_extra: workers - 1,
        extra: AtomicUsize::new(0),
        state: Mutex::new(RegionState {
            complete: false,
            panic: None,
        }),
        finished: Condvar::new(),
    });
    let pool = Pool::global();
    if pool.spawned > 0 {
        pool.inject(Arc::clone(&region));
    }
    region.participate();
    region.wait_and_propagate();
}

/// Applies `f` to equal-length mutable chunks of `data` in parallel.
///
/// `f` receives the chunk index (i.e. `offset / chunk_len`) and the chunk.
/// The final chunk may be shorter when `data.len()` is not a multiple of
/// `chunk_len`. Runs serially (inline, spawning nothing) when only one
/// worker is configured or there is at most one chunk.
///
/// # Panics
///
/// Panics if `chunk_len == 0`. Panics propagate from `f` (the region drains
/// fully before the panic resumes on this thread).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = effective_workers().min(n_chunks.max(1));
    if workers <= 1 || n_chunks <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    let len = data.len();
    let base = SendPtr(data.as_mut_ptr());
    run_region(n_chunks, workers, &|i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: chunk index `i` is claimed exactly once per region, and
        // distinct indices map to disjoint `[start, end)` windows of `data`,
        // so no two live `&mut` slices alias. `data` outlives the region
        // because `run_region` blocks until all tasks finish.
        #[allow(unsafe_code)]
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.at(start), end - start) };
        f(i, chunk);
    });
}

/// Applies `f` to equal-length mutable chunk *pairs* of two buffers in
/// parallel — chunk `i` of `a` together with chunk `i` of `b`.
///
/// The two buffers may have different element types and different chunk
/// lengths, but must split into the **same number** of chunks; the final
/// pair may be shorter on either side. This is the race-free primitive
/// behind the tiled composition engine in `cfaopc-core`, where each band
/// of the mask grid and the matching band of the argmax grid are written
/// by one task. Runs serially (inline, spawning nothing) when only one
/// worker is configured or there is at most one chunk pair.
///
/// # Panics
///
/// Panics if either chunk length is zero or the chunk counts differ.
/// Panics propagate from `f` after the region drains.
pub fn par_chunks2_mut<A, B, F>(a: &mut [A], b: &mut [B], chunk_a: usize, chunk_b: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(chunk_a > 0 && chunk_b > 0, "chunk lengths must be positive");
    let n_chunks = a.len().div_ceil(chunk_a);
    assert_eq!(
        n_chunks,
        b.len().div_ceil(chunk_b),
        "buffers must split into the same number of chunks"
    );
    let workers = effective_workers().min(n_chunks.max(1));
    if workers <= 1 || n_chunks <= 1 {
        for (idx, (ca, cb)) in a.chunks_mut(chunk_a).zip(b.chunks_mut(chunk_b)).enumerate() {
            f(idx, ca, cb);
        }
        return;
    }
    let (len_a, len_b) = (a.len(), b.len());
    let base_a = SendPtr(a.as_mut_ptr());
    let base_b = SendPtr(b.as_mut_ptr());
    run_region(n_chunks, workers, &|i| {
        let (start_a, start_b) = (i * chunk_a, i * chunk_b);
        let end_a = (start_a + chunk_a).min(len_a);
        let end_b = (start_b + chunk_b).min(len_b);
        // SAFETY: chunk index `i` is claimed exactly once per region, and
        // distinct indices map to disjoint windows of each buffer, so no
        // two live `&mut` slices alias. Both buffers outlive the region
        // because `run_region` blocks until all tasks finish.
        #[allow(unsafe_code)]
        let (ca, cb) = unsafe {
            (
                std::slice::from_raw_parts_mut(base_a.at(start_a), end_a - start_a),
                std::slice::from_raw_parts_mut(base_b.at(start_b), end_b - start_b),
            )
        };
        f(i, ca, cb);
    });
}

/// Runs `f(i)` for every `i in 0..n` in parallel on the persistent pool.
///
/// Use for index-driven work where each iteration owns its output slot via
/// interior mutability or returns through `f`'s captured state. Iterations
/// are claimed dynamically so uneven work balances out.
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = effective_workers().min(n.max(1));
    if workers <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    run_region(n, workers, &f);
}

/// Runs `f(i)` for every `i in 0..n` with **dynamic claiming in batches
/// of `grain` consecutive indices** on the persistent pool.
///
/// This is the work-stealing-style primitive behind the dirty-tile
/// composition scheduler in `cfaopc-core`: the region's atomic cursor
/// hands each participant `grain` indices per claim, so the claim cost
/// amortizes over a batch while short, uneven worklists (sparse circle
/// sets touch few tiles) still balance dynamically instead of being
/// carved into fixed bands up front. Indices inside a batch run in
/// ascending order; batches themselves are unordered across threads, so
/// `f` must make iterations independent (e.g. each index owns a
/// disjoint region of the output — see [`DisjointSliceMut`]).
///
/// Runs serially (inline, spawning nothing) when only one worker is
/// configured or there is at most one batch.
///
/// # Panics
///
/// Panics if `grain == 0`. Panics propagate from `f` after the region
/// drains.
pub fn par_index_claim<F>(n: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(grain > 0, "grain must be positive");
    let batches = n.div_ceil(grain);
    let workers = effective_workers().min(batches.max(1));
    if workers <= 1 || batches <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    run_region(batches, workers, &|b| {
        let start = b * grain;
        let end = (start + grain).min(n);
        for i in start..end {
            f(i);
        }
    });
}

/// A shared mutable slice that parallel tasks may carve into
/// **caller-guaranteed disjoint** sub-slices.
///
/// The safe constructor borrows the slice mutably for the wrapper's
/// lifetime, so no other access can exist while tasks write through it;
/// the remaining obligation — that concurrent [`DisjointSliceMut::slice_mut`]
/// calls never overlap — cannot be checked here and is why that method
/// is `unsafe`. This is the tile-renderer's write path: each claimed
/// tile maps to row segments no other tile contains.
pub struct DisjointSliceMut<'a, T> {
    ptr: SendPtr<T>,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

impl<'a, T: Send> DisjointSliceMut<'a, T> {
    /// Wraps `data` for disjoint parallel writes.
    pub fn new(data: &'a mut [T]) -> Self {
        DisjointSliceMut {
            len: data.len(),
            ptr: SendPtr(data.as_mut_ptr()),
            _marker: std::marker::PhantomData,
        }
    }

    /// Total length of the wrapped slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sub-slice `[start, start + len)`.
    ///
    /// # Safety
    ///
    /// No two sub-slices alive at the same time (across all threads) may
    /// overlap, and `start + len` must not exceed [`DisjointSliceMut::len`].
    /// The bounds are asserted; the disjointness is the caller's contract.
    // `&self -> &mut` is the point of this type: many tasks hold shared
    // references to the wrapper and carve provably disjoint sub-slices,
    // which is exactly the aliasing obligation the `unsafe` contract
    // above pushes to the caller.
    #[allow(clippy::mut_from_ref)]
    #[allow(unsafe_code)]
    // SAFETY: see `# Safety` above — bounds are asserted here, and the
    // caller upholds the no-overlapping-sub-slices contract.
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(
            start <= self.len && len <= self.len - start,
            "sub-slice out of bounds"
        );
        // SAFETY: bounds checked above; the caller guarantees no aliasing
        // sub-slice is alive, and the wrapper's lifetime pins the unique
        // borrow of the underlying data.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.at(start), len) }
    }
}

/// Wrapper making a raw pointer `Send + Sync` so region tasks can write
/// disjoint slots of a shared buffer.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer offset by `i` elements. Going through a method
    /// keeps closures capturing the (Sync) wrapper, not the raw field.
    fn at(&self, i: usize) -> *mut T {
        // SAFETY: caller guarantees `i` is in bounds of the owning buffer.
        #[allow(unsafe_code)]
        unsafe {
            self.0.add(i)
        }
    }
}

#[allow(unsafe_code)]
// SAFETY: every use in this module writes through disjoint, exactly-once
// claimed offsets, and the owning buffer outlives the region.
unsafe impl<T: Send> Send for SendPtr<T> {}
#[allow(unsafe_code)]
// SAFETY: as above — the pointer is only dereferenced at disjoint offsets.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Maps `f` over `0..n` in parallel and collects the results in order.
///
/// Unlike the earlier scoped implementation this needs no `Default + Clone`
/// bound and allocates no per-element synchronization: results are written
/// straight into the output vector's slots. If `f` panics, the panic
/// resumes on the caller and the values produced by other iterations are
/// leaked (their destructors do not run) — acceptable for the numeric
/// buffers this workspace maps over.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_workers().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<T> = Vec::with_capacity(n);
    let base = SendPtr(out.as_mut_ptr());
    run_region(n, workers, &|i| {
        let value = f(i);
        // SAFETY: each index in `0..n < capacity` is claimed exactly once,
        // so each slot is written exactly once, and the buffer outlives the
        // region. Until `set_len` below the elements are not owned by the
        // Vec, hence the documented leak-on-panic.
        #[allow(unsafe_code)]
        unsafe {
            base.at(i).write(value);
        }
    });
    // SAFETY: all n slots are initialized — run_region returns only after
    // every index completed, and a panic would have propagated above.
    #[allow(unsafe_code)]
    unsafe {
        out.set_len(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn worker_shares_distributes_remainder() {
        assert_eq!(worker_shares(4, 3), vec![2, 1, 1]);
        assert_eq!(worker_shares(4, 2), vec![2, 2]);
        assert_eq!(worker_shares(7, 3), vec![3, 2, 2]);
        assert_eq!(worker_shares(4, 4), vec![1, 1, 1, 1]);
        // More slots than workers: everyone runs serially, nobody starves.
        assert_eq!(worker_shares(2, 5), vec![1, 1, 1, 1, 1]);
        // Degenerate inputs clamp instead of panicking.
        assert_eq!(worker_shares(0, 0), vec![1]);
        assert_eq!(worker_shares(8, 1), vec![8]);
    }

    #[test]
    fn worker_shares_sum_covers_pool_when_slots_divide() {
        for workers in 1..=16 {
            for slots in 1..=workers {
                let shares = worker_shares(workers, slots);
                assert_eq!(shares.len(), slots);
                assert_eq!(
                    shares.iter().sum::<usize>(),
                    workers,
                    "workers={workers} slots={slots}: no idle workers"
                );
                // Shares are monotonically non-increasing so slot 0 (the
                // first case claimed) gets the extra threads.
                assert!(shares.windows(2).all(|w| w[0] >= w[1]));
            }
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u32; 1027];
        par_chunks_mut(&mut data, 64, |_idx, chunk| {
            for v in chunk.iter_mut() {
                *v += 1; // each element exactly once
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn par_chunks_mut_chunk_indices_are_correct() {
        let mut data = vec![0usize; 300];
        par_chunks_mut(&mut data, 100, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v = idx;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[150], 1);
        assert_eq!(data[299], 2);
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn par_chunks_mut_rejects_zero_chunk() {
        let mut data = vec![0u8; 4];
        par_chunks_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn par_chunks2_mut_pairs_matching_chunks() {
        let mut a = vec![0u32; 330]; // 4 chunks of 100 (last short)
        let mut b = vec![0u8; 66]; // 4 chunks of 20 (last short)
        par_chunks2_mut(&mut a, &mut b, 100, 20, |idx, ca, cb| {
            for v in ca.iter_mut() {
                *v = idx as u32 + 1;
            }
            for v in cb.iter_mut() {
                *v = idx as u8 + 1;
            }
        });
        assert_eq!(a[0], 1);
        assert_eq!(a[250], 3);
        assert_eq!(a[329], 4);
        assert_eq!(b[0], 1);
        assert_eq!(b[65], 4);
        assert!(a.iter().all(|&v| v > 0) && b.iter().all(|&v| v > 0));
    }

    #[test]
    #[should_panic(expected = "same number of chunks")]
    fn par_chunks2_mut_rejects_mismatched_counts() {
        let mut a = vec![0u32; 10];
        let mut b = vec![0u32; 30];
        par_chunks2_mut(&mut a, &mut b, 5, 5, |_, _, _| {});
    }

    #[test]
    fn par_for_runs_each_index_once() {
        let count = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        par_for(1000, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn par_index_claim_runs_each_index_once() {
        for grain in [1, 3, 16, 1000] {
            let count = AtomicU64::new(0);
            let sum = AtomicU64::new(0);
            par_index_claim(257, grain, |i| {
                count.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 257, "grain {grain}");
            assert_eq!(sum.load(Ordering::Relaxed), 256 * 257 / 2, "grain {grain}");
        }
    }

    #[test]
    fn par_index_claim_handles_zero_and_one() {
        par_index_claim(0, 4, |_| panic!("must not run"));
        let hit = AtomicU64::new(0);
        par_index_claim(1, 4, |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "grain must be positive")]
    fn par_index_claim_rejects_zero_grain() {
        par_index_claim(4, 0, |_| {});
    }

    #[test]
    fn disjoint_slice_mut_writes_disjoint_tiles() {
        let mut data = vec![0u32; 64];
        let shared = DisjointSliceMut::new(&mut data);
        assert_eq!(shared.len(), 64);
        assert!(!shared.is_empty());
        par_index_claim(8, 2, |i| {
            // SAFETY: each index owns the disjoint window [8i, 8i+8), and
            // every index is claimed exactly once per region.
            #[allow(unsafe_code)]
            let chunk = unsafe { shared.slice_mut(i * 8, 8) };
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 8) as u32 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "sub-slice out of bounds")]
    fn disjoint_slice_mut_checks_bounds() {
        let mut data = vec![0u8; 8];
        let shared = DisjointSliceMut::new(&mut data);
        // SAFETY: no other sub-slice is alive; the call panics on bounds.
        #[allow(unsafe_code)]
        let _ = unsafe { shared.slice_mut(4, 5) };
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(257, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_map_without_default_bound() {
        // String: Send but the old `T: Default + Clone` path never cloned
        // correctly-ordered non-trivial values through slots this cheaply.
        let out = par_map(64, |i| format!("item-{i}"));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &format!("item-{i}"));
        }
    }

    #[test]
    fn par_for_handles_zero_and_one() {
        par_for(0, |_| panic!("must not run"));
        let hit = AtomicU64::new(0);
        par_for(1, |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_limit_is_scoped_and_restored() {
        let outer = worker_count();
        with_worker_limit(1, || {
            assert_eq!(super::effective_workers(), 1);
            with_worker_limit(5, || {
                assert_eq!(super::effective_workers(), outer.min(5));
            });
            assert_eq!(super::effective_workers(), 1);
        });
        assert_eq!(super::effective_workers(), outer);
    }

    #[test]
    fn pool_survives_a_panicking_region() {
        let result = std::panic::catch_unwind(|| {
            par_for(64, |i| {
                if i == 13 {
                    panic!("boom at 13");
                }
            });
        });
        let err = result.expect_err("panic must propagate to the caller");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom at 13"), "unexpected payload: {msg}");
        // The pool still works afterwards.
        let out = par_map(128, |i| i + 1);
        assert_eq!(out.iter().sum::<usize>(), (1..=128).sum::<usize>());
    }

    #[test]
    fn nested_regions_do_not_deadlock() {
        let out = par_map(8, |i| {
            let inner = par_map(16, move |j| i * 100 + j);
            inner.iter().sum::<usize>()
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (0..16).map(|j| i * 100 + j).sum::<usize>());
        }
    }
}
