//! Tiny scoped-thread data-parallel helpers.
//!
//! The lithography pipeline is embarrassingly parallel across FFT rows,
//! optical kernels and circle shots. Rather than pull in a work-stealing
//! runtime we stripe slices across `std::thread::scope` workers; the unit
//! of work here is large (an entire FFT row, a whole kernel convolution)
//! so static striping is within noise of a real scheduler.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns the worker count used by the helpers in this module:
/// `available_parallelism`, clamped to `[1, 32]`, and overridable with the
/// `CFAOPC_THREADS` environment variable (useful to force serial runs in
/// tests or CI).
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("CFAOPC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, 128);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 32)
}

/// Applies `f` to equal-length mutable chunks of `data` in parallel.
///
/// `f` receives the chunk index (i.e. `offset / chunk_len`) and the chunk.
/// The final chunk may be shorter when `data.len()` is not a multiple of
/// `chunk_len`. Runs serially when only one worker is available or the
/// input is small.
///
/// # Panics
///
/// Panics if `chunk_len == 0`. Panics propagate from `f` (the scope joins
/// all workers first).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = worker_count().min(n_chunks.max(1));
    if workers <= 1 || n_chunks <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    type Slot<'s, T> = std::sync::Mutex<Option<(usize, &'s mut [T])>>;
    let next = AtomicUsize::new(0);
    // Hand out chunks through an atomic cursor over an indexed pool; each
    // worker repeatedly claims the next unprocessed chunk.
    let pool: Vec<Slot<'_, T>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|c| std::sync::Mutex::new(Some(c)))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= pool.len() {
                    break;
                }
                if let Some((idx, chunk)) = pool[i].lock().unwrap().take() {
                    f(idx, chunk);
                }
            });
        }
    });
}

/// Runs `f(i)` for every `i in 0..n` in parallel.
///
/// Use for index-driven work where each iteration owns its output slot via
/// interior mutability or returns through `f`'s captured state. Iterations
/// are claimed dynamically so uneven work balances out.
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = worker_count().min(n.max(1));
    if workers <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Maps `f` over `0..n` in parallel and collects the results in order.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    {
        let slots: Vec<std::sync::Mutex<&mut T>> =
            out.iter_mut().map(std::sync::Mutex::new).collect();
        par_for(n, |i| {
            **slots[i].lock().unwrap() = f(i);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u32; 1027];
        par_chunks_mut(&mut data, 64, |_idx, chunk| {
            for v in chunk.iter_mut() {
                *v += 1; // each element exactly once
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn par_chunks_mut_chunk_indices_are_correct() {
        let mut data = vec![0usize; 300];
        par_chunks_mut(&mut data, 100, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v = idx;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[150], 1);
        assert_eq!(data[299], 2);
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn par_chunks_mut_rejects_zero_chunk() {
        let mut data = vec![0u8; 4];
        par_chunks_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn par_for_runs_each_index_once() {
        let count = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        par_for(1000, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(257, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_for_handles_zero_and_one() {
        par_for(0, |_| panic!("must not run"));
        let hit = AtomicU64::new(0);
        par_for(1, |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
}
