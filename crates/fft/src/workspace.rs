//! Reusable buffer pools, so steady-state transforms and convolutions are
//! allocation-free.
//!
//! Every `Fft2d::execute` needs a full-size transpose scratch, and every
//! Hopkins kernel evaluation in `cfaopc-litho` needs a full-size complex
//! field — buffers that used to be heap-allocated per call, hundreds of
//! thousands of times per ILT run. A [`BufferPool`] keeps returned buffers
//! on a small shared stack and hands them back out, so after warm-up the
//! hot loop recycles the same few allocations.
//!
//! Pools are cheap to clone (clones share the same stack, which is what a
//! cloned FFT plan wants) and safe to use from parallel regions: `take`
//! and `put` briefly lock the stack, which is noise next to the work done
//! on the buffers themselves.

use std::sync::{Arc, Mutex};

/// Buffers kept per pool; concurrency never exceeds the worker count, so a
/// small cap bounds memory without ever forcing reallocation in practice.
const MAX_POOLED: usize = 64;

/// A shared recycling stack of `Vec<T>` buffers.
pub struct BufferPool<T> {
    stack: Arc<Mutex<Vec<Vec<T>>>>,
}

impl<T> Clone for BufferPool<T> {
    fn clone(&self) -> Self {
        BufferPool {
            stack: Arc::clone(&self.stack),
        }
    }
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for BufferPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pooled = self.stack.lock().map(|s| s.len()).unwrap_or(0);
        f.debug_struct("BufferPool")
            .field("pooled", &pooled)
            .finish()
    }
}

impl<T> BufferPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool {
            stack: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Returns `buf` to the pool for reuse. Buffers beyond the pool cap are
    /// simply dropped.
    pub fn put(&self, buf: Vec<T>) {
        let mut stack = self.stack.lock().unwrap_or_else(|e| e.into_inner());
        if stack.len() < MAX_POOLED {
            stack.push(buf);
        }
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.stack.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl<T: Default + Clone> BufferPool<T> {
    /// Hands out a buffer of exactly `len` elements, recycling a parked one
    /// when possible. Contents are unspecified (whatever the previous user
    /// left, default-filled for fresh allocations) — callers are expected
    /// to overwrite every element, or use [`BufferPool::take_zeroed`].
    pub fn take(&self, len: usize) -> Vec<T> {
        let recycled = {
            let mut stack = self.stack.lock().unwrap_or_else(|e| e.into_inner());
            stack.pop()
        };
        match recycled {
            Some(mut buf) => {
                buf.resize(len, T::default());
                buf
            }
            None => vec![T::default(); len],
        }
    }

    /// Like [`BufferPool::take`], but every element is reset to `T::default()`.
    pub fn take_zeroed(&self, len: usize) -> Vec<T> {
        let mut buf = self.take(len);
        buf.fill(T::default());
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_allocation() {
        let pool: BufferPool<f64> = BufferPool::new();
        let buf = pool.take(256);
        let ptr = buf.as_ptr();
        pool.put(buf);
        assert_eq!(pool.pooled(), 1);
        let again = pool.take(256);
        assert_eq!(again.as_ptr(), ptr, "same allocation must be reused");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn take_zeroed_clears_previous_contents() {
        let pool: BufferPool<f64> = BufferPool::new();
        let mut buf = pool.take(16);
        buf.fill(7.5);
        pool.put(buf);
        let clean = pool.take_zeroed(16);
        assert!(clean.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn resize_handles_shape_changes() {
        let pool: BufferPool<u32> = BufferPool::new();
        pool.put(vec![9; 100]);
        let small = pool.take(10);
        assert_eq!(small.len(), 10);
        pool.put(small);
        let big = pool.take(50);
        assert_eq!(big.len(), 50);
    }

    #[test]
    fn clones_share_the_stack() {
        let a: BufferPool<u8> = BufferPool::new();
        let b = a.clone();
        b.put(vec![0; 8]);
        assert_eq!(a.pooled(), 1);
    }
}
