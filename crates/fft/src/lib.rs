//! Self-contained FFT substrate for the CFAOPC lithography stack.
//!
//! The Hopkins diffraction model (paper Eq. 1) evaluates `h_k ⊗ M` as
//! `IFFT(FFT(h_k) · FFT(M))`; this crate provides everything that pipeline
//! needs without external numerics dependencies:
//!
//! * [`Complex`] — a 16-byte double-precision complex number,
//! * [`Fft`] — a reusable 1-D radix-2 plan with precomputed twiddles,
//! * [`Fft2d`] — a separable, thread-parallel 2-D plan with pooled
//!   (steady-state allocation-free) transpose scratch,
//! * [`Rfft2d`] — a real-input 2-D plan that exploits Hermitian symmetry
//!   to roughly halve the transform work for real masks,
//! * [`parallel`] — persistent-worker-pool helpers the rest of the
//!   workspace reuses for data-parallel loops,
//! * [`simd`] — the workspace's shared AVX2 detection latch and bit-exact
//!   vector kernels for complex-field inner loops,
//! * [`workspace`] — recyclable buffer pools for hot-loop scratch space,
//! * [`naive_dft`] / [`naive_dft_into`] — O(n²) reference transforms for
//!   tests.
//!
//! # Examples
//!
//! Low-pass filtering an image through the frequency domain:
//!
//! ```
//! use cfaopc_fft::{Complex, Fft2d, signed_freq};
//!
//! # fn main() -> Result<(), cfaopc_fft::FftError> {
//! let n = 32;
//! let plan = Fft2d::square(n)?;
//! let mut img: Vec<Complex> = (0..n * n)
//!     .map(|i| Complex::from_re(if i % 7 == 0 { 1.0 } else { 0.0 }))
//!     .collect();
//! plan.forward(&mut img)?;
//! for ky in 0..n {
//!     for kx in 0..n {
//!         let fy = signed_freq(ky, n);
//!         let fx = signed_freq(kx, n);
//!         if fx * fx + fy * fy > 16 {
//!             img[ky * n + kx] = Complex::ZERO;
//!         }
//!     }
//! }
//! plan.inverse(&mut img)?;
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the persistent worker pool in [`parallel`]
// lends non-`'static` closures to long-lived threads, which requires three
// tightly-scoped `#[allow(unsafe_code)]` blocks (each with a safety
// argument). Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod fft1d;
mod fft2d;
pub mod parallel;
mod rfft2d;
pub mod simd;
pub mod workspace;

pub use complex::Complex;
pub use fft1d::{naive_dft, naive_dft_into, Direction, Fft, FftError};
pub use fft2d::{signed_freq, Fft2d};
pub use rfft2d::Rfft2d;
pub use workspace::BufferPool;
