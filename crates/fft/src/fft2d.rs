//! Two-dimensional FFT on row-major buffers.
//!
//! The 2-D transform is separable: FFT every row, transpose, FFT every
//! (former) column, transpose back. Row passes are striped across the
//! persistent pool with [`crate::parallel::par_chunks_mut`]; the transpose
//! is cache-blocked and works in a pooled scratch buffer, so steady-state
//! transforms allocate nothing.

use crate::complex::Complex;
use crate::fft1d::{Direction, Fft, FftError};
use crate::parallel::par_chunks_mut;
use crate::workspace::BufferPool;

/// A reusable plan for 2-D FFTs of a fixed `height × width` shape.
///
/// Both dimensions must be powers of two. The plan is `Send + Sync` and
/// cheap to clone; clones share the plan's scratch-buffer pool.
///
/// # Examples
///
/// ```
/// use cfaopc_fft::{Complex, Fft2d};
///
/// # fn main() -> Result<(), cfaopc_fft::FftError> {
/// let plan = Fft2d::new(4, 8)?;
/// let mut img = vec![Complex::ZERO; 4 * 8];
/// img[0] = Complex::ONE;
/// plan.forward(&mut img)?;
/// assert!(img.iter().all(|z| (z.re - 1.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fft2d {
    height: usize,
    width: usize,
    row_fft: Fft,
    col_fft: Fft,
    /// Recycled transpose scratch buffers (shared across clones).
    scratch: BufferPool<Complex>,
}

impl Fft2d {
    /// Builds a plan for `height × width` transforms.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthNotPowerOfTwo`] if either dimension is not
    /// a nonzero power of two.
    pub fn new(height: usize, width: usize) -> Result<Self, FftError> {
        Ok(Fft2d {
            height,
            width,
            row_fft: Fft::new(width)?,
            col_fft: Fft::new(height)?,
            scratch: BufferPool::new(),
        })
    }

    /// Convenience constructor for square transforms.
    ///
    /// # Errors
    ///
    /// Same as [`Fft2d::new`].
    pub fn square(n: usize) -> Result<Self, FftError> {
        Self::new(n, n)
    }

    /// Grid height (number of rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Grid width (number of columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total element count `height × width`.
    #[inline]
    pub fn len(&self) -> usize {
        self.height * self.width
    }

    /// Returns `true` if the plan covers zero elements (never, by
    /// construction, but provided alongside `len` per convention).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check(&self, data: &[Complex]) -> Result<(), FftError> {
        if data.len() != self.len() {
            return Err(FftError::LengthMismatch {
                expected: self.len(),
                actual: data.len(),
            });
        }
        Ok(())
    }

    /// In-place forward 2-D DFT of a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != height*width`.
    pub fn forward(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.execute(data, Direction::Forward)
    }

    /// In-place inverse 2-D DFT (normalized by `1/(height·width)`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != height*width`.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.execute(data, Direction::Inverse)
    }

    /// In-place forward 2-D DFT that stays on the calling thread.
    ///
    /// Use inside an outer parallel region (e.g. the per-kernel loop of the
    /// Hopkins model) where nesting another region would only thrash the
    /// pool. Bit-identical to [`Fft2d::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != height*width`.
    pub fn forward_serial(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.execute_with(data, Direction::Forward, false)
    }

    /// In-place inverse 2-D DFT that stays on the calling thread.
    ///
    /// See [`Fft2d::forward_serial`]; bit-identical to [`Fft2d::inverse`].
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != height*width`.
    pub fn inverse_serial(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.execute_with(data, Direction::Inverse, false)
    }

    /// In-place transform in the given [`Direction`].
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != height*width`.
    pub fn execute(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        self.execute_with(data, dir, true)
    }

    /// [`Fft2d::inverse_serial`] specialized for spectra whose support is
    /// confined to a band of rows (e.g. a pupil-filtered SOCS field): the
    /// row pass skips rows that are entirely zero, since their transform
    /// is zero.
    ///
    /// The only conceivable divergence from the unskipped transform is
    /// the *sign* of exact zeros inside skipped rows (a computed zero row
    /// can carry `-0.0` from sign-flipped products); every consumer
    /// squares or accumulates those entries, where the sign of zero is
    /// inert. Nonzero results are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != height*width`.
    pub fn inverse_serial_sparse(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.check(data)?;
        cfaopc_trace::counters::FFT_2D.incr();
        let row_fft = &self.row_fft;
        for row in data.chunks_mut(self.width) {
            // The scan short-circuits at the first nonzero entry, so dense
            // rows pay a handful of loads and sparse fields skip ~80% of
            // their row transforms.
            if row.iter().any(|z| z.re != 0.0 || z.im != 0.0) {
                row_fft
                    .inverse(row)
                    .expect("row length matches plan by construction");
            }
        }
        let mut scratch = self.scratch.take(data.len());
        transpose_into(data, self.height, self.width, &mut scratch);
        let col_fft = &self.col_fft;
        for col in scratch.chunks_mut(self.height) {
            col_fft
                .inverse(col)
                .expect("column length matches plan by construction");
        }
        transpose_into(&scratch, self.width, self.height, data);
        self.scratch.put(scratch);
        Ok(())
    }

    /// [`Fft2d::inverse_serial`] for consumers that only read a subset of
    /// output **columns**: the column pass transforms only the columns
    /// flagged in `wanted` (indexed by `kx`, length `width`).
    ///
    /// Entries in unwanted columns are left **unspecified** (they hold
    /// untransformed row-pass data). Wanted columns are bit-identical to
    /// the dense serial inverse — each column transform is independent,
    /// so skipping neighbours cannot perturb it. The adjoint litho pass
    /// uses this to evaluate `IFFT(B)` only on the pupil support.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != height*width`
    /// or `wanted.len() != width`.
    pub fn inverse_serial_cols(
        &self,
        data: &mut [Complex],
        wanted: &[bool],
    ) -> Result<(), FftError> {
        self.check(data)?;
        if wanted.len() != self.width {
            return Err(FftError::LengthMismatch {
                expected: self.width,
                actual: wanted.len(),
            });
        }
        cfaopc_trace::counters::FFT_2D.incr();
        let row_fft = &self.row_fft;
        for row in data.chunks_mut(self.width) {
            row_fft
                .inverse(row)
                .expect("row length matches plan by construction");
        }
        let mut scratch = self.scratch.take(data.len());
        transpose_into(data, self.height, self.width, &mut scratch);
        let col_fft = &self.col_fft;
        for (kx, col) in scratch.chunks_mut(self.height).enumerate() {
            if wanted[kx] {
                col_fft
                    .inverse(col)
                    .expect("column length matches plan by construction");
            }
        }
        transpose_into(&scratch, self.width, self.height, data);
        self.scratch.put(scratch);
        Ok(())
    }

    /// Shared body of the parallel and serial entry points. The row/column
    /// passes write disjoint chunks and perform no cross-chunk reductions,
    /// so the parallel and serial results are bit-identical.
    fn execute_with(
        &self,
        data: &mut [Complex],
        dir: Direction,
        parallel: bool,
    ) -> Result<(), FftError> {
        self.check(data)?;
        cfaopc_trace::counters::FFT_2D.incr();
        // Pass 1: FFT all rows.
        let row_fft = &self.row_fft;
        let row_pass = |row: &mut [Complex]| {
            row_fft
                .transform(row, dir)
                .expect("row length matches plan by construction");
        };
        if parallel {
            par_chunks_mut(data, self.width, |_, row| row_pass(row));
        } else {
            data.chunks_mut(self.width).for_each(row_pass);
        }
        // Pass 2: transpose into pooled scratch, FFT rows (former columns),
        // transpose back. The scratch is fully overwritten, so recycled
        // contents never leak through.
        let mut scratch = self.scratch.take(data.len());
        transpose_into(data, self.height, self.width, &mut scratch);
        let col_fft = &self.col_fft;
        let col_pass = |col: &mut [Complex]| {
            col_fft
                .transform(col, dir)
                .expect("column length matches plan by construction");
        };
        if parallel {
            par_chunks_mut(&mut scratch, self.height, |_, col| col_pass(col));
        } else {
            scratch.chunks_mut(self.height).for_each(col_pass);
        }
        transpose_into(&scratch, self.width, self.height, data);
        self.scratch.put(scratch);
        Ok(())
    }
}

/// Cache-blocked out-of-place transpose of a `rows × cols` buffer.
/// (Production code transposes into pooled scratch via [`transpose_into`];
/// this allocating wrapper remains for the involution test.)
#[cfg(test)]
fn transpose(src: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
    let mut dst = vec![Complex::ZERO; src.len()];
    transpose_into(src, rows, cols, &mut dst);
    dst
}

fn transpose_into(src: &[Complex], rows: usize, cols: usize, dst: &mut [Complex]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const B: usize = 32;
    for r0 in (0..rows).step_by(B) {
        for c0 in (0..cols).step_by(B) {
            for r in r0..(r0 + B).min(rows) {
                for c in c0..(c0 + B).min(cols) {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// Maps a grid index to its signed centered frequency.
///
/// For an `n`-point DFT, bin `k` represents frequency `k` for `k < n/2`
/// and `k - n` otherwise; multiplied by the sample spacing this yields
/// cycles per unit length.
///
/// # Examples
///
/// ```
/// use cfaopc_fft::signed_freq;
/// assert_eq!(signed_freq(0, 8), 0);
/// assert_eq!(signed_freq(3, 8), 3);
/// assert_eq!(signed_freq(4, 8), -4);
/// assert_eq!(signed_freq(7, 8), -1);
/// ```
pub fn signed_freq(k: usize, n: usize) -> i64 {
    debug_assert!(k < n);
    if k < n / 2 || n <= 1 {
        k as i64
    } else {
        k as i64 - n as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft1d::naive_dft;

    fn naive_dft2(input: &[Complex], h: usize, w: usize, dir: Direction) -> Vec<Complex> {
        // Rows then columns with the reference 1-D DFT.
        let mut rows: Vec<Complex> = Vec::with_capacity(h * w);
        for r in 0..h {
            rows.extend(naive_dft(&input[r * w..(r + 1) * w], dir));
        }
        let mut out = vec![Complex::ZERO; h * w];
        for c in 0..w {
            let col: Vec<Complex> = (0..h).map(|r| rows[r * w + c]).collect();
            let tf = naive_dft(&col, dir);
            for r in 0..h {
                out[r * w + c] = tf[r];
            }
        }
        out
    }

    fn sample(h: usize, w: usize) -> Vec<Complex> {
        (0..h * w)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos() - 0.2))
            .collect()
    }

    #[test]
    fn matches_naive_2d_forward() {
        for (h, w) in [(4, 4), (8, 4), (4, 16), (16, 16)] {
            let input = sample(h, w);
            let expected = naive_dft2(&input, h, w, Direction::Forward);
            let mut got = input.clone();
            Fft2d::new(h, w).unwrap().forward(&mut got).unwrap();
            for (a, b) in got.iter().zip(&expected) {
                assert!((*a - *b).abs() < 1e-8, "{a:?} vs {b:?} ({h}x{w})");
            }
        }
    }

    #[test]
    fn roundtrip_2d() {
        let (h, w) = (32, 64);
        let input = sample(h, w);
        let plan = Fft2d::new(h, w).unwrap();
        let mut buf = input.clone();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&input) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn dc_of_forward_is_sum() {
        let (h, w) = (8, 8);
        let input = sample(h, w);
        let total: Complex = input.iter().copied().sum();
        let mut buf = input;
        Fft2d::new(h, w).unwrap().forward(&mut buf).unwrap();
        assert!((buf[0] - total).abs() < 1e-9);
    }

    #[test]
    fn convolution_theorem_with_delta() {
        // Convolving with a shifted delta translates the image (cyclically).
        let n = 16;
        let plan = Fft2d::square(n).unwrap();
        let img = sample(n, n);
        let mut kernel = vec![Complex::ZERO; n * n];
        let (dy, dx) = (3usize, 5usize);
        kernel[dy * n + dx] = Complex::ONE;

        let mut fi = img.clone();
        plan.forward(&mut fi).unwrap();
        let mut fk = kernel;
        plan.forward(&mut fk).unwrap();
        let mut prod: Vec<Complex> = fi.iter().zip(&fk).map(|(&a, &b)| a * b).collect();
        plan.inverse(&mut prod).unwrap();

        for y in 0..n {
            for x in 0..n {
                let src = img[((y + n - dy) % n) * n + (x + n - dx) % n];
                assert!((prod[y * n + x] - src).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sparse_inverse_matches_dense_inverse() {
        // A pupil-like field: support confined to a few rows. The sparse
        // row-skipping inverse must agree with the dense serial inverse —
        // bit-identically on nonzero entries, up to the sign of zero on
        // exact zeros.
        let n = 32;
        let plan = Fft2d::square(n).unwrap();
        let mut field = vec![Complex::ZERO; n * n];
        for ky in [0usize, 1, 2, 30, 31] {
            for kx in 0..n {
                field[ky * n + kx] = Complex::new((kx as f64 * 0.3).sin(), kx as f64 * 0.01 - 0.1);
            }
        }
        let mut dense = field.clone();
        plan.inverse_serial(&mut dense).unwrap();
        let mut sparse = field;
        plan.inverse_serial_sparse(&mut sparse).unwrap();
        for i in 0..n * n {
            let (a, b) = (sparse[i], dense[i]);
            let same_re = a.re.to_bits() == b.re.to_bits() || (a.re == 0.0 && b.re == 0.0);
            let same_im = a.im.to_bits() == b.im.to_bits() || (a.im == 0.0 && b.im == 0.0);
            assert!(same_re && same_im, "pixel {i}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn sparse_inverse_of_dense_field_is_exact() {
        // No zero rows at all: the sparse path must degenerate to the
        // dense serial inverse bit for bit.
        let (h, w) = (16, 8);
        let field = sample(h, w);
        let plan = Fft2d::new(h, w).unwrap();
        let mut dense = field.clone();
        plan.inverse_serial(&mut dense).unwrap();
        let mut sparse = field;
        plan.inverse_serial_sparse(&mut sparse).unwrap();
        for i in 0..h * w {
            assert_eq!(sparse[i].re.to_bits(), dense[i].re.to_bits(), "pixel {i}");
            assert_eq!(sparse[i].im.to_bits(), dense[i].im.to_bits(), "pixel {i}");
        }
    }

    #[test]
    fn column_sampled_inverse_matches_dense_on_wanted_columns() {
        let (h, w) = (16, 32);
        let field = sample(h, w);
        let plan = Fft2d::new(h, w).unwrap();
        let mut dense = field.clone();
        plan.inverse_serial(&mut dense).unwrap();
        // A pupil-like column mask: low and high (wrapped) frequencies.
        let wanted: Vec<bool> = (0..w).map(|kx| kx < 5 || kx >= w - 4).collect();
        let mut sampled = field;
        plan.inverse_serial_cols(&mut sampled, &wanted).unwrap();
        for ky in 0..h {
            for (kx, &keep) in wanted.iter().enumerate() {
                if keep {
                    let (a, b) = (sampled[ky * w + kx], dense[ky * w + kx]);
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "({ky},{kx})");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "({ky},{kx})");
                }
            }
        }
    }

    #[test]
    fn column_sampled_inverse_rejects_wrong_mask_length() {
        let plan = Fft2d::new(8, 8).unwrap();
        let mut buf = vec![Complex::ZERO; 64];
        assert!(plan.inverse_serial_cols(&mut buf, &[true; 7]).is_err());
    }

    #[test]
    fn rejects_wrong_size_buffer() {
        let plan = Fft2d::new(8, 8).unwrap();
        let mut buf = vec![Complex::ZERO; 63];
        assert!(plan.forward(&mut buf).is_err());
    }

    #[test]
    fn transpose_is_involution() {
        let (h, w) = (8, 16);
        let src = sample(h, w);
        let t = transpose(&src, h, w);
        let tt = transpose(&t, w, h);
        assert_eq!(src.len(), tt.len());
        for (a, b) in src.iter().zip(&tt) {
            assert_eq!(*a, *b);
        }
    }

    #[test]
    fn signed_freq_covers_edges() {
        assert_eq!(signed_freq(0, 1), 0);
        assert_eq!(signed_freq(1, 2), -1);
        let n = 16;
        let freqs: Vec<i64> = (0..n).map(|k| signed_freq(k, n)).collect();
        assert_eq!(*freqs.iter().min().unwrap(), -(n as i64) / 2);
        assert_eq!(*freqs.iter().max().unwrap(), n as i64 / 2 - 1);
    }
}
