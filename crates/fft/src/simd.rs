//! Shared SIMD infrastructure: runtime feature detection plus bit-exact
//! AVX2 kernels for the complex-field inner loops of the litho stack.
//!
//! PR 6 introduced the pattern in `cfaopc-core`: explicit intrinsics
//! behind a runtime latch, with a scalar fallback that *defines* the
//! kernel's semantics and a hard bit-identity contract between the two
//! paths. This module hoists the detection latch and the conventions to
//! the one crate every other crate already depends on, so `cfaopc-core`
//! and the FFT butterflies stop re-deriving them.
//!
//! # Why the SIMD paths are bit-identical
//!
//! Packed `vaddpd`/`vsubpd`/`vmulpd`/`vhaddpd`/`vaddsubpd` are IEEE-754
//! correctly rounded per lane, exactly like their scalar counterparts, so
//! a vector lane produces *the same bits* as the scalar expression as
//! long as the operation sequence matches. The kernels below therefore
//! mirror their scalar references operation for operation: no FMA
//! (contraction would change the rounding), horizontal adds only where
//! the scalar reference performs the same single addition, and sign
//! flips via XOR with `-0.0` (exact negation). Unit tests in this module
//! and property tests in `tests/` hold every dispatch to that contract.
//!
//! # Feature detection and fallback policy
//!
//! [`avx2_available`] latches `is_x86_feature_detected!("avx2")` once in
//! a `OnceLock`, so steady-state dispatch is one relaxed load. Non-x86
//! targets (and x86 machines without AVX2) take the scalar fallback;
//! switching paths can never change results.

use crate::complex::Complex;

/// Returns `true` when the running CPU supports AVX2, latched once.
///
/// The one detection latch for the whole workspace — `cfaopc-core`'s
/// composition kernels and the FFT butterflies both dispatch through it.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Non-x86 stub: the scalar fallback is the only path.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn avx2_available() -> bool {
    false
}

/// Accumulates `acc[i] += w · |field[i]|²` — the SOCS intensity inner
/// loop (`scale·μ_k·|A_k|²`, paper Eq. 1).
///
/// Dispatches to AVX2 when available; both paths produce identical bits.
///
/// # Panics
///
/// Panics if `acc.len() != field.len()`.
#[inline]
pub fn accumulate_norm_sqr(acc: &mut [f64], field: &[Complex], w: f64) {
    assert_eq!(acc.len(), field.len(), "accumulator/field length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: the AVX2 feature was detected at runtime on this
            // CPU, which is the only precondition of the target_feature
            // function below.
            #[allow(unsafe_code)]
            unsafe {
                accumulate_norm_sqr_avx2(acc, field, w);
            }
            return;
        }
    }
    accumulate_norm_sqr_scalar(acc, field, w);
}

/// Scalar reference — the definition of [`accumulate_norm_sqr`]'s
/// semantics, and the fallback for non-AVX2 targets.
#[inline]
fn accumulate_norm_sqr_scalar(acc: &mut [f64], field: &[Complex], w: f64) {
    for (a, z) in acc.iter_mut().zip(field) {
        *a += w * z.norm_sqr();
    }
}

/// AVX2 kernel: four pixels per iteration.
///
/// `vhaddpd(s1, s2)` performs the one addition `re·re + im·im` that the
/// scalar `norm_sqr` performs, so each lane is the identical correctly
/// rounded sum; the lane shuffle afterwards only reorders finished
/// values and cannot change bits.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
// SAFETY: callers must have verified AVX2 support (the public dispatcher
// gates on `avx2_available()`); lengths are equal by the dispatcher's
// assert and every load/store below is bounded by `i + 4 <= n`.
unsafe fn accumulate_norm_sqr_avx2(acc: &mut [f64], field: &[Complex], w: f64) {
    use std::arch::x86_64::*;
    let n = acc.len();
    let wv = _mm256_set1_pd(w);
    let fp = field.as_ptr() as *const f64;
    let ap = acc.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        // SAFETY: `i + 4 <= n` bounds the two 2-complex loads, the
        // accumulator load and the store; `Complex` is `repr(C)` so the
        // f64 reinterpretation sees [re, im] pairs.
        unsafe {
            let v1 = _mm256_loadu_pd(fp.add(2 * i)); // z0.re z0.im z1.re z1.im
            let v2 = _mm256_loadu_pd(fp.add(2 * i + 4)); // z2.re z2.im z3.re z3.im
            let s1 = _mm256_mul_pd(v1, v1);
            let s2 = _mm256_mul_pd(v2, v2);
            // [|z0|², |z2|², |z1|², |z3|²] — hadd interleaves 128-bit halves.
            let h = _mm256_hadd_pd(s1, s2);
            // Reorder lanes (0,2,1,3) → [|z0|², |z1|², |z2|², |z3|²].
            let nrm = _mm256_permute4x64_pd(h, 0b1101_1000);
            let a = _mm256_loadu_pd(ap.add(i));
            _mm256_storeu_pd(ap.add(i), _mm256_add_pd(a, _mm256_mul_pd(wv, nrm)));
        }
        i += 4;
    }
    accumulate_norm_sqr_scalar(&mut acc[i..], &field[i..], w);
}

/// Writes `out[i] = conj(a[i]) · g[i]` for real `g` — the adjoint pass's
/// `B = G ⊙ conj(A)` construction.
///
/// Dispatches to AVX2 when available; both paths produce identical bits.
///
/// # Panics
///
/// Panics if the three slices differ in length.
#[inline]
pub fn conj_mul_real(out: &mut [Complex], a: &[Complex], g: &[f64]) {
    assert_eq!(out.len(), a.len(), "output/field length mismatch");
    assert_eq!(out.len(), g.len(), "output/gradient length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: AVX2 detected at runtime — the only precondition of
            // the target_feature function below.
            #[allow(unsafe_code)]
            unsafe {
                conj_mul_real_avx2(out, a, g);
            }
            return;
        }
    }
    conj_mul_real_scalar(out, a, g);
}

/// Scalar reference — the definition of [`conj_mul_real`]'s semantics.
/// Matches the historical open-coded loop `*slot = a.conj() * g` (a
/// conjugate followed by a real scale).
#[inline]
fn conj_mul_real_scalar(out: &mut [Complex], a: &[Complex], g: &[f64]) {
    for ((slot, &z), &gi) in out.iter_mut().zip(a).zip(g) {
        *slot = z.conj() * gi;
    }
}

/// AVX2 kernel: four pixels per iteration.
///
/// The conjugate is an XOR with `-0.0` on the imaginary lanes (exact
/// sign flip); the real scale is one packed multiply against `g`
/// duplicated into [g, g] pairs. Both match the scalar
/// `(z.re·g, (−z.im)·g)` bit for bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
// SAFETY: callers must have verified AVX2 support (the public dispatcher
// gates on `avx2_available()`); lengths are equal by the dispatcher's
// asserts and every load/store below is bounded by `i + 4 <= n`.
unsafe fn conj_mul_real_avx2(out: &mut [Complex], a: &[Complex], g: &[f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    // [+0.0, −0.0, +0.0, −0.0]: XOR flips the sign of the im lanes only.
    let sign = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
    let ap = a.as_ptr() as *const f64;
    let gp = g.as_ptr();
    let op = out.as_mut_ptr() as *mut f64;
    let mut i = 0usize;
    while i + 4 <= n {
        // SAFETY: `i + 4 <= n` bounds the loads and stores; `Complex` is
        // `repr(C)` so the f64 reinterpretation sees [re, im] pairs.
        unsafe {
            let g4 = _mm256_loadu_pd(gp.add(i)); // g0 g1 g2 g3
            let a_lo = _mm256_loadu_pd(ap.add(2 * i)); // z0 z1
            let a_hi = _mm256_loadu_pd(ap.add(2 * i + 4)); // z2 z3
            let g_lo = _mm256_permute4x64_pd(g4, 0b0101_0000); // g0 g0 g1 g1
            let g_hi = _mm256_permute4x64_pd(g4, 0b1111_1010); // g2 g2 g3 g3
            let c_lo = _mm256_xor_pd(a_lo, sign);
            let c_hi = _mm256_xor_pd(a_hi, sign);
            _mm256_storeu_pd(op.add(2 * i), _mm256_mul_pd(c_lo, g_lo));
            _mm256_storeu_pd(op.add(2 * i + 4), _mm256_mul_pd(c_hi, g_hi));
        }
        i += 4;
    }
    conj_mul_real_scalar(&mut out[i..], &a[i..], &g[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::new(
                    (i as f64 * 0.7319).sin() * 3.5 - 1.0,
                    (i as f64 * 0.2711).cos() * 2.0 + 0.1,
                )
            })
            .collect()
    }

    #[test]
    fn norm_sqr_accumulation_matches_scalar_bitwise() {
        // Cover every alignment phase of the 4-lane kernel.
        for n in 0..19usize {
            let f = field(n);
            let mut fast: Vec<f64> = (0..n).map(|i| i as f64 * 0.013 - 0.4).collect();
            let mut slow = fast.clone();
            accumulate_norm_sqr(&mut fast, &f, 0.0817);
            accumulate_norm_sqr_scalar(&mut slow, &f, 0.0817);
            for i in 0..n {
                assert_eq!(fast[i].to_bits(), slow[i].to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn norm_sqr_accumulation_matches_open_coded_loop() {
        // The kernel must reproduce the historical accumulation expression
        // `*acc += w * z.norm_sqr()` exactly.
        let n = 23;
        let f = field(n);
        let w = 1.02 / 6.0;
        let mut got = vec![0.25; n];
        let mut reference = got.clone();
        accumulate_norm_sqr(&mut got, &f, w);
        for (acc, z) in reference.iter_mut().zip(&f) {
            *acc += w * z.norm_sqr();
        }
        for i in 0..n {
            assert_eq!(got[i].to_bits(), reference[i].to_bits(), "i={i}");
        }
    }

    #[test]
    fn conj_mul_matches_scalar_bitwise() {
        for n in 0..19usize {
            let a = field(n);
            let g: Vec<f64> = (0..n).map(|i| (i as f64 * 0.591).sin() * 4.0).collect();
            let mut fast = vec![Complex::ZERO; n];
            let mut slow = vec![Complex::ZERO; n];
            conj_mul_real(&mut fast, &a, &g);
            conj_mul_real_scalar(&mut slow, &a, &g);
            for i in 0..n {
                assert_eq!(fast[i].re.to_bits(), slow[i].re.to_bits(), "n={n} i={i}");
                assert_eq!(fast[i].im.to_bits(), slow[i].im.to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn conj_mul_matches_open_coded_loop() {
        // The adjoint pass historically wrote `*slot = a.conj() * g`.
        let n = 17;
        let a = field(n);
        let g: Vec<f64> = (0..n).map(|i| i as f64 * -0.37 + 1.0).collect();
        let mut got = vec![Complex::ZERO; n];
        conj_mul_real(&mut got, &a, &g);
        for i in 0..n {
            let reference = a[i].conj() * g[i];
            assert_eq!(got[i].re.to_bits(), reference.re.to_bits(), "i={i}");
            assert_eq!(got[i].im.to_bits(), reference.im.to_bits(), "i={i}");
        }
    }

    #[test]
    fn detection_latch_is_stable() {
        assert_eq!(avx2_available(), avx2_available());
    }
}
