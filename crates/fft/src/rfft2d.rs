//! Real-input 2-D FFT exploiting Hermitian symmetry.
//!
//! Masks are real, so their spectra obey `S(ky, kx) = conj(S(−ky, −kx))`
//! (indices mod grid). [`Rfft2d`] uses that twice:
//!
//! * **Row pass** — two real rows are packed as the real and imaginary
//!   parts of one complex row (`Z = r₀ + i·r₁`), transformed once, and
//!   unpacked via `F₀(k) = (Z(k) + conj(Z(−k)))/2`,
//!   `F₁(k) = (Z(k) − conj(Z(−k)))/(2i)` — halving the row transforms.
//! * **Column pass** — only the `w/2 + 1` non-redundant columns are
//!   transformed; the remaining half of the spectrum is filled by the 2-D
//!   symmetry relation — halving the column transforms.
//!
//! [`Rfft2d::forward_re_into`] runs the mirrored trick for the gradient's
//! final `Re[FFT(·)]` step: the input is first projected onto its
//! Hermitian part (which leaves the real part of the transform unchanged,
//! since the anti-Hermitian remainder transforms to a purely imaginary
//! field), columns are transformed over the non-redundant half, and two
//! real output rows are then recovered from each packed complex row
//! transform.
//!
//! The full complex spectrum is always materialized on output so sparse
//! spectral consumers (the SOCS kernel supports index the full grid) need
//! no layout changes. Every output cell is computed by exactly one task
//! and no cross-task reductions occur, so results are **bit-identical
//! across worker counts**.

use crate::complex::Complex;
use crate::fft1d::{Fft, FftError};
use crate::fft2d::Fft2d;
use crate::parallel::par_chunks_mut;
use crate::workspace::BufferPool;

/// A reusable real-input 2-D FFT plan for a fixed `height × width` shape.
///
/// Both dimensions must be powers of two. The plan is `Send + Sync` and
/// cheap to clone; clones share the scratch pools.
///
/// # Examples
///
/// ```
/// use cfaopc_fft::{Complex, Fft2d, Rfft2d};
///
/// # fn main() -> Result<(), cfaopc_fft::FftError> {
/// let n = 8;
/// let img: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.3).sin()).collect();
/// let rplan = Rfft2d::square(n)?;
/// let mut spectrum = vec![Complex::ZERO; n * n];
/// rplan.forward_into(&img, &mut spectrum)?;
///
/// // Same spectrum as the complex plan applied to the real image.
/// let mut full: Vec<Complex> = img.iter().map(|&v| Complex::from_re(v)).collect();
/// Fft2d::square(n)?.forward(&mut full)?;
/// for (a, b) in spectrum.iter().zip(&full) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Rfft2d {
    height: usize,
    width: usize,
    row_fft: Fft,
    col_fft: Fft,
    /// Recycled packed-row buffers (`width` entries each).
    row_scratch: BufferPool<Complex>,
    /// Recycled half-spectrum column scratch (`(w/2 + 1) · h` entries).
    /// Kept separate from the row pool so neither pool thrashes between
    /// buffer shapes.
    col_scratch: BufferPool<Complex>,
    /// Full complex plan for degenerate shapes (an edge shorter than 2
    /// rows leaves nothing to pack) — never used on production grids.
    fallback: Fft2d,
}

impl Rfft2d {
    /// Builds a plan for `height × width` real-input transforms.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthNotPowerOfTwo`] if either dimension is
    /// not a nonzero power of two.
    pub fn new(height: usize, width: usize) -> Result<Self, FftError> {
        Ok(Rfft2d {
            height,
            width,
            row_fft: Fft::new(width)?,
            col_fft: Fft::new(height)?,
            row_scratch: BufferPool::new(),
            col_scratch: BufferPool::new(),
            fallback: Fft2d::new(height, width)?,
        })
    }

    /// Convenience constructor for square transforms.
    ///
    /// # Errors
    ///
    /// Same as [`Rfft2d::new`].
    pub fn square(n: usize) -> Result<Self, FftError> {
        Self::new(n, n)
    }

    /// Grid height (number of rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Grid width (number of columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total element count `height × width`.
    #[inline]
    pub fn len(&self) -> usize {
        self.height * self.width
    }

    /// Returns `true` if the plan covers zero elements (never, by
    /// construction, but provided alongside `len` per convention).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check(&self, actual: usize) -> Result<(), FftError> {
        if actual != self.len() {
            return Err(FftError::LengthMismatch {
                expected: self.len(),
                actual,
            });
        }
        Ok(())
    }

    /// Forward 2-D DFT of a real field into a full complex spectrum.
    ///
    /// Equivalent to widening `src` to complex and running
    /// [`Fft2d::forward`], at roughly half the transform work. Output
    /// cells are each written by exactly one task, so the result is
    /// bit-identical across worker counts (though not bit-identical to
    /// the complex plan — the packing reassociates a few additions).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `src` or `out` is not
    /// `height·width` long.
    pub fn forward_into(&self, src: &[f64], out: &mut [Complex]) -> Result<(), FftError> {
        self.check(src.len())?;
        self.check(out.len())?;
        cfaopc_trace::counters::FFT_2D.incr();
        let (h, w) = (self.height, self.width);
        if h < 2 || w < 2 {
            for (slot, &v) in out.iter_mut().zip(src) {
                *slot = Complex::from_re(v);
            }
            return self.fallback.forward(out);
        }
        let wh = w / 2 + 1;

        // Row pass: rows (2p, 2p+1) share one complex transform.
        let row_fft = &self.row_fft;
        let row_scratch = &self.row_scratch;
        par_chunks_mut(out, 2 * w, |p, chunk| {
            let r0 = 2 * p * w;
            let r1 = r0 + w;
            let mut buf = row_scratch.take(w);
            for (x, slot) in buf.iter_mut().enumerate() {
                *slot = Complex::new(src[r0 + x], src[r1 + x]);
            }
            row_fft
                .forward(&mut buf)
                .expect("row length matches plan by construction");
            for k in 0..w {
                let z = buf[k];
                let zm = buf[(w - k) % w].conj();
                // F₀ = (Z + conj(Z(−k)))/2, F₁ = (Z − conj(Z(−k)))/(2i).
                chunk[k] = Complex::new((z.re + zm.re) * 0.5, (z.im + zm.im) * 0.5);
                chunk[w + k] = Complex::new((z.im - zm.im) * 0.5, (zm.re - z.re) * 0.5);
            }
            row_scratch.put(buf);
        });

        // Column pass over the non-redundant columns only, in column-major
        // scratch (gather → transform → scatter).
        let mut cols = self.col_scratch.take(wh * h);
        {
            let col_fft = &self.col_fft;
            let rows_done: &[Complex] = out;
            par_chunks_mut(&mut cols, h, |c, col| {
                for (y, slot) in col.iter_mut().enumerate() {
                    *slot = rows_done[y * w + c];
                }
                col_fft
                    .forward(col)
                    .expect("column length matches plan by construction");
            });
        }
        let cols_ro: &[Complex] = &cols;
        par_chunks_mut(out, w, |y, row| {
            for (c, slot) in row[..wh].iter_mut().enumerate() {
                *slot = cols_ro[c * h + y];
            }
        });
        self.col_scratch.put(cols);

        // Hermitian fill of the redundant half: S(ky,kx) = conj(S(−ky,−kx)).
        // Reads stay in columns < wh (already final), writes in columns
        // ≥ wh — disjoint, so fill order is irrelevant.
        for ky in 0..h {
            let mirror_row = ((h - ky) % h) * w;
            for kx in wh..w {
                let v = out[mirror_row + (w - kx)].conj();
                out[ky * w + kx] = v;
            }
        }
        Ok(())
    }

    /// Writes `out = Re[FFT2D(freq)]` — the gradient's final shared
    /// forward transform — at roughly half the full transform's cost.
    ///
    /// The anti-Hermitian part of `freq` contributes only to the
    /// imaginary part of the transform, so `freq` is first projected onto
    /// its Hermitian part, whose transform is real and recoverable from
    /// `w/2 + 1` column transforms plus one packed complex row transform
    /// per *pair* of output rows. Bit-identical across worker counts.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `freq` or `out` is not
    /// `height·width` long.
    pub fn forward_re_into(&self, freq: &[Complex], out: &mut [f64]) -> Result<(), FftError> {
        self.check(freq.len())?;
        self.check(out.len())?;
        cfaopc_trace::counters::FFT_2D.incr();
        let (h, w) = (self.height, self.width);
        if h < 2 || w < 2 {
            let mut buf = self.col_scratch.take(h * w);
            buf.copy_from_slice(freq);
            self.fallback.forward(&mut buf)?;
            for (slot, z) in out.iter_mut().zip(&buf) {
                *slot = z.re;
            }
            self.col_scratch.put(buf);
            return Ok(());
        }
        let wh = w / 2 + 1;

        // Hermitian projection + column transform, non-redundant columns
        // only. The projected input has the 2-D symmetry, and the column
        // DFT turns it into rows that are Hermitian in kx (substituting
        // ky → −ky in the column sum conjugates the result and mirrors
        // kx), so the redundant columns are recoverable by conjugation.
        let mut cols = self.col_scratch.take(wh * h);
        {
            let col_fft = &self.col_fft;
            par_chunks_mut(&mut cols, h, |c, col| {
                let wc = (w - c) % w;
                for (ky, slot) in col.iter_mut().enumerate() {
                    let z = freq[ky * w + c];
                    let zm = freq[((h - ky) % h) * w + wc].conj();
                    *slot = Complex::new((z.re + zm.re) * 0.5, (z.im + zm.im) * 0.5);
                }
                col_fft
                    .forward(col)
                    .expect("column length matches plan by construction");
            });
        }

        // Row pass: each transformed row is Hermitian in kx, so its row
        // DFT is real; packing rows (2p, 2p+1) as D = C(y₀) + i·C(y₁)
        // makes one transform yield both real output rows (real part →
        // y₀, imaginary part → y₁).
        let cols_ro: &[Complex] = &cols;
        let row_fft = &self.row_fft;
        let row_scratch = &self.row_scratch;
        par_chunks_mut(out, 2 * w, |p, chunk| {
            let y0 = 2 * p;
            let y1 = y0 + 1;
            let mut buf = row_scratch.take(w);
            for (k, slot) in buf.iter_mut().enumerate() {
                let (cs, mirror) = if k < wh { (k, false) } else { (w - k, true) };
                let mut c0 = cols_ro[cs * h + y0];
                let mut c1 = cols_ro[cs * h + y1];
                if mirror {
                    c0 = c0.conj();
                    c1 = c1.conj();
                }
                *slot = Complex::new(c0.re - c1.im, c0.im + c1.re);
            }
            row_fft
                .forward(&mut buf)
                .expect("row length matches plan by construction");
            for x in 0..w {
                chunk[x] = buf[x].re;
                chunk[w + x] = buf[x].im;
            }
            row_scratch.put(buf);
        });
        self.col_scratch.put(cols);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft2d::Fft2d;

    fn real_sample(h: usize, w: usize) -> Vec<f64> {
        (0..h * w)
            .map(|i| (i as f64 * 0.13).sin() * 0.8 + (i as f64 * 0.029).cos() * 0.3 - 0.1)
            .collect()
    }

    fn complex_sample(h: usize, w: usize) -> Vec<Complex> {
        (0..h * w)
            .map(|i| Complex::new((i as f64 * 0.17).sin(), (i as f64 * 0.07).cos() - 0.2))
            .collect()
    }

    fn spectrum_tolerance(vals: &[Complex], n: usize) -> f64 {
        // Ulp-scaled: FFT rounding grows like ε·log₂(n)·‖X‖∞; allow a
        // small constant factor over that.
        let peak = vals.iter().map(|z| z.abs()).fold(1.0f64, f64::max);
        peak * f64::EPSILON * 8.0 * (n.max(2) as f64).log2()
    }

    #[test]
    fn matches_complex_plan_across_shapes() {
        for (h, w) in [(2, 2), (4, 8), (8, 4), (16, 16), (32, 8), (64, 64)] {
            let src = real_sample(h, w);
            let rplan = Rfft2d::new(h, w).unwrap();
            let mut got = vec![Complex::ZERO; h * w];
            rplan.forward_into(&src, &mut got).unwrap();

            let mut full: Vec<Complex> = src.iter().map(|&v| Complex::from_re(v)).collect();
            Fft2d::new(h, w).unwrap().forward(&mut full).unwrap();
            let tol = spectrum_tolerance(&full, h.max(w));
            for (i, (a, b)) in got.iter().zip(&full).enumerate() {
                assert!(
                    (*a - *b).abs() <= tol,
                    "({h}x{w}) bin {i}: {a:?} vs {b:?} (tol {tol:e})"
                );
            }
        }
    }

    #[test]
    fn output_is_hermitian_bit_exactly() {
        let (h, w) = (16, 8);
        let src = real_sample(h, w);
        let rplan = Rfft2d::new(h, w).unwrap();
        let mut spec = vec![Complex::ZERO; h * w];
        rplan.forward_into(&src, &mut spec).unwrap();
        for ky in 0..h {
            for kx in w / 2 + 1..w {
                let a = spec[ky * w + kx];
                let b = spec[((h - ky) % h) * w + (w - kx)].conj();
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "({ky},{kx})");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "({ky},{kx})");
            }
        }
    }

    #[test]
    fn forward_re_matches_full_transform() {
        for (h, w) in [(2, 2), (4, 8), (8, 4), (16, 16), (64, 64)] {
            let freq = complex_sample(h, w);
            let rplan = Rfft2d::new(h, w).unwrap();
            let mut got = vec![0.0f64; h * w];
            rplan.forward_re_into(&freq, &mut got).unwrap();

            let mut full = freq.clone();
            Fft2d::new(h, w).unwrap().forward(&mut full).unwrap();
            let tol = spectrum_tolerance(&full, h.max(w));
            for (i, (a, b)) in got.iter().zip(&full).enumerate() {
                assert!(
                    (a - b.re).abs() <= tol,
                    "({h}x{w}) pixel {i}: {a} vs {} (tol {tol:e})",
                    b.re
                );
            }
        }
    }

    #[test]
    fn degenerate_shapes_fall_back_to_full_plan() {
        for (h, w) in [(1, 8), (8, 1), (1, 1)] {
            let src = real_sample(h, w);
            let rplan = Rfft2d::new(h, w).unwrap();
            let mut got = vec![Complex::ZERO; h * w];
            rplan.forward_into(&src, &mut got).unwrap();
            let mut full: Vec<Complex> = src.iter().map(|&v| Complex::from_re(v)).collect();
            Fft2d::new(h, w).unwrap().forward(&mut full).unwrap();
            for (a, b) in got.iter().zip(&full) {
                assert!((*a - *b).abs() < 1e-12);
            }
            let freq = complex_sample(h, w);
            let mut re = vec![0.0f64; h * w];
            rplan.forward_re_into(&freq, &mut re).unwrap();
            let mut fullc = freq.clone();
            Fft2d::new(h, w).unwrap().forward(&mut fullc).unwrap();
            for (a, b) in re.iter().zip(&fullc) {
                assert!((a - b.re).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_wrong_lengths() {
        let rplan = Rfft2d::square(8).unwrap();
        let mut out = vec![Complex::ZERO; 64];
        assert!(matches!(
            rplan.forward_into(&[0.0; 63], &mut out),
            Err(FftError::LengthMismatch { .. })
        ));
        let mut short = vec![Complex::ZERO; 10];
        assert!(rplan.forward_into(&[0.0; 64], &mut short).is_err());
        let mut re = vec![0.0; 63];
        assert!(rplan.forward_re_into(&out, &mut re).is_err());
    }

    #[test]
    fn constant_field_concentrates_at_dc() {
        let n = 16;
        let rplan = Rfft2d::square(n).unwrap();
        let mut spec = vec![Complex::ZERO; n * n];
        rplan.forward_into(&vec![0.5; n * n], &mut spec).unwrap();
        assert!((spec[0].re - 0.5 * (n * n) as f64).abs() < 1e-9);
        for z in spec.iter().skip(1) {
            assert!(z.abs() < 1e-9);
        }
    }
}
