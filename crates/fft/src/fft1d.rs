//! One-dimensional radix-2 Cooley–Tukey FFT.
//!
//! The plan precomputes the bit-reversal permutation and the twiddle
//! factors for every butterfly stage so repeated transforms of the same
//! length (the common case: one plan per grid edge, thousands of row and
//! column transforms) pay no trigonometry at run time.

use crate::complex::Complex;
use std::fmt;
use std::sync::Arc;

/// Error returned when constructing or applying an FFT plan with an
/// incompatible length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// The requested transform length is zero or not a power of two.
    LengthNotPowerOfTwo(usize),
    /// The buffer passed to an execute method does not match the plan length.
    LengthMismatch {
        /// Length the plan was built for.
        expected: usize,
        /// Length of the buffer that was provided.
        actual: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::LengthNotPowerOfTwo(n) => {
                write!(f, "fft length {n} is not a nonzero power of two")
            }
            FftError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match plan length {expected}"
                )
            }
        }
    }
}

impl std::error::Error for FftError {}

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Time/space → frequency, kernel `e^{-2πi kn/N}`.
    Forward,
    /// Frequency → time/space, kernel `e^{+2πi kn/N}`, scaled by `1/N`.
    Inverse,
}

/// A reusable FFT plan for a fixed power-of-two length.
///
/// The plan is cheap to clone (twiddle tables are shared through [`Arc`])
/// and is `Send + Sync`, so one plan can drive many worker threads.
///
/// # Examples
///
/// ```
/// use cfaopc_fft::{Complex, Fft};
///
/// # fn main() -> Result<(), cfaopc_fft::FftError> {
/// let fft = Fft::new(8)?;
/// let mut data = vec![Complex::ZERO; 8];
/// data[0] = Complex::ONE; // impulse
/// fft.forward(&mut data)?;
/// // The spectrum of an impulse is flat.
/// for bin in &data {
///     assert!((bin.re - 1.0).abs() < 1e-12 && bin.im.abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    bit_rev: Arc<[u32]>,
    /// Forward twiddles laid out stage-major: for each stage `s`
    /// (half-size `m = 2^s`), `m` factors `e^{-iπ j/m}`, `j = 0..m`.
    twiddles: Arc<[Complex]>,
    /// Conjugated copy of `twiddles` for the inverse transform, so the
    /// butterfly loops index one table instead of conjugating per
    /// butterfly. `z.conj()` only flips a sign bit, so the precomputed
    /// table is bit-identical to conjugating at use.
    twiddles_inv: Arc<[Complex]>,
}

impl Fft {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthNotPowerOfTwo`] unless `n` is a nonzero
    /// power of two.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(FftError::LengthNotPowerOfTwo(n));
        }
        let log2n = n.trailing_zeros();
        let mut bit_rev = vec![0u32; n];
        for (i, slot) in bit_rev.iter_mut().enumerate() {
            *slot = (i as u32).reverse_bits() >> (32 - log2n.max(1));
        }
        if n == 1 {
            bit_rev[0] = 0;
        }
        // Total twiddle count: 1 + 2 + 4 + ... + n/2 = n - 1.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut m = 1usize;
        while m < n {
            for j in 0..m {
                twiddles.push(Complex::cis(-std::f64::consts::PI * j as f64 / m as f64));
            }
            m <<= 1;
        }
        let twiddles_inv: Vec<Complex> = twiddles.iter().map(|w| w.conj()).collect();
        Ok(Fft {
            n,
            bit_rev: bit_rev.into(),
            twiddles: twiddles.into(),
            twiddles_inv: twiddles_inv.into(),
        })
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate length-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn check(&self, data: &[Complex]) -> Result<(), FftError> {
        if data.len() != self.n {
            return Err(FftError::LengthMismatch {
                expected: self.n,
                actual: data.len(),
            });
        }
        Ok(())
    }

    /// In-place forward DFT: `X[k] = Σ_n x[n] e^{-2πi kn/N}`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.check(data)?;
        self.dispatch(data, Direction::Forward);
        Ok(())
    }

    /// In-place inverse DFT: `x[n] = (1/N) Σ_k X[k] e^{+2πi kn/N}`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.check(data)?;
        self.dispatch(data, Direction::Inverse);
        let inv = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
        Ok(())
    }

    /// In-place transform in the given [`Direction`].
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != self.len()`.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        match dir {
            Direction::Forward => self.forward(data),
            Direction::Inverse => self.inverse(data),
        }
    }

    fn dispatch(&self, data: &mut [Complex], dir: Direction) {
        if self.n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..self.n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative butterflies; the direction picks one of the two
        // precomputed stage-major twiddle tables (the inverse table is the
        // conjugated copy — bit-identical to conjugating per butterfly).
        let tw = match dir {
            Direction::Forward => &self.twiddles,
            Direction::Inverse => &self.twiddles_inv,
        };
        #[cfg(target_arch = "x86_64")]
        {
            if self.n >= 4 && crate::simd::avx2_available() {
                // SAFETY: AVX2 was detected at runtime — the only
                // precondition of the target_feature function below.
                #[allow(unsafe_code)]
                unsafe {
                    butterflies_avx2(data, tw);
                }
                return;
            }
        }
        butterflies_scalar(data, tw);
    }
}

/// Scalar butterfly ladder — the definition of the transform's numerical
/// semantics and the fallback for non-AVX2 targets. `data.len()` must be
/// a power of two ≥ 2 and `tw` its stage-major twiddle table (already
/// conjugated for inverse transforms).
#[inline]
fn butterflies_scalar(data: &mut [Complex], tw: &[Complex]) {
    let n = data.len();
    let mut m = 1usize;
    let mut tw_base = 0usize;
    while m < n {
        let step = m << 1;
        for start in (0..n).step_by(step) {
            for j in 0..m {
                let w = tw[tw_base + j];
                let a = data[start + j];
                let b = data[start + j + m] * w;
                data[start + j] = a + b;
                data[start + j + m] = a - b;
            }
        }
        tw_base += m;
        m = step;
    }
}

/// AVX2 butterfly ladder, two complex butterflies per vector op.
///
/// # Why this is bit-identical to [`butterflies_scalar`]
///
/// The twiddle product uses `vmulpd` + `vaddsubpd`: even lanes compute
/// `b.re·w.re − b.im·w.im` and odd lanes `b.im·w.re + b.re·w.im`. The
/// scalar `Complex::mul` computes `b.re·w.im + b.im·w.re` for the
/// imaginary part — the same two correctly rounded products added in the
/// other order, and IEEE-754 addition is commutative (one rounding of the
/// exact sum either way) — so every lane carries the scalar bits. The
/// `a ± b·w` adds and the first-stage deinterleave/reinterleave shuffles
/// (`vperm2f128` moves finished values only) preserve that. No FMA is
/// emitted: the intrinsics pin the instruction selection.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
// SAFETY: callers must have verified AVX2 support (the `dispatch` gate);
// additionally `data.len()` must be a power of two ≥ 4 with `tw` its
// stage-major twiddle table — both guaranteed by plan construction. All
// pointer arithmetic below is bounded by those shapes.
unsafe fn butterflies_avx2(data: &mut [Complex], tw: &[Complex]) {
    use std::arch::x86_64::*;
    let n = data.len();
    debug_assert!(n >= 4 && n.is_power_of_two());
    let p = data.as_mut_ptr() as *mut f64;
    let twp = tw.as_ptr() as *const f64;

    // Stage m = 1: butterflies on adjacent pairs (a, b) with w = tw[0].
    // Two 2-complex registers are deinterleaved into an `a` vector and a
    // `b` vector, processed, and reinterleaved — the arithmetic per lane
    // matches the generic scalar butterfly with w = tw[0] exactly.
    // SAFETY: `i + 4 <= n` bounds all loads/stores; `Complex` is
    // `repr(C)` so the f64 view sees [re, im] pairs.
    unsafe {
        let w_re = _mm256_set1_pd(tw[0].re);
        let w_im = _mm256_set1_pd(tw[0].im);
        let mut i = 0usize;
        while i + 4 <= n {
            let v_lo = _mm256_loadu_pd(p.add(2 * i)); // a0 b0
            let v_hi = _mm256_loadu_pd(p.add(2 * i + 4)); // a1 b1
            let a = _mm256_permute2f128_pd(v_lo, v_hi, 0x20); // a0 a1
            let b = _mm256_permute2f128_pd(v_lo, v_hi, 0x31); // b0 b1
                                                              // b·w via mul/addsub (see the bit-identity argument above).
            let b_swap = _mm256_permute_pd(b, 0b0101);
            let bw = _mm256_addsub_pd(_mm256_mul_pd(b, w_re), _mm256_mul_pd(b_swap, w_im));
            let s = _mm256_add_pd(a, bw);
            let d = _mm256_sub_pd(a, bw);
            _mm256_storeu_pd(p.add(2 * i), _mm256_permute2f128_pd(s, d, 0x20));
            _mm256_storeu_pd(p.add(2 * i + 4), _mm256_permute2f128_pd(s, d, 0x31));
            i += 4;
        }
    }

    // Stages m ≥ 2: lanes j and j+1 live in one register already.
    let mut m = 2usize;
    let mut tw_base = 1usize;
    while m < n {
        let step = m << 1;
        let mut start = 0usize;
        while start < n {
            let mut j = 0usize;
            while j + 2 <= m {
                // SAFETY: `j + 2 <= m` keeps the twiddle load inside this
                // stage's table block and both data loads/stores inside
                // the current butterfly group (`start + j + m + 2 <=
                // start + step <= n`).
                unsafe {
                    let w = _mm256_loadu_pd(twp.add(2 * (tw_base + j))); // w0 w1
                    let a = _mm256_loadu_pd(p.add(2 * (start + j)));
                    let b = _mm256_loadu_pd(p.add(2 * (start + j + m)));
                    let w_re = _mm256_movedup_pd(w); // w0.re w0.re w1.re w1.re
                    let w_im = _mm256_permute_pd(w, 0b1111); // w0.im w0.im w1.im w1.im
                    let b_swap = _mm256_permute_pd(b, 0b0101);
                    let bw = _mm256_addsub_pd(_mm256_mul_pd(b, w_re), _mm256_mul_pd(b_swap, w_im));
                    _mm256_storeu_pd(p.add(2 * (start + j)), _mm256_add_pd(a, bw));
                    _mm256_storeu_pd(p.add(2 * (start + j + m)), _mm256_sub_pd(a, bw));
                }
                j += 2;
            }
            start += step;
        }
        tw_base += m;
        m = step;
    }
}

/// Reference O(n²) DFT used by the test-suite as ground truth.
///
/// Exposed publicly so downstream crates can sanity-check their own
/// frequency-domain constructions in tests; do not use it on large inputs.
/// Allocates a fresh output per call — fuzz and property loops should
/// prefer [`naive_dft_into`] with a reused buffer.
pub fn naive_dft(input: &[Complex], dir: Direction) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; input.len()];
    naive_dft_into(input, dir, &mut out);
    out
}

/// [`naive_dft`] into a caller-owned buffer, so tight reference loops
/// (fuzzers, property tests) stop allocating per transform.
///
/// # Panics
///
/// Panics if `out.len() != input.len()` — this is test-support code, a
/// typed error would only obscure the broken harness.
pub fn naive_dft_into(input: &[Complex], dir: Direction, out: &mut [Complex]) {
    let n = input.len();
    assert_eq!(out.len(), n, "output buffer length must match the input");
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let phase = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc += x * Complex::cis(phase);
        }
        *slot = if matches!(dir, Direction::Inverse) {
            acc.scale(1.0 / n as f64)
        } else {
            acc
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "mismatch at {i}: {x:?} vs {y:?}");
        }
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.37 - 1.0, (i as f64 * 0.11).sin()))
            .collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(Fft::new(0), Err(FftError::LengthNotPowerOfTwo(0))));
        assert!(matches!(Fft::new(3), Err(FftError::LengthNotPowerOfTwo(3))));
        assert!(matches!(
            Fft::new(12),
            Err(FftError::LengthNotPowerOfTwo(12))
        ));
        assert!(Fft::new(16).is_ok());
    }

    #[test]
    fn rejects_wrong_buffer_length() {
        let fft = Fft::new(8).unwrap();
        let mut buf = vec![Complex::ZERO; 4];
        assert!(matches!(
            fft.forward(&mut buf),
            Err(FftError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn matches_naive_dft_for_all_small_sizes() {
        for log2 in 0..=9 {
            let n = 1usize << log2;
            let input = ramp(n);
            let expected = naive_dft(&input, Direction::Forward);
            let mut got = input.clone();
            Fft::new(n).unwrap().forward(&mut got).unwrap();
            assert_close(&got, &expected, 1e-8 * n as f64);
        }
    }

    #[test]
    fn inverse_matches_naive_inverse() {
        let n = 64;
        let input = ramp(n);
        let expected = naive_dft(&input, Direction::Inverse);
        let mut got = input.clone();
        Fft::new(n).unwrap().inverse(&mut got).unwrap();
        assert_close(&got, &expected, 1e-9);
    }

    #[test]
    fn roundtrip_recovers_input() {
        let n = 256;
        let input = ramp(n);
        let mut buf = input.clone();
        let fft = Fft::new(n).unwrap();
        fft.forward(&mut buf).unwrap();
        fft.inverse(&mut buf).unwrap();
        assert_close(&buf, &input, 1e-10);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let n = 32;
        let mut buf = vec![Complex::ZERO; n];
        buf[0] = Complex::ONE;
        Fft::new(n).unwrap().forward(&mut buf).unwrap();
        for z in &buf {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_concentrates_at_dc() {
        let n = 32;
        let mut buf = vec![Complex::from_re(2.0); n];
        Fft::new(n).unwrap().forward(&mut buf).unwrap();
        assert!((buf[0].re - 2.0 * n as f64).abs() < 1e-10);
        for z in buf.iter().skip(1) {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn shift_theorem() {
        // Shifting the input by s multiplies bin k by e^{-2πiks/N}.
        let n = 64;
        let input = ramp(n);
        let s = 5usize;
        let shifted: Vec<Complex> = (0..n).map(|i| input[(i + n - s) % n]).collect();
        let fft = Fft::new(n).unwrap();
        let mut a = input.clone();
        fft.forward(&mut a).unwrap();
        let mut b = shifted;
        fft.forward(&mut b).unwrap();
        for k in 0..n {
            let phase = Complex::cis(-2.0 * std::f64::consts::PI * (k * s) as f64 / n as f64);
            assert!((a[k] * phase - b[k]).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let input = ramp(n);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = input;
        Fft::new(n).unwrap().forward(&mut freq).unwrap();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a = ramp(n);
        let b: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), 0.3))
            .collect();
        let fft = Fft::new(n).unwrap();
        let alpha = Complex::new(1.5, -0.5);

        let mut lhs: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| alpha * x + y).collect();
        fft.forward(&mut lhs).unwrap();

        let mut fa = a.clone();
        fft.forward(&mut fa).unwrap();
        let mut fb = b.clone();
        fft.forward(&mut fb).unwrap();
        for k in 0..n {
            let rhs = alpha * fa[k] + fb[k];
            assert!((lhs[k] - rhs).abs() < 1e-8);
        }
    }

    #[test]
    fn avx2_butterflies_bit_identical_to_scalar() {
        // The dispatcher's contract: the SIMD ladder must reproduce the
        // scalar reference bit for bit, in both directions, at every size
        // the litho stack uses (and the small ones where the m=1 stage
        // dominates). When AVX2 is unavailable this degenerates to
        // scalar-vs-scalar, which still pins the shared butterfly body.
        for log2 in 2..=9 {
            let n = 1usize << log2;
            let plan = Fft::new(n).unwrap();
            for dir in [Direction::Forward, Direction::Inverse] {
                let tw = match dir {
                    Direction::Forward => &plan.twiddles,
                    Direction::Inverse => &plan.twiddles_inv,
                };
                let mut simd = ramp(n);
                plan.dispatch(&mut simd, dir);
                // dispatch() also bit-reverses; apply the same permutation
                // to the scalar ladder's input for a like-for-like run.
                let mut scalar_in = ramp(n);
                for i in 0..n {
                    let j = plan.bit_rev[i] as usize;
                    if i < j {
                        scalar_in.swap(i, j);
                    }
                }
                butterflies_scalar(&mut scalar_in, tw);
                for i in 0..n {
                    assert_eq!(
                        simd[i].re.to_bits(),
                        scalar_in[i].re.to_bits(),
                        "n={n} {dir:?} i={i}"
                    );
                    assert_eq!(
                        simd[i].im.to_bits(),
                        scalar_in[i].im.to_bits(),
                        "n={n} {dir:?} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_twiddle_table_is_exact_conjugate() {
        let plan = Fft::new(64).unwrap();
        for (w, wi) in plan.twiddles.iter().zip(plan.twiddles_inv.iter()) {
            assert_eq!(w.re.to_bits(), wi.re.to_bits());
            assert_eq!(w.conj().im.to_bits(), wi.im.to_bits());
        }
    }

    #[test]
    fn naive_dft_into_matches_allocating_variant() {
        let input = ramp(16);
        let mut out = vec![Complex::ZERO; 16];
        for dir in [Direction::Forward, Direction::Inverse] {
            naive_dft_into(&input, dir, &mut out);
            let fresh = naive_dft(&input, dir);
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "output buffer length")]
    fn naive_dft_into_rejects_wrong_length() {
        let input = ramp(8);
        let mut out = vec![Complex::ZERO; 4];
        naive_dft_into(&input, Direction::Forward, &mut out);
    }

    #[test]
    fn length_one_is_identity() {
        let fft = Fft::new(1).unwrap();
        let mut buf = vec![Complex::new(3.0, -2.0)];
        fft.forward(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.0, -2.0));
        fft.inverse(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.0, -2.0));
    }
}
