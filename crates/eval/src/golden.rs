//! Golden-file comparison: per-metric drift detection with tolerances.
//!
//! `cfaopc eval --check eval/golden.json` runs the suite and calls
//! [`compare_reports`] against the blessed report. The harness itself is
//! bitwise deterministic on a given platform, so the tolerance exists
//! for one reason only: cross-platform libm differences (`sin`/`cos`
//! in the kernel stack can differ in the last ulp between glibc
//! versions), which after thresholding can shift a metric slightly.
//! Hence the acceptance rule per metric:
//!
//! ```text
//! |got − golden| ≤ abs_tol + rel_tol · |golden|
//! ```
//!
//! with defaults generous enough for a last-ulp upstream wiggle
//! (`rel = 0.02`, `abs = 0.5` — the absolute floor covers discrete
//! metrics like EPE and shot counts near zero) and strict enough to
//! catch real regressions, which move these metrics by whole percents.

use crate::harness::{EvalReport, MethodOutcome};
use std::fmt;

/// Per-metric acceptance band for golden comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative tolerance against the golden magnitude.
    pub rel: f64,
    /// Absolute tolerance floor (covers integer metrics near zero).
    pub abs: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            rel: 0.02,
            abs: 0.5,
        }
    }
}

impl Tolerance {
    /// The allowed absolute deviation for a golden value.
    pub fn allowed(&self, golden: f64) -> f64 {
        self.abs + self.rel * golden.abs()
    }
}

/// One metric that moved beyond tolerance (or a structural mismatch).
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Testcase name, or `"<report>"` for structural mismatches.
    pub case: String,
    /// `"rule"`, `"opt"`, or `"-"` for structural mismatches.
    pub method: String,
    /// Metric name (`l2`, `pvb`, `epe`, `shots`, `window`), or a
    /// description for structural mismatches.
    pub metric: String,
    /// Golden value.
    pub golden: f64,
    /// Measured value.
    pub got: f64,
    /// The acceptance band that was exceeded.
    pub allowed: f64,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<5} {:<8} golden {:>14.4}  got {:>14.4}  |drift| {:>12.4} > allowed {:.4}",
            self.case,
            self.method,
            self.metric,
            self.golden,
            self.got,
            (self.got - self.golden).abs(),
            self.allowed
        )
    }
}

fn method_drifts(
    case: &str,
    method: &str,
    golden: &MethodOutcome,
    got: &MethodOutcome,
    tol: &Tolerance,
    out: &mut Vec<Drift>,
) {
    let metrics: [(&str, f64, f64); 5] = [
        ("l2", golden.l2, got.l2),
        ("pvb", golden.pvb, got.pvb),
        ("epe", golden.epe as f64, got.epe as f64),
        ("shots", golden.shots as f64, got.shots as f64),
        ("window", golden.window, got.window),
    ];
    for (name, golden_v, got_v) in metrics {
        let allowed = tol.allowed(golden_v);
        if (got_v - golden_v).abs() > allowed {
            out.push(Drift {
                case: case.to_string(),
                method: method.to_string(),
                metric: name.to_string(),
                golden: golden_v,
                got: got_v,
                allowed,
            });
        }
    }
}

fn structural(metric: impl Into<String>, golden: f64, got: f64) -> Drift {
    Drift {
        case: "<report>".into(),
        method: "-".into(),
        metric: metric.into(),
        golden,
        got,
        allowed: 0.0,
    }
}

/// Compares a freshly measured report against the golden one; an empty
/// result means "no drift". Structural mismatches (different suite,
/// grid, or case list) are reported as drifts too — a golden file for a
/// different suite must never silently pass.
pub fn compare_reports(golden: &EvalReport, got: &EvalReport, tol: &Tolerance) -> Vec<Drift> {
    let mut drifts = Vec::new();
    if golden.suite != got.suite {
        drifts.push(structural(
            format!("suite {:?} vs {:?}", golden.suite, got.suite),
            0.0,
            0.0,
        ));
    }
    if golden.size != got.size {
        drifts.push(structural("size", golden.size as f64, got.size as f64));
    }
    if golden.kernel_count != got.kernel_count {
        drifts.push(structural(
            "kernel_count",
            golden.kernel_count as f64,
            got.kernel_count as f64,
        ));
    }
    if golden.cases.len() != got.cases.len() {
        drifts.push(structural(
            "case count",
            golden.cases.len() as f64,
            got.cases.len() as f64,
        ));
        return drifts;
    }
    for (g, m) in golden.cases.iter().zip(&got.cases) {
        if g.name != m.name {
            drifts.push(structural(
                format!("case {:?} vs {:?}", g.name, m.name),
                0.0,
                0.0,
            ));
            continue;
        }
        method_drifts(&g.name, "rule", &g.rule, &m.rule, tol, &mut drifts);
        method_drifts(&g.name, "opt", &g.opt, &m.opt, tol, &mut drifts);
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{CaseRecord, TelemetrySummary};

    fn outcome() -> MethodOutcome {
        MethodOutcome {
            l2: 1000.0,
            pvb: 2000.0,
            epe: 3,
            shots: 40,
            window: 0.5,
        }
    }

    fn report() -> EvalReport {
        EvalReport {
            suite: "tiny".into(),
            size: 64,
            kernel_count: 6,
            cases: vec![CaseRecord {
                name: "case4".into(),
                area_nm2: 1,
                rects: 1,
                rule: outcome(),
                opt: outcome(),
                telemetry: TelemetrySummary::default(),
                wall_ms: None,
            }],
        }
    }

    #[test]
    fn identical_reports_have_no_drift() {
        let r = report();
        assert!(compare_reports(&r, &r, &Tolerance::default()).is_empty());
    }

    #[test]
    fn drift_beyond_tolerance_is_reported_per_metric() {
        let golden = report();
        let mut got = report();
        got.cases[0].opt.l2 = 1100.0; // 10 % > 2 %
        got.cases[0].rule.epe = 4; // off by 1, allowed = 0.5 + 0.06
        let drifts = compare_reports(&golden, &got, &Tolerance::default());
        assert_eq!(drifts.len(), 2);
        assert_eq!(
            (drifts[0].case.as_str(), drifts[0].method.as_str()),
            ("case4", "rule")
        );
        assert_eq!(drifts[0].metric, "epe");
        assert_eq!(drifts[1].metric, "l2");
        assert!(drifts[1].to_string().contains("opt"));
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let golden = report();
        let mut got = report();
        got.cases[0].opt.l2 = 1015.0; // 1.5 % < 2 %
        got.cases[0].opt.shots = 40; // unchanged
        assert!(compare_reports(&golden, &got, &Tolerance::default()).is_empty());
    }

    #[test]
    fn structural_mismatches_fail() {
        let golden = report();
        let mut other_suite = report();
        other_suite.suite = "small".into();
        assert!(!compare_reports(&golden, &other_suite, &Tolerance::default()).is_empty());

        let mut extra_case = report();
        extra_case.cases.push(extra_case.cases[0].clone());
        assert!(!compare_reports(&golden, &extra_case, &Tolerance::default()).is_empty());

        let mut renamed = report();
        renamed.cases[0].name = "caseX".into();
        assert!(!compare_reports(&golden, &renamed, &Tolerance::default()).is_empty());
    }

    #[test]
    fn zero_tolerance_flags_any_change() {
        let golden = report();
        let mut got = report();
        got.cases[0].rule.window = 0.5 + 1e-9;
        let tol = Tolerance { rel: 0.0, abs: 0.0 };
        assert_eq!(compare_reports(&golden, &got, &tol).len(), 1);
    }
}
