//! End-to-end evaluation harness for CFAOPC: benchmark suites, sharded
//! execution, deterministic `RESULTS.json` reports and golden-file
//! drift checks.
//!
//! This is the crate behind `cfaopc eval`. It is the first subsystem
//! that exercises every other crate end to end: layouts → pixel ILT →
//! CircleRule and CircleOpt → metrics (L2 / PVB / EPE / #Shot) plus a
//! process-window fraction, with per-case iteration telemetry captured
//! through `cfaopc-trace`.
//!
//! Three ideas organize the crate:
//!
//! * [`SuiteSpec`] pins *everything* that affects the numbers — the
//!   testcase list (benchmark tiles and seeded generator tiles), grid
//!   scale, solver iteration budgets, and the focus–exposure sweep — so
//!   a suite name fully determines the workload.
//! * [`run_suite`] shards whole testcases across the persistent worker
//!   pool (coarse outer parallelism; inner regions get their share via
//!   `with_worker_limit`) and produces an [`EvalReport`] that
//!   serializes to byte-identical JSON across runs and across
//!   `CFAOPC_THREADS` values.
//! * [`compare_reports`] diffs a fresh report against a blessed
//!   `golden.json` with per-metric tolerances, returning a drift list
//!   CI can fail on.
//!
//! # Examples
//!
//! ```no_run
//! use cfaopc_eval::{run_suite, SuiteSpec};
//!
//! let spec = SuiteSpec::named("small").expect("built-in suite");
//! let report = run_suite(&spec)?;
//! std::fs::write("RESULTS.json", report.to_json_string())?;
//! println!("{}", report.markdown_table());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod golden;
mod harness;
mod json;
mod report;
mod suite;

pub use golden::{compare_reports, Drift, Tolerance};
pub use harness::{
    run_suite, run_suite_timed, CaseRecord, EvalError, EvalReport, MethodOutcome, TelemetrySummary,
};
pub use json::{Json, JsonError};
pub use report::SCHEMA;
pub use suite::{CaseSource, SuiteSpec};
