//! A minimal, dependency-free JSON tree: ordered objects, a
//! deterministic writer, and a recursive-descent parser.
//!
//! The workspace vendors serde as a no-op stub (no network access at
//! build time), so the eval harness carries its own JSON layer. Two
//! properties matter here beyond correctness:
//!
//! * **Deterministic output.** Objects keep insertion order and floats
//!   format via Rust's shortest-roundtrip `Display`, so serializing the
//!   same report twice yields the same bytes — the harness promises
//!   byte-identical `RESULTS.json` across runs and thread counts.
//! * **Strict input.** The parser rejects trailing garbage, unterminated
//!   containers and malformed numbers instead of guessing; golden-file
//!   comparison must fail loudly on a corrupt file.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (no hashing), which is
/// what makes serialization deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers round-trip exactly up to 2^53.
    Num(f64),
    /// A string (escapes are resolved at parse time).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key–value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if exactly
    /// representable.
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53) {
            Some(v as usize)
        } else {
            None
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string (no whitespace). Non-finite
    /// numbers become `null`, mirroring `cfaopc_trace::JsonlSink`.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation — the `RESULTS.json` /
    /// `golden.json` on-disk format (diff-friendly, still deterministic).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parses `text` as a single JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first offending byte for any
    /// syntax error, including trailing non-whitespace after the value.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with the byte offset of the first bad character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected {token:?}")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::at(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| JsonError::at(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed for our files;
                        // lone surrogates map to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(JsonError::at(*pos, "raw control character in string"))
            }
            Some(_) => {
                // Advance one UTF-8 scalar; the input is a &str so the
                // boundary math is safe.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                match std::str::from_utf8(&bytes[start..*pos]) {
                    Ok(scalar) => out.push_str(scalar),
                    Err(_) => return Err(JsonError::at(start, "invalid UTF-8 in string")),
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "non-ASCII byte in number"))?;
    text.parse::<f64>()
        .map_err(|_| JsonError::at(start, format!("bad number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact_and_pretty() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("case1".into())),
            ("l2".into(), Json::Num(123456.75)),
            ("epe".into(), Json::Num(3.0)),
            ("wall_ms".into(), Json::Null),
            (
                "values".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null]),
            ),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let doc = Json::Obj(vec![
            ("b".into(), Json::Num(0.1)),
            ("a".into(), Json::Num(1e-9)),
        ]);
        assert_eq!(doc.to_string_pretty(), doc.to_string_pretty());
        // Insertion order is preserved, not sorted.
        assert!(doc.to_string_compact().starts_with("{\"b\""));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e300, -4.9e-324, 123_456_789.123_456_79] {
            let text = Json::Num(v).to_string_compact();
            assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), v);
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
            "[1] trailing",
            "--5",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_survive() {
        let doc = Json::Str("a\"b\\c\nd\te\u{0001}".into());
        let text = doc.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"n\":4,\"s\":\"x\",\"a\":[1,2]}").unwrap();
        assert_eq!(doc.get("n").unwrap().as_usize(), Some(4));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(2.5).as_usize(), None);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }
}
