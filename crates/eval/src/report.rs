//! `RESULTS.json` serialization and the markdown paper table.
//!
//! The on-disk schema (`cfaopc-eval/1`) is one object per run:
//!
//! ```json
//! {
//!   "schema": "cfaopc-eval/1",
//!   "suite": "small", "size": 128, "kernel_count": 6,
//!   "cases": [
//!     {"case": "case1", "area_nm2": 215344, "rects": 21, "wall_ms": null,
//!      "rule": {"l2": ..., "pvb": ..., "epe": 3, "shots": 41, "window": 0.44},
//!      "opt":  {"l2": ..., "pvb": ..., "epe": 1, "shots": 30, "window": 0.56},
//!      "telemetry": {"pixel_iterations": 4, ...}}
//!   ]
//! }
//! ```
//!
//! `wall_ms` is `null` in deterministic mode; everything else is a pure
//! function of the suite spec, so the serialized bytes are stable across
//! runs and thread counts. The golden file (`eval/golden.json`) is simply
//! a blessed copy of this format.

use crate::harness::{CaseRecord, EvalReport, MethodOutcome, TelemetrySummary};
use crate::json::Json;
use std::fmt::Write as _;

/// Schema tag written to and required from every report file.
pub const SCHEMA: &str = "cfaopc-eval/1";

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn int(v: usize) -> Json {
    Json::Num(v as f64)
}

fn method_json(m: &MethodOutcome) -> Json {
    Json::Obj(vec![
        ("l2".into(), num(m.l2)),
        ("pvb".into(), num(m.pvb)),
        ("epe".into(), int(m.epe)),
        ("shots".into(), int(m.shots)),
        ("window".into(), num(m.window)),
    ])
}

fn telemetry_json(t: &TelemetrySummary) -> Json {
    Json::Obj(vec![
        ("pixel_iterations".into(), int(t.pixel_iterations)),
        ("pixel_loss_first".into(), num(t.pixel_loss_first)),
        ("pixel_loss_last".into(), num(t.pixel_loss_last)),
        ("circle_iterations".into(), int(t.circle_iterations)),
        ("circle_loss_first".into(), num(t.circle_loss_first)),
        ("circle_loss_last".into(), num(t.circle_loss_last)),
        ("final_sparsity".into(), num(t.final_sparsity)),
        ("final_active".into(), int(t.final_active)),
    ])
}

impl EvalReport {
    /// The report as a JSON tree (see the module docs for the schema).
    pub fn to_json(&self) -> Json {
        let cases = self
            .cases
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("case".into(), Json::Str(c.name.clone())),
                    ("area_nm2".into(), num(c.area_nm2 as f64)),
                    ("rects".into(), int(c.rects)),
                    ("wall_ms".into(), c.wall_ms.map_or(Json::Null, Json::Num)),
                    ("rule".into(), method_json(&c.rule)),
                    ("opt".into(), method_json(&c.opt)),
                    ("telemetry".into(), telemetry_json(&c.telemetry)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("suite".into(), Json::Str(self.suite.clone())),
            ("size".into(), int(self.size)),
            ("kernel_count".into(), int(self.kernel_count)),
            ("cases".into(), Json::Arr(cases)),
        ])
    }

    /// Serializes to the pretty-printed, byte-stable `RESULTS.json` text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parses a report back from its JSON text (used by `--check` to
    /// load the golden file).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing/mistyped field, or the
    /// JSON syntax error, and rejects unknown schema tags.
    pub fn from_json_str(text: &str) -> Result<EvalReport, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?})"
            ));
        }
        let suite = field_str(&doc, "suite")?.to_string();
        let size = field_usize(&doc, "size")?;
        let kernel_count = field_usize(&doc, "kernel_count")?;
        let cases = doc
            .get("cases")
            .and_then(Json::as_array)
            .ok_or("missing \"cases\" array")?
            .iter()
            .map(case_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EvalReport {
            suite,
            size,
            kernel_count,
            cases,
        })
    }

    /// Renders the paper-style markdown table: one row per case with
    /// both methods' metrics, plus a mean row.
    pub fn markdown_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| Case | Area (nm²) | L2 (CR) | PVB (CR) | EPE (CR) | #Shot (CR) | PW (CR) \
             | L2 (CO) | PVB (CO) | EPE (CO) | #Shot (CO) | PW (CO) |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|---|");
        for c in &self.cases {
            let _ = writeln!(
                out,
                "| {} | {} | {:.0} | {:.0} | {} | {} | {:.2} | {:.0} | {:.0} | {} | {} | {:.2} |",
                c.name,
                c.area_nm2,
                c.rule.l2,
                c.rule.pvb,
                c.rule.epe,
                c.rule.shots,
                c.rule.window,
                c.opt.l2,
                c.opt.pvb,
                c.opt.epe,
                c.opt.shots,
                c.opt.window,
            );
        }
        if !self.cases.is_empty() {
            let (l2r, l2o) = self.mean(|m| m.l2);
            let (pvbr, pvbo) = self.mean(|m| m.pvb);
            let (eper, epeo) = self.mean(|m| m.epe as f64);
            let (shotr, shoto) = self.mean(|m| m.shots as f64);
            let (pwr, pwo) = self.mean(|m| m.window);
            let _ = writeln!(
                out,
                "| **mean** | | {l2r:.0} | {pvbr:.0} | {eper:.1} | {shotr:.1} | {pwr:.2} \
                 | {l2o:.0} | {pvbo:.0} | {epeo:.1} | {shoto:.1} | {pwo:.2} |"
            );
        }
        out
    }
}

fn field_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string {key:?}"))
}

fn field_usize(obj: &Json, key: &str) -> Result<usize, String> {
    obj.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("missing or non-integer {key:?}"))
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric {key:?}"))
}

fn method_from_json(obj: &Json, which: &str) -> Result<MethodOutcome, String> {
    let m = obj
        .get(which)
        .ok_or_else(|| format!("missing {which:?} object"))?;
    Ok(MethodOutcome {
        l2: field_f64(m, "l2")?,
        pvb: field_f64(m, "pvb")?,
        epe: field_usize(m, "epe")?,
        shots: field_usize(m, "shots")?,
        window: field_f64(m, "window")?,
    })
}

fn case_from_json(obj: &Json) -> Result<CaseRecord, String> {
    let name = field_str(obj, "case")?.to_string();
    let telemetry = match obj.get("telemetry") {
        Some(t) => TelemetrySummary {
            pixel_iterations: field_usize(t, "pixel_iterations")?,
            pixel_loss_first: field_f64(t, "pixel_loss_first")?,
            pixel_loss_last: field_f64(t, "pixel_loss_last")?,
            circle_iterations: field_usize(t, "circle_iterations")?,
            circle_loss_first: field_f64(t, "circle_loss_first")?,
            circle_loss_last: field_f64(t, "circle_loss_last")?,
            final_sparsity: field_f64(t, "final_sparsity")?,
            final_active: field_usize(t, "final_active")?,
        },
        None => return Err(format!("case {name:?}: missing \"telemetry\"")),
    };
    Ok(CaseRecord {
        rule: method_from_json(obj, "rule").map_err(|e| format!("case {name:?}: {e}"))?,
        opt: method_from_json(obj, "opt").map_err(|e| format!("case {name:?}: {e}"))?,
        area_nm2: field_f64(obj, "area_nm2")? as i64,
        rects: field_usize(obj, "rects")?,
        wall_ms: obj.get("wall_ms").and_then(Json::as_f64),
        telemetry,
        name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_report() -> EvalReport {
        let outcome = |l2, shots| MethodOutcome {
            l2,
            pvb: 2.0 * l2,
            epe: 3,
            shots,
            window: 0.5,
        };
        EvalReport {
            suite: "tiny".into(),
            size: 64,
            kernel_count: 6,
            cases: vec![
                CaseRecord {
                    name: "case4".into(),
                    area_nm2: 82_560,
                    rects: 7,
                    rule: outcome(1000.5, 40),
                    opt: outcome(800.25, 25),
                    telemetry: TelemetrySummary {
                        pixel_iterations: 2,
                        pixel_loss_first: 9.0,
                        pixel_loss_last: 7.0,
                        circle_iterations: 4,
                        circle_loss_first: 6.5,
                        circle_loss_last: 5.25,
                        final_sparsity: 1.5,
                        final_active: 25,
                    },
                    wall_ms: None,
                },
                CaseRecord {
                    name: "random7".into(),
                    area_nm2: 120_000,
                    rects: 9,
                    rule: outcome(2000.0, 60),
                    opt: outcome(1500.0, 45),
                    telemetry: TelemetrySummary::default(),
                    wall_ms: Some(123.5),
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_preserves_the_report() {
        let report = sample_report();
        let text = report.to_json_string();
        let parsed = EvalReport::from_json_str(&text).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn serialization_is_byte_stable() {
        let report = sample_report();
        assert_eq!(report.to_json_string(), report.to_json_string());
    }

    #[test]
    fn wall_ms_serializes_as_null_when_absent() {
        let text = sample_report().to_json_string();
        assert!(text.contains("\"wall_ms\": null"));
        assert!(text.contains("\"wall_ms\": 123.5"));
    }

    #[test]
    fn rejects_wrong_schema_and_malformed_fields() {
        assert!(EvalReport::from_json_str("{}").is_err());
        assert!(EvalReport::from_json_str("{\"schema\":\"other/9\"}").is_err());
        let mut text = sample_report().to_json_string();
        text = text.replace("\"epe\": 3", "\"epe\": \"three\"");
        let err = EvalReport::from_json_str(&text).unwrap_err();
        assert!(err.contains("epe"), "unhelpful error: {err}");
    }

    #[test]
    fn markdown_has_one_row_per_case_plus_mean() {
        let table = sample_report().markdown_table();
        let rows: Vec<&str> = table.lines().collect();
        assert_eq!(rows.len(), 2 + 2 + 1, "header, divider, 2 cases, mean");
        assert!(rows[2].starts_with("| case4 |"));
        assert!(rows.last().unwrap().starts_with("| **mean** |"));
        // Mean L2 of the rule method: (1000.5 + 2000) / 2 = 1500.25 → 1500.
        assert!(rows.last().unwrap().contains("| 1500 |"));
    }
}
