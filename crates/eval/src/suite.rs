//! Suite definitions: which testcases to run, at what scale.
//!
//! A suite is fully determined by its spec — layouts come either from
//! the ten deterministic benchmark tiles or from the seeded random
//! generator, and every solver knob is pinned here — so two runs of the
//! same suite produce identical work regardless of machine or thread
//! count.

use cfaopc_core::CircleOptConfig;
use cfaopc_layouts::{benchmark_case, generate_layout, GeneratorConfig, Layout, LayoutError};
use cfaopc_litho::LithoConfig;

/// Where a testcase's layout comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseSource {
    /// One of the ten ICCAD-style benchmark tiles (`1..=10`).
    Benchmark(usize),
    /// A seeded tile from `cfaopc_layouts::generate_layout` with the
    /// default generator configuration.
    Generated(u64),
}

impl CaseSource {
    /// Materializes the layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] for an out-of-range benchmark case.
    pub fn layout(&self) -> Result<Layout, LayoutError> {
        match self {
            CaseSource::Benchmark(n) => benchmark_case(*n),
            CaseSource::Generated(seed) => Ok(generate_layout(*seed, &GeneratorConfig::default())),
        }
    }
}

/// The full, self-contained definition of one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteSpec {
    /// Suite name, recorded in `RESULTS.json`.
    pub name: String,
    /// Simulation grid edge in pixels (power of two).
    pub size: usize,
    /// SOCS kernels per process corner.
    pub kernel_count: usize,
    /// Pixel-ILT iterations for the CircleRule baseline path.
    pub rule_iterations: usize,
    /// CircleOpt stage-1 (pixel init) iterations.
    pub opt_init_iterations: usize,
    /// CircleOpt stage-2 (circle-level) iterations.
    pub opt_circle_iterations: usize,
    /// Focus values swept for the process-window metric (nm).
    pub window_defocus_nm: Vec<f64>,
    /// Dose values swept for the process-window metric.
    pub window_doses: Vec<f64>,
    /// Relative CD tolerance defining the process window. Suites widen
    /// this at coarser grids so the band spans at least one pixel of CD
    /// quantization (±10 % of a 96 nm wire is sub-pixel at 16 nm/px).
    pub window_cd_tolerance: f64,
    /// The testcases, in report order.
    pub cases: Vec<CaseSource>,
}

impl SuiteSpec {
    /// Looks a suite up by name: `tiny` (integration tests), `small`
    /// (the CI golden suite) or `paper` (experiment scale).
    pub fn named(name: &str) -> Option<SuiteSpec> {
        match name {
            "tiny" => Some(SuiteSpec {
                name: "tiny".into(),
                size: 64,
                kernel_count: 6,
                rule_iterations: 4,
                opt_init_iterations: 2,
                opt_circle_iterations: 4,
                window_defocus_nm: vec![0.0, 60.0],
                window_doses: vec![0.96, 1.0, 1.04],
                window_cd_tolerance: 0.40,
                cases: vec![CaseSource::Benchmark(4), CaseSource::Generated(7)],
            }),
            "small" => Some(SuiteSpec {
                name: "small".into(),
                size: 128,
                kernel_count: 6,
                rule_iterations: 8,
                opt_init_iterations: 4,
                opt_circle_iterations: 12,
                window_defocus_nm: vec![0.0, 50.0, 100.0],
                window_doses: vec![0.96, 1.0, 1.04],
                window_cd_tolerance: 0.25,
                cases: (1..=10)
                    .map(CaseSource::Benchmark)
                    .chain([CaseSource::Generated(11), CaseSource::Generated(17)])
                    .collect(),
            }),
            "paper" => Some(SuiteSpec {
                name: "paper".into(),
                size: 256,
                kernel_count: 8,
                rule_iterations: 30,
                opt_init_iterations: 15,
                opt_circle_iterations: 40,
                window_defocus_nm: vec![0.0, 50.0, 100.0],
                window_doses: vec![0.96, 1.0, 1.04],
                window_cd_tolerance: 0.15,
                cases: (1..=10).map(CaseSource::Benchmark).collect(),
            }),
            _ => None,
        }
    }

    /// The names of the built-in suites, for CLI help.
    pub const NAMES: [&'static str; 3] = ["tiny", "small", "paper"];

    /// The lithography configuration every case of the suite uses.
    pub fn litho_config(&self) -> LithoConfig {
        LithoConfig {
            size: self.size,
            kernel_count: self.kernel_count,
            ..LithoConfig::default()
        }
    }

    /// The CircleOpt configuration, with the sparsity weight rescaled to
    /// the grid resolution exactly as the `cfaopc fracture` CLI does.
    pub fn circleopt_config(&self) -> CircleOptConfig {
        let gamma = 3.0 * (self.size as f64 / 2048.0).powi(2);
        CircleOptConfig {
            init_iterations: self.opt_init_iterations,
            circle_iterations: self.opt_circle_iterations,
            gamma,
            ..CircleOptConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_suites_resolve() {
        for name in SuiteSpec::NAMES {
            let suite = SuiteSpec::named(name).unwrap();
            assert_eq!(suite.name, name);
            assert!(!suite.cases.is_empty());
            assert!(suite.size.is_power_of_two());
            suite.litho_config().validate().unwrap();
        }
        assert!(SuiteSpec::named("nope").is_none());
    }

    #[test]
    fn small_suite_is_the_benchmark_set_plus_seeded_tiles() {
        let suite = SuiteSpec::named("small").unwrap();
        assert_eq!(suite.cases.len(), 12);
        assert_eq!(suite.cases[0], CaseSource::Benchmark(1));
        assert!(matches!(suite.cases[10], CaseSource::Generated(_)));
    }

    #[test]
    fn sources_materialize_deterministically() {
        let a = CaseSource::Generated(11).layout().unwrap();
        let b = CaseSource::Generated(11).layout().unwrap();
        assert_eq!(a, b);
        assert!(CaseSource::Benchmark(3).layout().is_ok());
        assert!(CaseSource::Benchmark(11).layout().is_err());
    }

    #[test]
    fn gamma_rescales_with_grid() {
        let tiny = SuiteSpec::named("tiny").unwrap().circleopt_config();
        let paper = SuiteSpec::named("paper").unwrap().circleopt_config();
        assert!(tiny.gamma < paper.gamma);
        assert!((paper.gamma - 3.0 * (256.0f64 / 2048.0).powi(2)).abs() < 1e-12);
    }
}
