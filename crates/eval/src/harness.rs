//! The sharded end-to-end evaluation harness.
//!
//! [`run_suite`] drives the full pipeline for every testcase of a
//! [`SuiteSpec`]: layout → pixel ILT → CircleRule (rule baseline) and
//! CircleOpt (the paper's method) → the four paper metrics plus a
//! process-window fraction.
//!
//! # Sharding model
//!
//! Testcases are independent, so the harness parallelizes at the
//! *testcase* level: one `par_map` region over the case list on the
//! persistent worker pool. Each case then runs its inner parallel
//! regions (FFTs, aerial images, tiled composition) under
//! [`with_worker_limit`] set to its share of the pool from
//! [`worker_shares`]`(workers, min(cases, workers))`, which distributes
//! the remainder instead of leaving workers idle: with 4 workers and 12
//! cases each case computes serially while 4 cases run concurrently;
//! with 4 workers and 3 cases the shares are `[2, 1, 1]` (the old
//! `workers / slots` split idled a worker); with 16 workers and 4 cases
//! each case gets 4-way inner parallelism. Shares are assigned by case
//! index (`shares[i % slots]`), not by claim order, so the schedule —
//! and therefore the report — is independent of thread timing.
//!
//! # Determinism
//!
//! The report is reproducible to the byte across runs *and across
//! `CFAOPC_THREADS` values**: `par_map` collects case records in index
//! order, every inner parallel path is bit-identical to its serial
//! execution (asserted by the fft/litho/core concurrency tests), and
//! wall-clock timing is excluded from the report unless explicitly
//! requested ([`run_suite_timed`]) — which is the one switch that
//! sacrifices byte-identity.

use crate::suite::{CaseSource, SuiteSpec};
use cfaopc_core::run_circleopt_traced;
use cfaopc_fft::parallel::{par_map, with_worker_limit, worker_count, worker_shares};
use cfaopc_fracture::circle_rule;
use cfaopc_grid::{BitGrid, Point};
use cfaopc_ilt::{run_engine, IltEngine};
use cfaopc_layouts::{Layout, LayoutError, TILE_NM};
use cfaopc_litho::{bossung_surface, CdAxis, CdProbe, LithoError, LithoSimulator};
use cfaopc_metrics::{evaluate_mask, EpeConfig};
use cfaopc_trace::{MemorySink, Stage};
use std::fmt;
use std::time::Instant;

/// Errors from an evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A testcase layout could not be materialized.
    Layout(LayoutError),
    /// The simulator or an optimizer failed (named case for context).
    Litho {
        /// The testcase that failed.
        case: String,
        /// The underlying error.
        error: LithoError,
    },
    /// Anything else (report parsing, golden comparison I/O).
    Other(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Layout(e) => write!(f, "layout error: {e}"),
            EvalError::Litho { case, error } => write!(f, "case {case}: {error}"),
            EvalError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<LayoutError> for EvalError {
    fn from(e: LayoutError) -> Self {
        EvalError::Layout(e)
    }
}

/// The paper's four metrics plus the process-window fraction, for one
/// method on one case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodOutcome {
    /// Squared L2 of the nominal print vs the target, nm².
    pub l2: f64,
    /// Process-variation band, nm².
    pub pvb: f64,
    /// EPE violation count.
    pub epe: usize,
    /// Circular shot count.
    pub shots: usize,
    /// Fraction of the swept focus–exposure grid with CD in tolerance.
    pub window: f64,
}

/// Condensed per-case iteration telemetry from the CircleOpt run's
/// [`MemorySink`] records.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TelemetrySummary {
    /// Stage-1 (pixel init) iterations recorded.
    pub pixel_iterations: usize,
    /// First stage-1 total loss (0 when no iterations ran).
    pub pixel_loss_first: f64,
    /// Last stage-1 total loss.
    pub pixel_loss_last: f64,
    /// Stage-2 (circle-level) iterations recorded.
    pub circle_iterations: usize,
    /// First stage-2 total loss.
    pub circle_loss_first: f64,
    /// Last stage-2 total loss.
    pub circle_loss_last: f64,
    /// Final Lasso sparsity penalty.
    pub final_sparsity: f64,
    /// Active circles after the final iteration.
    pub final_active: usize,
}

/// Everything the harness measures for one testcase.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseRecord {
    /// Case name (`case3`, `random11`, …).
    pub name: String,
    /// Total pattern area in nm².
    pub area_nm2: i64,
    /// Rectangle count of the layout.
    pub rects: usize,
    /// MultiILT + CircleRule (the rule-based baseline).
    pub rule: MethodOutcome,
    /// CircleOpt (the paper's optimization-based method).
    pub opt: MethodOutcome,
    /// CircleOpt iteration telemetry.
    pub telemetry: TelemetrySummary,
    /// Wall time for the whole case in milliseconds; `None` in
    /// deterministic (default) mode.
    pub wall_ms: Option<f64>,
}

/// One full evaluation run: the suite identity plus per-case records in
/// suite order.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Suite name.
    pub suite: String,
    /// Grid edge in pixels.
    pub size: usize,
    /// Kernels per corner.
    pub kernel_count: usize,
    /// Per-case records, in the suite's case order.
    pub cases: Vec<CaseRecord>,
}

impl EvalReport {
    /// Arithmetic means of a metric over all cases for (rule, opt).
    pub fn mean(&self, metric: impl Fn(&MethodOutcome) -> f64) -> (f64, f64) {
        if self.cases.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.cases.len() as f64;
        let rule = self.cases.iter().map(|c| metric(&c.rule)).sum::<f64>() / n;
        let opt = self.cases.iter().map(|c| metric(&c.opt)).sum::<f64>() / n;
        (rule, opt)
    }
}

/// Runs `spec` sharded across the worker pool, without timing — the
/// deterministic mode whose `RESULTS.json` is byte-identical across
/// runs and thread counts.
///
/// # Errors
///
/// Returns the first [`EvalError`] any case produced (cases are still
/// all attempted; error selection follows suite order, so it is
/// deterministic too).
pub fn run_suite(spec: &SuiteSpec) -> Result<EvalReport, EvalError> {
    run_suite_impl(spec, false)
}

/// [`run_suite`] with per-case wall-clock timing recorded in
/// [`CaseRecord::wall_ms`]. Timing is inherently nondeterministic, so
/// reports produced this way are not byte-stable.
///
/// # Errors
///
/// As [`run_suite`].
pub fn run_suite_timed(spec: &SuiteSpec) -> Result<EvalReport, EvalError> {
    run_suite_impl(spec, true)
}

fn run_suite_impl(spec: &SuiteSpec, timing: bool) -> Result<EvalReport, EvalError> {
    let layouts: Vec<Layout> = spec
        .cases
        .iter()
        .map(CaseSource::layout)
        .collect::<Result<_, _>>()?;

    // Coarse-grained outer parallelism: whole testcases are claimed from
    // the pool; each one caps its inner regions at its share so nested
    // parallelism does not oversubscribe the pool. Shares distribute the
    // remainder (4 workers / 3 cases → [2, 1, 1]) and are keyed off the
    // case index so the assignment is timing-independent.
    let workers = worker_count();
    let concurrent = workers.min(layouts.len()).max(1);
    let shares = worker_shares(workers, concurrent);

    let results: Vec<Result<CaseRecord, EvalError>> = par_map(layouts.len(), |i| {
        with_worker_limit(shares[i % concurrent], || {
            run_case(spec, &layouts[i], timing)
        })
    });

    let cases = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(EvalReport {
        suite: spec.name.clone(),
        size: spec.size,
        kernel_count: spec.kernel_count,
        cases,
    })
}

fn run_case(spec: &SuiteSpec, layout: &Layout, timing: bool) -> Result<CaseRecord, EvalError> {
    let started = Instant::now();
    let litho_err = |error: LithoError| EvalError::Litho {
        case: layout.name.clone(),
        error,
    };

    let sim = LithoSimulator::new(spec.litho_config()).map_err(litho_err)?;
    let n = sim.size();
    let pixel_nm = sim.config().pixel_nm();
    let target = layout.rasterize(n);
    let probe = window_probe(layout, n);

    // Rule-based baseline: MultiILT-like pixel ILT, then CircleRule.
    let pixel = run_engine(&sim, &target, IltEngine::MultiIltLike, spec.rule_iterations)
        .map_err(litho_err)?;
    let rule_mask = circle_rule(&pixel.mask_binary, &spec.circleopt_config().rule, pixel_nm);
    let rule_raster = rule_mask.rasterize(n, n);
    let rule = method_outcome(
        spec,
        &sim,
        &rule_raster,
        &target,
        rule_mask.shot_count(),
        probe.as_ref(),
    )
    .map_err(litho_err)?;

    // Optimization-based method: CircleOpt, with a memory sink capturing
    // one record per optimizer iteration.
    let mut sink = MemorySink::with_capacity(
        spec.opt_init_iterations + spec.opt_circle_iterations + spec.opt_circle_iterations / 2,
    );
    let opt_result = run_circleopt_traced(&sim, &target, &spec.circleopt_config(), &mut sink)
        .map_err(litho_err)?;
    let opt = method_outcome(
        spec,
        &sim,
        &opt_result.mask_raster,
        &target,
        opt_result.shot_count(),
        probe.as_ref(),
    )
    .map_err(litho_err)?;

    Ok(CaseRecord {
        name: layout.name.clone(),
        area_nm2: layout.area_nm2(),
        rects: layout.rects.len(),
        rule,
        opt,
        telemetry: summarize(&sink),
        wall_ms: timing.then(|| started.elapsed().as_secs_f64() * 1e3),
    })
}

fn method_outcome(
    spec: &SuiteSpec,
    sim: &LithoSimulator,
    raster: &BitGrid,
    target: &BitGrid,
    shots: usize,
    probe: Option<&(CdProbe, f64)>,
) -> Result<MethodOutcome, LithoError> {
    let metrics = evaluate_mask(sim, raster, target, &EpeConfig::default())?;
    let window = match probe {
        Some((probe, cd_target_nm)) => bossung_surface(
            sim,
            raster,
            probe,
            &spec.window_defocus_nm,
            &spec.window_doses,
        )?
        .window_fraction(*cd_target_nm, spec.window_cd_tolerance),
        None => 0.0,
    };
    Ok(MethodOutcome {
        l2: metrics.l2,
        pvb: metrics.pvb,
        epe: metrics.epe,
        shots,
        window,
    })
}

/// Picks the process-window probe for a layout: the centre of its
/// largest rectangle, measuring CD across the rectangle's short side.
/// Ties break on the lowest `(y0, x0)` so the choice is deterministic.
/// Returns `None` for an empty layout.
fn window_probe(layout: &Layout, size: usize) -> Option<(CdProbe, f64)> {
    let rect = layout.rects.iter().max_by_key(|r| {
        (
            i64::from(r.width()) * i64::from(r.height()),
            -i64::from(r.y0),
            -i64::from(r.x0),
        )
    })?;
    let to_px = |nm: i32| (i64::from(nm) * size as i64 / i64::from(TILE_NM)) as i32;
    let at = Point::new(
        to_px(midpoint(rect.x0, rect.x1)),
        to_px(midpoint(rect.y0, rect.y1)),
    );
    let axis = if rect.width() <= rect.height() {
        CdAxis::Horizontal
    } else {
        CdAxis::Vertical
    };
    let cd_target_nm = f64::from(rect.width().min(rect.height()));
    Some((CdProbe { at, axis }, cd_target_nm))
}

fn midpoint(a: i32, b: i32) -> i32 {
    (a + b) / 2
}

fn summarize(sink: &MemorySink) -> TelemetrySummary {
    let mut summary = TelemetrySummary::default();
    for rec in sink.records() {
        match rec.stage {
            Stage::PixelIlt => {
                if summary.pixel_iterations == 0 {
                    summary.pixel_loss_first = rec.loss_total;
                }
                summary.pixel_iterations += 1;
                summary.pixel_loss_last = rec.loss_total;
            }
            Stage::CircleOpt => {
                if summary.circle_iterations == 0 {
                    summary.circle_loss_first = rec.loss_total;
                }
                summary.circle_iterations += 1;
                summary.circle_loss_last = rec.loss_total;
                summary.final_sparsity = rec.sparsity;
                summary.final_active = rec.active;
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::Rect;
    use cfaopc_trace::IterationRecord;

    #[test]
    fn probe_targets_the_largest_rect() {
        let layout = Layout::new(
            "t",
            vec![
                Rect::new(0, 0, 100, 100),
                Rect::new(200, 200, 300, 1000), // largest: 100 x 800
            ],
        );
        let (probe, cd) = window_probe(&layout, 256).unwrap();
        assert_eq!(cd, 100.0);
        assert_eq!(probe.axis, CdAxis::Horizontal);
        // Centre (250, 600) nm → (31, 75) px at 256 px / 2048 nm.
        assert_eq!(probe.at, Point::new(31, 75));
    }

    #[test]
    fn probe_of_wide_rect_measures_vertically() {
        let layout = Layout::new("t", vec![Rect::new(100, 100, 900, 180)]);
        let (probe, cd) = window_probe(&layout, 128).unwrap();
        assert_eq!(probe.axis, CdAxis::Vertical);
        assert_eq!(cd, 80.0);
    }

    #[test]
    fn probe_of_empty_layout_is_none() {
        assert!(window_probe(&Layout::new("e", vec![]), 64).is_none());
    }

    #[test]
    fn telemetry_summary_splits_stages() {
        let mut sink = MemorySink::new();
        let rec = |stage, iteration, loss_total, sparsity, active| IterationRecord {
            stage,
            iteration,
            loss_l2: 0.0,
            loss_pvb: 0.0,
            loss_total,
            sparsity,
            active,
            grad_l2: 0.0,
            grad_linf: 0.0,
        };
        use cfaopc_trace::TelemetrySink as _;
        sink.record(&rec(Stage::PixelIlt, 0, 10.0, 0.0, 5));
        sink.record(&rec(Stage::PixelIlt, 1, 8.0, 0.0, 5));
        sink.record(&rec(Stage::CircleOpt, 0, 6.0, 1.0, 4));
        sink.record(&rec(Stage::CircleOpt, 1, 5.0, 0.5, 3));
        let s = summarize(&sink);
        assert_eq!(s.pixel_iterations, 2);
        assert_eq!(s.pixel_loss_first, 10.0);
        assert_eq!(s.pixel_loss_last, 8.0);
        assert_eq!(s.circle_iterations, 2);
        assert_eq!(s.circle_loss_first, 6.0);
        assert_eq!(s.circle_loss_last, 5.0);
        assert_eq!(s.final_sparsity, 0.5);
        assert_eq!(s.final_active, 3);
    }

    #[test]
    fn report_means_average_both_methods() {
        let outcome = |l2| MethodOutcome {
            l2,
            pvb: 0.0,
            epe: 0,
            shots: 0,
            window: 0.0,
        };
        let case = |name: &str, rule_l2, opt_l2| CaseRecord {
            name: name.into(),
            area_nm2: 0,
            rects: 0,
            rule: outcome(rule_l2),
            opt: outcome(opt_l2),
            telemetry: TelemetrySummary::default(),
            wall_ms: None,
        };
        let report = EvalReport {
            suite: "t".into(),
            size: 64,
            kernel_count: 6,
            cases: vec![case("a", 10.0, 4.0), case("b", 20.0, 6.0)],
        };
        assert_eq!(report.mean(|m| m.l2), (15.0, 5.0));
        let empty = EvalReport {
            cases: vec![],
            ..report
        };
        assert_eq!(empty.mean(|m| m.l2), (0.0, 0.0));
    }
}
