//! End-to-end determinism of the evaluation harness.
//!
//! The acceptance bar for `cfaopc eval` is byte-identical
//! `RESULTS.json` across runs and across `CFAOPC_THREADS` values. One
//! umbrella test pins `CFAOPC_THREADS=4` before the pool exists, runs
//! the tiny suite sharded, re-runs it, and runs it fully serial, then
//! compares the serialized bytes — plus the golden round trip on top.

use cfaopc_eval::{compare_reports, run_suite, CaseSource, EvalReport, SuiteSpec, Tolerance};
use cfaopc_fft::parallel::{with_worker_limit, worker_count};

#[test]
fn tiny_suite_results_are_byte_identical_and_golden_checkable() {
    std::env::set_var("CFAOPC_THREADS", "4");
    assert_eq!(worker_count(), 4, "CFAOPC_THREADS must win at pool setup");

    let spec = SuiteSpec::named("tiny").unwrap();
    let first = run_suite(&spec).unwrap();
    let second = run_suite(&spec).unwrap();
    let serial = with_worker_limit(1, || run_suite(&spec).unwrap());

    let bytes = first.to_json_string();
    assert_eq!(bytes, second.to_json_string(), "same-seed reruns drifted");
    assert_eq!(
        bytes,
        serial.to_json_string(),
        "RESULTS.json depends on thread count"
    );

    // Deterministic mode must not leak wall-clock time into the report.
    assert!(first.cases.iter().all(|c| c.wall_ms.is_none()));

    // The serialized report is its own golden file.
    let golden = EvalReport::from_json_str(&bytes).unwrap();
    assert_eq!(golden, first);
    let tol = Tolerance::default();
    assert!(compare_reports(&golden, &second, &tol).is_empty());

    // A perturbed golden must be flagged, naming the drifted metric.
    let mut bad = golden.clone();
    bad.cases[0].opt.l2 += 10.0 * tol.allowed(bad.cases[0].opt.l2);
    let drifts = compare_reports(&bad, &second, &tol);
    assert_eq!(drifts.len(), 1);
    assert_eq!(drifts[0].metric, "l2");
    assert_eq!(drifts[0].method, "opt");
    assert_eq!(drifts[0].case, bad.cases[0].name);

    // Structural mismatch (missing case) is also a drift, not a panic.
    let mut truncated = golden.clone();
    truncated.cases.pop();
    assert!(!compare_reports(&truncated, &second, &tol).is_empty());

    // Ragged sharding: 3 cases over the 4-worker pool exercises the
    // remainder-distributing share table ([2, 1, 1] — the old
    // `workers / slots` split ran every case 1-way and idled a worker).
    // The uneven shares must not leak into the report bytes.
    let mut ragged = spec.clone();
    ragged.name = "tiny-ragged".into();
    ragged.cases = vec![
        CaseSource::Benchmark(4),
        CaseSource::Generated(7),
        CaseSource::Benchmark(2),
    ];
    assert_eq!(ragged.cases.len() % worker_count(), 3, "ragged by design");
    let sharded = run_suite(&ragged).unwrap();
    let serial_ragged = with_worker_limit(1, || run_suite(&ragged).unwrap());
    assert_eq!(
        sharded.to_json_string(),
        serial_ragged.to_json_string(),
        "remainder shares changed RESULTS.json bytes"
    );
}
