//! CircleRule: the paper's rule-based circular fracturer (§3, Algorithm 1).
//!
//! A binarized mask is split into connected regions; each region is
//! thinned to its skeleton; a DFS walks the skeleton graph sampling a
//! point every `m` steps; at each sampled point the radius grows from
//! `R_min` until the cover rate `|C(u,r) ∩ A_i| / |C(u,r)|` drops below
//! the threshold `I`.

use crate::shots::{CircleShot, CircularMask};
use cfaopc_grid::{
    connected_components, disk_area, endpoints, skeletonize, BitGrid, Connectivity, Point,
};
use serde::{Deserialize, Serialize};

/// CircleRule hyper-parameters, in nanometres (converted to pixels with
/// the grid pitch at call time). Defaults are the paper's §5 constants:
/// sample distance 32, radii in `[12, 76]`, cover threshold `I = 0.9`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircleRuleConfig {
    /// Distance `m` between consecutive sampled skeleton points.
    pub sample_distance_nm: f64,
    /// Minimum shot radius `R_min`.
    pub r_min_nm: f64,
    /// Maximum shot radius `R_max`.
    pub r_max_nm: f64,
    /// Cover-rate threshold `I`.
    pub cover_threshold: f64,
    /// Radius policy. Algorithm 1's pseudocode literally adds the *first*
    /// radius whose cover rate drops **below** `I` (lines 19–23); the
    /// evident intent — and our default (`false`) — is the *last* radius
    /// still covering at least `I`, clamped to `R_min`.
    /// Set `true` for the literal pseudocode behaviour.
    // NOTE(paper): see DESIGN.md, "Deviations".
    pub first_below_threshold: bool,
    /// Minimum fraction of each region's pixels that must end up inside
    /// some circle. Skeleton sampling alone under-covers fat blobs whose
    /// medial axis degenerates (a disk thins to a single point) when the
    /// blob half-width exceeds `R_max`; a greedy completion pass adds
    /// circles at the deepest uncovered pixels until this fraction is
    /// reached. Set to `0.0` for the paper's pure Algorithm 1.
    // NOTE(paper): coverage completion is an extension; Algorithm 1 stops
    // after the skeleton walk.
    pub min_region_coverage: f64,
}

impl Default for CircleRuleConfig {
    fn default() -> Self {
        CircleRuleConfig {
            sample_distance_nm: 32.0,
            r_min_nm: 12.0,
            r_max_nm: 76.0,
            cover_threshold: 0.9,
            first_below_threshold: false,
            min_region_coverage: 0.97,
        }
    }
}

impl CircleRuleConfig {
    /// Sample distance in pixels (at least 1).
    pub fn sample_distance_px(&self, pixel_nm: f64) -> u32 {
        (self.sample_distance_nm / pixel_nm).round().max(1.0) as u32
    }

    /// `(R_min, R_max)` in pixels (at least 1, ordered).
    pub fn radius_range_px(&self, pixel_nm: f64) -> (i32, i32) {
        let r_min = (self.r_min_nm / pixel_nm).round().max(1.0) as i32;
        let r_max = ((self.r_max_nm / pixel_nm).round() as i32).max(r_min);
        (r_min, r_max)
    }
}

/// Fractures a binary mask into overlapping circular shots (Algorithm 1).
///
/// `pixel_nm` is the grid pitch used to convert the nm-denominated
/// configuration into pixels.
///
/// # Examples
///
/// ```
/// use cfaopc_fracture::{circle_rule, CircleRuleConfig};
/// use cfaopc_grid::{fill_circle, BitGrid, Point};
///
/// let mut mask = BitGrid::new(128, 128);
/// fill_circle(&mut mask, Point::new(64, 64), 15);
/// let circles = circle_rule(&mask, &CircleRuleConfig::default(), 4.0);
/// assert!(circles.shot_count() >= 1);
/// ```
pub fn circle_rule(mask: &BitGrid, config: &CircleRuleConfig, pixel_nm: f64) -> CircularMask {
    let (w, h) = (mask.width(), mask.height());
    let m_px = config.sample_distance_px(pixel_nm);
    let (r_min, r_max) = config.radius_range_px(pixel_nm);
    let labeling = connected_components(mask, Connectivity::Eight);
    let mut out = CircularMask::new();
    let mut visited = BitGrid::new(w, h);

    for region in &labeling.regions {
        // Skeletonize the region on a padded crop of its bounding box
        // (Zhang–Suen is O(area · passes); cropping keeps it local).
        let pad = 2i32;
        let bx0 = (region.bbox.x0 - pad).max(0);
        let by0 = (region.bbox.y0 - pad).max(0);
        let bx1 = (region.bbox.x1 + pad).min(w as i32);
        let by1 = (region.bbox.y1 + pad).min(h as i32);
        let (cw, ch) = ((bx1 - bx0) as usize, (by1 - by0) as usize);
        let mut crop = BitGrid::new(cw, ch);
        for &p in &region.points {
            crop.set((p.x - bx0) as usize, (p.y - by0) as usize, true);
        }
        let skeleton_crop = skeletonize(&crop);

        // Deterministic seed: an endpoint when the skeleton has one
        // (walks start at curve tips), else the first pixel.
        // NOTE(paper): Algorithm 1 samples the seed randomly; a fixed
        // seed makes runs reproducible and changes nothing else.
        let seed_crop = endpoints(&skeleton_crop)
            .first()
            .copied()
            .or_else(|| skeleton_crop.ones().first().copied());
        let Some(seed_crop) = seed_crop else {
            continue;
        };

        // DFS-based point sampling (Algorithm 1, lines 9–18).
        let mut region_shots: Vec<CircleShot> = Vec::new();
        let mut stack: Vec<(Point, u32)> = vec![(seed_crop, 0)];
        while let Some((u, cnt)) = stack.pop() {
            let gu = Point::new(u.x + bx0, u.y + by0);
            if visited.at(gu) {
                continue;
            }
            visited.set_at(gu, true);
            for &(dx, dy) in Connectivity::Eight.offsets() {
                let v = Point::new(u.x + dx, u.y + dy);
                if skeleton_crop.at(v) && !visited.at(Point::new(v.x + bx0, v.y + by0)) {
                    stack.push((v, cnt + 1));
                }
            }
            if cnt % m_px == 0 {
                let r = select_radius(
                    &labeling.labels,
                    region.label,
                    gu,
                    r_min,
                    r_max,
                    config.cover_threshold,
                    config.first_below_threshold,
                );
                out.push(CircleShot::new(gu.x, gu.y, r));
                region_shots.push(CircleShot::new(gu.x, gu.y, r));
            }
        }

        // Greedy coverage completion for fat regions (see the field docs
        // on `min_region_coverage`).
        if config.min_region_coverage > 0.0 {
            complete_coverage(
                &labeling.labels,
                region,
                &mut region_shots,
                &mut out,
                r_min,
                r_max,
                config,
            );
        }
    }
    out
}

/// Adds circles at the deepest uncovered pixels of `region` until
/// `min_region_coverage` of its area is inside some circle.
fn complete_coverage(
    labels: &cfaopc_grid::Grid2D<u32>,
    region: &cfaopc_grid::Region,
    region_shots: &mut Vec<CircleShot>,
    out: &mut CircularMask,
    r_min: i32,
    r_max: i32,
    config: &CircleRuleConfig,
) {
    let area = region.points.len();
    let allowed_uncovered = ((1.0 - config.min_region_coverage) * area as f64) as usize;
    // Depth of every region pixel (distance to the region's boundary),
    // used to place completion circles as deep inside as possible.
    let covered_by = |shots: &[CircleShot], p: Point| shots.iter().any(|s| s.contains(p));
    let mut uncovered: Vec<Point> = region
        .points
        .iter()
        .copied()
        .filter(|&p| !covered_by(region_shots, p))
        .collect();
    if uncovered.len() <= allowed_uncovered {
        return;
    }
    let crop_mask = region.to_mask(labels.width(), labels.height());
    let depth = cfaopc_grid::interior_distance(&crop_mask);
    let budget = area / cfaopc_grid::disk_area(r_min).max(1) + 8;
    for _ in 0..budget {
        if uncovered.len() <= allowed_uncovered {
            break;
        }
        let &deepest = uncovered
            .iter()
            .max_by(|a, b| {
                let da = depth[(a.x as usize, a.y as usize)];
                let db = depth[(b.x as usize, b.y as usize)];
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("uncovered nonempty");
        let r = select_radius(
            labels,
            region.label,
            deepest,
            r_min,
            r_max,
            config.cover_threshold,
            config.first_below_threshold,
        );
        let shot = CircleShot::new(deepest.x, deepest.y, r);
        region_shots.push(shot);
        out.push(shot);
        uncovered.retain(|&p| !shot.contains(p));
    }
}

/// Circle radius selection (Algorithm 1, lines 19–23): grow `r` until the
/// cover rate `|C(u,r) ∩ A_i| / |C(u,r)|` drops below the threshold.
///
/// Implemented with a single sweep over the `R_max` disk that buckets
/// pixels by the smallest enclosing integer radius, so the cover rate of
/// every candidate radius comes from one prefix sum.
fn select_radius(
    labels: &cfaopc_grid::Grid2D<u32>,
    label: u32,
    center: Point,
    r_min: i32,
    r_max: i32,
    threshold: f64,
    first_below: bool,
) -> i32 {
    let mut inside_by_r = vec![0usize; (r_max + 1) as usize];
    for dy in -r_max..=r_max {
        for dx in -r_max..=r_max {
            let d2 = (dx * dx + dy * dy) as i64;
            if d2 > (r_max as i64) * (r_max as i64) {
                continue;
            }
            let p = Point::new(center.x + dx, center.y + dy);
            if labels.get(p).copied() == Some(label) {
                let r_idx = (d2 as f64).sqrt().ceil() as usize;
                // ceil(sqrt) can overshoot on perfect squares; snap down.
                let r_idx = if r_idx > 0 && ((r_idx - 1) * (r_idx - 1)) as i64 >= d2 {
                    r_idx - 1
                } else {
                    r_idx
                };
                inside_by_r[r_idx.min(r_max as usize)] += 1;
            }
        }
    }
    let mut cumulative = 0usize;
    let mut cum_inside = vec![0usize; (r_max + 1) as usize];
    for r in 0..=r_max as usize {
        cumulative += inside_by_r[r];
        cum_inside[r] = cumulative;
    }
    for r in r_min..=r_max {
        let cover = cum_inside[r as usize] as f64 / disk_area(r) as f64;
        if cover < threshold {
            return if first_below { r } else { (r - 1).max(r_min) };
        }
    }
    r_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{fill_circle, fill_rect, Rect};

    const PX: f64 = 4.0; // 512-style grid pitch

    fn cfg() -> CircleRuleConfig {
        CircleRuleConfig::default()
    }

    #[test]
    fn empty_mask_gives_no_shots() {
        let mask = BitGrid::new(64, 64);
        assert!(circle_rule(&mask, &cfg(), PX).is_empty());
    }

    #[test]
    fn disk_is_covered_by_few_shots() {
        let mut mask = BitGrid::new(128, 128);
        fill_circle(&mut mask, Point::new(64, 64), 15);
        let circles = circle_rule(&mask, &cfg(), PX);
        assert!(circles.shot_count() >= 1);
        assert!(
            circles.shot_count() <= 6,
            "a disk needs few circular shots, got {}",
            circles.shot_count()
        );
        // Union recovers most of the disk.
        let raster = circles.rasterize(128, 128);
        let inter = raster.intersection_count(&mask);
        assert!(inter as f64 >= 0.7 * mask.count_ones() as f64);
    }

    #[test]
    fn radii_respect_bounds() {
        let mut mask = BitGrid::new(256, 256);
        fill_rect(&mut mask, Rect::new(20, 100, 230, 140)); // fat bar
        fill_circle(&mut mask, Point::new(60, 40), 4); // tiny dot
        let circles = circle_rule(&mask, &cfg(), PX);
        let (r_min, r_max) = cfg().radius_range_px(PX);
        for s in circles.shots() {
            assert!(s.r >= r_min && s.r <= r_max, "radius {} out of bounds", s.r);
        }
    }

    #[test]
    fn bar_shots_follow_the_spine() {
        let mut mask = BitGrid::new(256, 128);
        fill_rect(&mut mask, Rect::new(20, 56, 230, 72)); // 16px tall bar
        let circles = circle_rule(&mask, &cfg(), PX);
        assert!(circles.shot_count() >= 3, "{}", circles.shot_count());
        for s in circles.shots() {
            assert!(
                (s.y - 64).abs() <= 4,
                "shot at ({}, {}) far from the spine",
                s.x,
                s.y
            );
        }
    }

    #[test]
    fn larger_sample_distance_means_fewer_shots() {
        let mut mask = BitGrid::new(256, 256);
        fill_rect(&mut mask, Rect::new(20, 60, 230, 76));
        fill_rect(&mut mask, Rect::new(20, 160, 230, 176));
        let dense = circle_rule(
            &mask,
            &CircleRuleConfig {
                sample_distance_nm: 16.0,
                ..cfg()
            },
            PX,
        );
        let sparse = circle_rule(
            &mask,
            &CircleRuleConfig {
                sample_distance_nm: 64.0,
                ..cfg()
            },
            PX,
        );
        assert!(
            sparse.shot_count() < dense.shot_count(),
            "sparse {} vs dense {}",
            sparse.shot_count(),
            dense.shot_count()
        );
    }

    #[test]
    fn stricter_threshold_shrinks_radii() {
        let mut mask = BitGrid::new(128, 128);
        fill_rect(&mut mask, Rect::new(30, 50, 100, 80));
        let loose = circle_rule(
            &mask,
            &CircleRuleConfig {
                cover_threshold: 0.5,
                ..cfg()
            },
            PX,
        );
        let strict = circle_rule(
            &mask,
            &CircleRuleConfig {
                cover_threshold: 0.98,
                ..cfg()
            },
            PX,
        );
        let avg = |m: &CircularMask| {
            m.shots().iter().map(|s| s.r as f64).sum::<f64>() / m.shot_count().max(1) as f64
        };
        assert!(
            avg(&strict) <= avg(&loose),
            "strict {} vs loose {}",
            avg(&strict),
            avg(&loose)
        );
    }

    #[test]
    fn literal_pseudocode_radii_are_one_larger() {
        let mut mask = BitGrid::new(128, 128);
        fill_circle(&mut mask, Point::new(64, 64), 12);
        let default = circle_rule(&mask, &cfg(), PX);
        let literal = circle_rule(
            &mask,
            &CircleRuleConfig {
                first_below_threshold: true,
                ..cfg()
            },
            PX,
        );
        assert_eq!(default.shot_count(), literal.shot_count());
        for (a, b) in default.shots().iter().zip(literal.shots()) {
            assert!(
                b.r - a.r <= 1 && b.r >= a.r,
                "default {} literal {}",
                a.r,
                b.r
            );
        }
    }

    #[test]
    fn every_region_gets_at_least_one_shot() {
        let mut mask = BitGrid::new(256, 256);
        fill_circle(&mut mask, Point::new(40, 40), 8);
        fill_circle(&mut mask, Point::new(180, 60), 10);
        fill_rect(&mut mask, Rect::new(40, 150, 220, 170));
        let circles = circle_rule(&mask, &cfg(), PX);
        for &c in &[
            Point::new(40, 40),
            Point::new(180, 60),
            Point::new(130, 160),
        ] {
            assert!(
                circles.shots().iter().any(|s| s.center().dist(c) < 60.0),
                "no shot near region at {c}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let mut mask = BitGrid::new(128, 128);
        fill_rect(&mut mask, Rect::new(10, 10, 100, 30));
        fill_circle(&mut mask, Point::new(80, 90), 13);
        let a = circle_rule(&mask, &cfg(), PX);
        let b = circle_rule(&mask, &cfg(), PX);
        assert_eq!(a, b);
    }

    #[test]
    fn config_px_conversions() {
        let c = cfg();
        assert_eq!(c.sample_distance_px(4.0), 8);
        assert_eq!(c.radius_range_px(4.0), (3, 19));
        assert_eq!(c.sample_distance_px(1.0), 32);
        assert_eq!(c.radius_range_px(1.0), (12, 76));
        // Coarse grids clamp to 1.
        assert_eq!(c.sample_distance_px(64.0), 1);
        assert_eq!(c.radius_range_px(64.0), (1, 1));
    }
}
