//! Mask rule checking (MRC) for circular masks.
//!
//! One selling point of the circular writer (paper §1) is that fractured
//! curvilinear masks are "MRC-friendly since we can effortlessly check
//! the distances between the circular shots with their positions and
//! radii" — this module is that check: radius bounds per shot, plus the
//! external-spacing rule between shots of different connected shot
//! groups (overlapping shots form one written feature; distinct features
//! must keep a minimum gap).

use crate::shots::{CircleShot, CircularMask};
use serde::{Deserialize, Serialize};

/// MRC rules for circular masks, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MrcRules {
    /// Minimum legal shot radius.
    pub r_min: i32,
    /// Maximum legal shot radius.
    pub r_max: i32,
    /// Minimum edge-to-edge gap between non-overlapping shot groups.
    pub min_spacing: f64,
}

/// One MRC violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MrcViolation {
    /// Shot radius below `r_min`.
    RadiusTooSmall {
        /// Offending shot index.
        shot: usize,
        /// Its radius.
        radius: i32,
    },
    /// Shot radius above `r_max`.
    RadiusTooLarge {
        /// Offending shot index.
        shot: usize,
        /// Its radius.
        radius: i32,
    },
    /// Two disjoint shots closer than the spacing rule.
    SpacingTooSmall {
        /// First shot index.
        a: usize,
        /// Second shot index.
        b: usize,
        /// Edge-to-edge gap (positive = disjoint).
        gap: f64,
    },
}

/// MRC check result.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MrcReport {
    /// All violations found.
    pub violations: Vec<MrcViolation>,
}

impl MrcReport {
    /// `true` when the mask passes every rule.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks `mask` against `rules`.
///
/// Spacing is evaluated pairwise on shot centers and radii — exactly the
/// "effortless" geometric check the circular writer enables; no raster
/// needed. Shots in the same overlap group (edge-to-edge gap ≤ 0 through
/// any chain of overlaps) are exempt from the spacing rule.
///
/// # Examples
///
/// ```
/// use cfaopc_fracture::{check_mrc, CircleShot, CircularMask, MrcRules};
///
/// let rules = MrcRules { r_min: 3, r_max: 19, min_spacing: 4.0 };
/// let good = CircularMask::from_shots(vec![
///     CircleShot::new(20, 20, 6),
///     CircleShot::new(26, 20, 6), // overlapping: same feature, fine
/// ]);
/// assert!(check_mrc(&good, &rules).is_clean());
/// ```
pub fn check_mrc(mask: &CircularMask, rules: &MrcRules) -> MrcReport {
    let shots = mask.shots();
    let mut report = MrcReport::default();
    for (i, s) in shots.iter().enumerate() {
        if s.r < rules.r_min {
            report.violations.push(MrcViolation::RadiusTooSmall {
                shot: i,
                radius: s.r,
            });
        }
        if s.r > rules.r_max {
            report.violations.push(MrcViolation::RadiusTooLarge {
                shot: i,
                radius: s.r,
            });
        }
    }
    // Union-find over overlapping shots → overlap groups.
    let mut parent: Vec<usize> = (0..shots.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..shots.len() {
        for j in (i + 1)..shots.len() {
            if gap(&shots[i], &shots[j]) <= 0.0 {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    for i in 0..shots.len() {
        for j in (i + 1)..shots.len() {
            let g = gap(&shots[i], &shots[j]);
            if g > 0.0 && g < rules.min_spacing && find(&mut parent, i) != find(&mut parent, j) {
                report
                    .violations
                    .push(MrcViolation::SpacingTooSmall { a: i, b: j, gap: g });
            }
        }
    }
    report
}

/// Edge-to-edge gap between two shots (negative when overlapping).
fn gap(a: &CircleShot, b: &CircleShot) -> f64 {
    a.center().dist(b.center()) - (a.r + b.r) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> MrcRules {
        MrcRules {
            r_min: 3,
            r_max: 19,
            min_spacing: 4.0,
        }
    }

    #[test]
    fn clean_mask_passes() {
        let m = CircularMask::from_shots(vec![
            CircleShot::new(20, 20, 6),
            CircleShot::new(27, 20, 6),   // overlaps: same group
            CircleShot::new(100, 100, 5), // far away: fine
        ]);
        assert!(check_mrc(&m, &rules()).is_clean());
    }

    #[test]
    fn radius_bounds_are_flagged() {
        let m = CircularMask::from_shots(vec![
            CircleShot::new(10, 10, 2),
            CircleShot::new(50, 50, 25),
        ]);
        let report = check_mrc(&m, &rules());
        assert_eq!(report.violations.len(), 2);
        assert!(matches!(
            report.violations[0],
            MrcViolation::RadiusTooSmall { shot: 0, radius: 2 }
        ));
        assert!(matches!(
            report.violations[1],
            MrcViolation::RadiusTooLarge {
                shot: 1,
                radius: 25
            }
        ));
    }

    #[test]
    fn near_miss_spacing_is_flagged() {
        // Gap = 14 - 12 = 2 < 4 and the shots do not overlap.
        let m = CircularMask::from_shots(vec![CircleShot::new(0, 0, 6), CircleShot::new(14, 0, 6)]);
        let report = check_mrc(&m, &rules());
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0],
            MrcViolation::SpacingTooSmall { a: 0, b: 1, .. }
        ));
    }

    #[test]
    fn chained_overlaps_form_one_group() {
        // a–b overlap, b–c overlap, a–c gap is small but they belong to
        // one written feature through b: no violation.
        let m = CircularMask::from_shots(vec![
            CircleShot::new(0, 0, 6),
            CircleShot::new(10, 0, 6),
            CircleShot::new(20, 0, 6),
        ]);
        assert!(check_mrc(&m, &rules()).is_clean());
    }

    #[test]
    fn empty_mask_is_clean() {
        assert!(check_mrc(&CircularMask::new(), &rules()).is_clean());
    }
}
