//! Rectangular (VSB / Manhattan) fracturing — the baseline the circular
//! writer competes against (paper Figure 1(a)).
//!
//! Curvilinear masks written on a Variable Shaped-Beam machine must be
//! decomposed into non-overlapping axis-aligned rectangles; each
//! rectangle is one shot. The decomposition here is the standard
//! run-merge sweep: horizontal runs per row, merged vertically while the
//! x-extent repeats. For curvilinear boundaries every row has a slightly
//! different extent, which is exactly why rectangle counts explode —
//! the effect Figure 1 illustrates.

use cfaopc_grid::{BitGrid, Rect};

/// Decomposes a binary mask into disjoint rectangles whose union is the
/// mask, merging vertically-stacked identical runs.
///
/// # Examples
///
/// ```
/// use cfaopc_fracture::rect_fracture;
/// use cfaopc_grid::{fill_rect, BitGrid, Rect};
///
/// let mut m = BitGrid::new(32, 32);
/// fill_rect(&mut m, Rect::new(4, 4, 20, 12));
/// let rects = rect_fracture(&m);
/// assert_eq!(rects.len(), 1); // an axis-aligned rectangle is one shot
/// ```
pub fn rect_fracture(mask: &BitGrid) -> Vec<Rect> {
    let (w, h) = (mask.width(), mask.height());
    let mut out: Vec<Rect> = Vec::new();
    // Open rectangles from the previous row, keyed by (x0, x1).
    let mut open: Vec<Rect> = Vec::new();
    for y in 0..h {
        let mut runs: Vec<(i32, i32)> = Vec::new();
        let mut x = 0usize;
        while x < w {
            if mask.get(x, y) {
                let start = x;
                while x < w && mask.get(x, y) {
                    x += 1;
                }
                runs.push((start as i32, x as i32));
            } else {
                x += 1;
            }
        }
        let mut next_open: Vec<Rect> = Vec::new();
        for &(x0, x1) in &runs {
            // Extend an open rectangle with the same x-extent, else open
            // a new one.
            if let Some(pos) = open
                .iter()
                .position(|r| r.x0 == x0 && r.x1 == x1 && r.y1 == y as i32)
            {
                let mut r = open.swap_remove(pos);
                r.y1 += 1;
                next_open.push(r);
            } else {
                next_open.push(Rect::new(x0, y as i32, x1, y as i32 + 1));
            }
        }
        // Whatever did not continue is finished.
        out.append(&mut open);
        open = next_open;
    }
    out.append(&mut open);
    out
}

/// VSB shot count of a binary mask: the size of its rectangle
/// decomposition.
pub fn rect_shot_count(mask: &BitGrid) -> usize {
    rect_fracture(mask).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{fill_circle, fill_rect, Point};

    fn area_of(rects: &[Rect]) -> i64 {
        rects.iter().map(Rect::area).sum()
    }

    #[test]
    fn empty_mask_has_no_rects() {
        let m = BitGrid::new(16, 16);
        assert!(rect_fracture(&m).is_empty());
    }

    #[test]
    fn single_rect_is_single_shot() {
        let mut m = BitGrid::new(32, 32);
        fill_rect(&mut m, Rect::new(3, 5, 19, 29));
        let rects = rect_fracture(&m);
        assert_eq!(rects.len(), 1);
        assert_eq!(rects[0], Rect::new(3, 5, 19, 29));
    }

    #[test]
    fn l_shape_is_two_shots() {
        let mut m = BitGrid::new(32, 32);
        fill_rect(&mut m, Rect::new(4, 4, 8, 20));
        fill_rect(&mut m, Rect::new(8, 16, 20, 20));
        let rects = rect_fracture(&m);
        assert_eq!(rects.len(), 2);
        assert_eq!(area_of(&rects), m.count_ones() as i64);
    }

    #[test]
    fn decomposition_partitions_the_mask() {
        let mut m = BitGrid::new(64, 64);
        fill_circle(&mut m, Point::new(32, 32), 14);
        fill_rect(&mut m, Rect::new(2, 2, 9, 60));
        let rects = rect_fracture(&m);
        // Exact cover: total area matches and every rect pixel is set.
        assert_eq!(area_of(&rects), m.count_ones() as i64);
        let mut seen = BitGrid::new(64, 64);
        for r in &rects {
            for y in r.y0..r.y1 {
                for x in r.x0..r.x1 {
                    assert!(m.get(x as usize, y as usize), "rect covers background");
                    assert!(!seen.get(x as usize, y as usize), "rects overlap");
                    seen.set(x as usize, y as usize, true);
                }
            }
        }
    }

    #[test]
    fn curvilinear_shapes_explode_the_shot_count() {
        // Figure 1's point: a disk costs ~1 rect per boundary row, far
        // more than the handful of circular shots CircleRule needs.
        let mut m = BitGrid::new(64, 64);
        fill_circle(&mut m, Point::new(32, 32), 20);
        let shots = rect_shot_count(&m);
        assert!(shots >= 15, "disk fractured into only {shots} rects");
    }

    #[test]
    fn disjoint_regions_add_up() {
        let mut m = BitGrid::new(64, 64);
        fill_rect(&mut m, Rect::new(2, 2, 12, 12));
        fill_rect(&mut m, Rect::new(30, 30, 50, 40));
        assert_eq!(rect_shot_count(&m), 2);
    }

    #[test]
    fn checkerboard_pixels_each_become_a_shot() {
        let mut m = BitGrid::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                if (x + y) % 2 == 0 {
                    m.set(x, y, true);
                }
            }
        }
        assert_eq!(rect_shot_count(&m), 32);
    }
}
