//! Mask fracturing for CFAOPC.
//!
//! Two fracturing backends and the MRC layer on top:
//!
//! * [`rect_fracture`] — rectangular (VSB) decomposition, the costly
//!   baseline of paper Figure 1(a); its rectangle count is the `#Shot`
//!   column for the raw pixel-ILT masks in Table 1;
//! * [`circle_rule`] — **CircleRule** (paper §3, Algorithm 1): connected
//!   regions → skeleton → DFS point sampling → cover-rate radius
//!   selection, producing a [`CircularMask`] of overlapping
//!   [`CircleShot`]s;
//! * [`check_mrc`] — the position/radius MRC check the circular writer
//!   makes trivial.
//!
//! # Examples
//!
//! ```
//! use cfaopc_fracture::{circle_rule, rect_shot_count, CircleRuleConfig};
//! use cfaopc_grid::{fill_circle, BitGrid, Point};
//!
//! // A curvilinear blob: circles win on shot count (Figure 1).
//! let mut mask = BitGrid::new(128, 128);
//! fill_circle(&mut mask, Point::new(64, 64), 18);
//! let rects = rect_shot_count(&mask);
//! let circles = circle_rule(&mask, &CircleRuleConfig::default(), 4.0).shot_count();
//! assert!(circles < rects);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle_rule;
mod mrc;
mod rect_fracture;
mod shot_list;
mod shots;

pub use circle_rule::{circle_rule, CircleRuleConfig};
pub use mrc::{check_mrc, MrcReport, MrcRules, MrcViolation};
pub use rect_fracture::{rect_fracture, rect_shot_count};
pub use shot_list::{ShotList, ShotListError};
pub use shots::{CircleShot, CircularMask};
