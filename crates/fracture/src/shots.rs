//! Shot primitives: what a mask writer actually exposes.

use cfaopc_grid::{disk_area, fill_circle, BitGrid, Point, Rect};
use serde::{Deserialize, Serialize};

/// One circular e-beam shot: a variable-radius circle (the primitive of
/// the writer in paper ref. \[7\]). Coordinates and radius are in pixels of
/// the mask grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CircleShot {
    /// Center column.
    pub x: i32,
    /// Center row.
    pub y: i32,
    /// Radius (inclusive boundary).
    pub r: i32,
}

impl CircleShot {
    /// Creates a shot.
    pub const fn new(x: i32, y: i32, r: i32) -> Self {
        CircleShot { x, y, r }
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.x, self.y)
    }

    /// Grid-point count of the (unclipped) disk.
    pub fn area(&self) -> usize {
        disk_area(self.r)
    }

    /// `true` when `p` lies inside the shot.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.dist_sqr(self.center()) <= (self.r as i64) * (self.r as i64)
    }
}

/// A mask represented as a set of overlapping circular shots — the
/// fracturing-aware mask representation of CFAOPC (`M̃ = ∪ᵢ C(pᵢ, rᵢ)`).
///
/// # Examples
///
/// ```
/// use cfaopc_fracture::{CircleShot, CircularMask};
///
/// let mask = CircularMask::from_shots(vec![
///     CircleShot::new(10, 10, 5),
///     CircleShot::new(14, 10, 5), // overlaps the first — allowed
/// ]);
/// assert_eq!(mask.shot_count(), 2);
/// let raster = mask.rasterize(24, 24);
/// assert!(raster.get(12, 10));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CircularMask {
    shots: Vec<CircleShot>,
}

impl CircularMask {
    /// An empty circular mask.
    pub fn new() -> Self {
        CircularMask::default()
    }

    /// Wraps a shot list.
    pub fn from_shots(shots: Vec<CircleShot>) -> Self {
        CircularMask { shots }
    }

    /// The shots.
    pub fn shots(&self) -> &[CircleShot] {
        &self.shots
    }

    /// Adds one shot.
    pub fn push(&mut self, shot: CircleShot) {
        self.shots.push(shot);
    }

    /// Number of shots — the paper's `#Shot` manufacturability metric.
    pub fn shot_count(&self) -> usize {
        self.shots.len()
    }

    /// Returns `true` when the mask has no shots.
    pub fn is_empty(&self) -> bool {
        self.shots.is_empty()
    }

    /// Rasterizes the union of all shots onto a `width × height` grid.
    pub fn rasterize(&self, width: usize, height: usize) -> BitGrid {
        let mut mask = BitGrid::new(width, height);
        for s in &self.shots {
            fill_circle(&mut mask, s.center(), s.r);
        }
        mask
    }

    /// Tight bounding box over all shots, or `None` when empty.
    pub fn bounding_box(&self) -> Option<Rect> {
        if self.shots.is_empty() {
            return None;
        }
        // Rect::new would normalize (swap) this inverted seed box.
        let mut r = Rect {
            x0: i32::MAX,
            y0: i32::MAX,
            x1: i32::MIN,
            y1: i32::MIN,
        };
        for s in &self.shots {
            r.x0 = r.x0.min(s.x - s.r);
            r.y0 = r.y0.min(s.y - s.r);
            r.x1 = r.x1.max(s.x + s.r + 1);
            r.y1 = r.y1.max(s.y + s.r + 1);
        }
        Some(r)
    }
}

impl FromIterator<CircleShot> for CircularMask {
    fn from_iter<I: IntoIterator<Item = CircleShot>>(iter: I) -> Self {
        CircularMask {
            shots: iter.into_iter().collect(),
        }
    }
}

impl Extend<CircleShot> for CircularMask {
    fn extend<I: IntoIterator<Item = CircleShot>>(&mut self, iter: I) {
        self.shots.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rasterize_union_of_overlapping_shots() {
        let m = CircularMask::from_shots(vec![CircleShot::new(8, 8, 4), CircleShot::new(12, 8, 4)]);
        let raster = m.rasterize(24, 16);
        // Union is bigger than either disk but smaller than their sum.
        let union = raster.count_ones();
        assert!(union > disk_area(4));
        assert!(union < 2 * disk_area(4));
    }

    #[test]
    fn bounding_box_covers_all_shots() {
        let m = CircularMask::from_shots(vec![CircleShot::new(5, 5, 2), CircleShot::new(20, 9, 3)]);
        let bb = m.bounding_box().unwrap();
        assert_eq!(bb, Rect::new(3, 3, 24, 13));
        assert!(CircularMask::new().bounding_box().is_none());
    }

    #[test]
    fn contains_respects_radius() {
        let s = CircleShot::new(10, 10, 3);
        assert!(s.contains(Point::new(13, 10)));
        assert!(!s.contains(Point::new(13, 11)));
    }

    #[test]
    fn collect_and_extend() {
        let mut m: CircularMask = (0..3).map(|i| CircleShot::new(i, 0, 1)).collect();
        m.extend([CircleShot::new(9, 9, 2)]);
        assert_eq!(m.shot_count(), 4);
    }
}
