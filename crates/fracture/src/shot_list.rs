//! Shot-list interchange format — the file a circular e-beam mask writer
//! consumes.
//!
//! The writer of paper ref. [7] exposes exactly three knobs per shot:
//! position and radius. This module serializes a [`CircularMask`] to a
//! small line-oriented text format (and parses it back), carrying the
//! grid geometry so coordinates are unambiguous:
//!
//! ```text
//! CSHOT 1
//! GRID 256 256 8
//! SHOT 52 48 5
//! SHOT 60 48 5
//! END
//! ```
//!
//! `GRID w h pitch_nm` declares the raster; each `SHOT x y r` is one
//! circle in pixels of that raster.

use crate::shots::{CircleShot, CircularMask};
use std::fmt;

/// A shot list bound to its grid geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotList {
    /// Grid width in pixels.
    pub width: usize,
    /// Grid height in pixels.
    pub height: usize,
    /// Pixel pitch in nanometres.
    pub pixel_nm: f64,
    /// The shots.
    pub mask: CircularMask,
}

/// Errors from parsing the shot-list format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShotListError {
    /// Missing or malformed `CSHOT` header.
    BadHeader,
    /// Missing or malformed `GRID` record.
    BadGrid,
    /// A malformed line (line number, content).
    BadLine(usize, String),
    /// A shot lies outside the declared grid or has a non-positive
    /// radius (line number).
    BadShot(usize),
}

impl fmt::Display for ShotListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShotListError::BadHeader => write!(f, "missing CSHOT header"),
            ShotListError::BadGrid => write!(f, "missing or malformed GRID record"),
            ShotListError::BadLine(n, l) => write!(f, "cannot parse line {n}: {l:?}"),
            ShotListError::BadShot(n) => write!(f, "shot on line {n} is off-grid or degenerate"),
        }
    }
}

impl std::error::Error for ShotListError {}

impl ShotList {
    /// Bundles a mask with its grid geometry.
    pub fn new(mask: CircularMask, width: usize, height: usize, pixel_nm: f64) -> Self {
        ShotList {
            width,
            height,
            pixel_nm,
            mask,
        }
    }

    /// Serializes to the `CSHOT` text format.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "CSHOT 1\nGRID {} {} {}\n",
            self.width, self.height, self.pixel_nm
        );
        for s in self.mask.shots() {
            out.push_str(&format!("SHOT {} {} {}\n", s.x, s.y, s.r));
        }
        out.push_str("END\n");
        out
    }

    /// Parses the `CSHOT` text format.
    ///
    /// # Errors
    ///
    /// Returns [`ShotListError`] on malformed headers, records, or shots
    /// that fall outside the declared grid.
    pub fn from_text(text: &str) -> Result<ShotList, ShotListError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(ShotListError::BadHeader)?;
        if header.trim() != "CSHOT 1" {
            return Err(ShotListError::BadHeader);
        }
        let (_, grid_line) = lines.next().ok_or(ShotListError::BadGrid)?;
        let mut it = grid_line.split_whitespace();
        if it.next() != Some("GRID") {
            return Err(ShotListError::BadGrid);
        }
        let width: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(ShotListError::BadGrid)?;
        let height: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(ShotListError::BadGrid)?;
        let pixel_nm: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(ShotListError::BadGrid)?;
        // Exactly three fields; a finite, positive pitch (`+inf` parses
        // as a valid f64 and used to slip through a NaN-only check).
        if it.next().is_some() {
            return Err(ShotListError::BadGrid);
        }
        if width == 0 || height == 0 || !pixel_nm.is_finite() || pixel_nm <= 0.0 {
            return Err(ShotListError::BadGrid);
        }

        let mut mask = CircularMask::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "END" {
                return Ok(ShotList {
                    width,
                    height,
                    pixel_nm,
                    mask,
                });
            }
            let mut it = line.split_whitespace();
            if it.next() != Some("SHOT") {
                return Err(ShotListError::BadLine(i + 1, line.to_string()));
            }
            // Exactly three integer fields, parsed strictly: an earlier
            // `filter_map(.. parse().ok())` dropped unparsable tokens, so
            // `SHOT 1 2 3 junk` was accepted and `SHOT 1 zz 2 3` silently
            // misparsed as (1, 2, 3).
            let bad = || ShotListError::BadLine(i + 1, line.to_string());
            let x: i64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
            let y: i64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
            let r: i64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
            if it.next().is_some() {
                return Err(bad());
            }
            if r <= 0 || x < 0 || y < 0 || x >= width as i64 || y >= height as i64 {
                return Err(ShotListError::BadShot(i + 1));
            }
            mask.push(CircleShot::new(x as i32, y as i32, r as i32));
        }
        // No END record: tolerate EOF-terminated lists.
        Ok(ShotList {
            width,
            height,
            pixel_nm,
            mask,
        })
    }

    /// Total written area estimate in nm² (union not accounted; an upper
    /// bound used by writer-time models).
    pub fn gross_area_nm2(&self) -> f64 {
        let px_area = self.pixel_nm * self.pixel_nm;
        self.mask
            .shots()
            .iter()
            .map(|s| s.area() as f64 * px_area)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShotList {
        ShotList::new(
            CircularMask::from_shots(vec![CircleShot::new(52, 48, 5), CircleShot::new(60, 48, 7)]),
            256,
            256,
            8.0,
        )
    }

    #[test]
    fn roundtrip() {
        let list = sample();
        let text = list.to_text();
        let back = ShotList::from_text(&text).unwrap();
        assert_eq!(back, list);
    }

    #[test]
    fn format_is_line_oriented() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "CSHOT 1");
        assert_eq!(lines[1], "GRID 256 256 8");
        assert_eq!(lines[2], "SHOT 52 48 5");
        assert_eq!(*lines.last().unwrap(), "END");
    }

    #[test]
    fn eof_terminated_list_is_accepted() {
        let list = ShotList::from_text("CSHOT 1\nGRID 8 8 4\nSHOT 1 2 3\n").unwrap();
        assert_eq!(list.mask.shot_count(), 1);
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(
            ShotList::from_text("WRONG\nGRID 8 8 4\n"),
            Err(ShotListError::BadHeader)
        );
        assert_eq!(ShotList::from_text(""), Err(ShotListError::BadHeader));
    }

    #[test]
    fn bad_grid_rejected() {
        assert_eq!(
            ShotList::from_text("CSHOT 1\nGRID 0 8 4\n"),
            Err(ShotListError::BadGrid)
        );
        assert_eq!(
            ShotList::from_text("CSHOT 1\nGRID 8 8\n"),
            Err(ShotListError::BadGrid)
        );
    }

    #[test]
    fn off_grid_shot_rejected() {
        assert_eq!(
            ShotList::from_text("CSHOT 1\nGRID 8 8 4\nSHOT 9 0 2\n"),
            Err(ShotListError::BadShot(3))
        );
        assert_eq!(
            ShotList::from_text("CSHOT 1\nGRID 8 8 4\nSHOT 1 1 0\n"),
            Err(ShotListError::BadShot(3))
        );
    }

    #[test]
    fn malformed_line_rejected() {
        assert!(matches!(
            ShotList::from_text("CSHOT 1\nGRID 8 8 4\nBLOB 1 2 3\n"),
            Err(ShotListError::BadLine(3, _))
        ));
    }

    #[test]
    fn shot_with_trailing_junk_rejected() {
        // Regression: `filter_map` used to drop the unparsable tail and
        // accept this line.
        assert!(matches!(
            ShotList::from_text("CSHOT 1\nGRID 8 8 4\nSHOT 1 2 3 junk\n"),
            Err(ShotListError::BadLine(3, _))
        ));
        // A fourth *numeric* field is junk too.
        assert!(matches!(
            ShotList::from_text("CSHOT 1\nGRID 8 8 4\nSHOT 1 2 3 4\n"),
            Err(ShotListError::BadLine(3, _))
        ));
    }

    #[test]
    fn shot_with_unparsable_field_rejected_not_misparsed() {
        // Regression: `SHOT 1 zz 2 3` used to misparse as (1, 2, 3).
        assert!(matches!(
            ShotList::from_text("CSHOT 1\nGRID 8 8 4\nSHOT 1 zz 2 3\n"),
            Err(ShotListError::BadLine(3, _))
        ));
        assert!(matches!(
            ShotList::from_text("CSHOT 1\nGRID 8 8 4\nSHOT 1 2\n"),
            Err(ShotListError::BadLine(3, _))
        ));
    }

    #[test]
    fn non_finite_grid_pitch_rejected() {
        // Regression: `+inf` parses as a valid f64 and slipped past the
        // old `is_nan() || <= 0.0` check.
        for pitch in ["+inf", "inf", "-inf", "NaN"] {
            assert_eq!(
                ShotList::from_text(&format!("CSHOT 1\nGRID 8 8 {pitch}\n")),
                Err(ShotListError::BadGrid),
                "pitch {pitch:?} must be rejected"
            );
        }
    }

    #[test]
    fn grid_with_trailing_junk_rejected() {
        assert_eq!(
            ShotList::from_text("CSHOT 1\nGRID 8 8 4 junk\n"),
            Err(ShotListError::BadGrid)
        );
    }

    #[test]
    fn gross_area() {
        let list = ShotList::new(
            CircularMask::from_shots(vec![CircleShot::new(4, 4, 1)]),
            16,
            16,
            2.0,
        );
        // disk_area(1) = 5 points × 4 nm² per pixel.
        assert_eq!(list.gross_area_nm2(), 20.0);
    }
}
