//! Property-based tests for fracturing.

use cfaopc_fracture::{
    check_mrc, circle_rule, rect_fracture, CircleRuleConfig, CircleShot, CircularMask, MrcRules,
    ShotList,
};
use cfaopc_grid::{fill_circle, fill_rect, BitGrid, Point, Rect};
use proptest::prelude::*;

const N: usize = 96;

#[derive(Debug, Clone)]
enum Shape {
    Rect(Rect),
    Disk(Point, i32),
}

fn arb_shapes() -> impl Strategy<Value = Vec<Shape>> {
    proptest::collection::vec(
        prop_oneof![
            (8i32..80, 8i32..80, 3i32..24, 3i32..24)
                .prop_map(|(x, y, w, h)| Shape::Rect(Rect::new(x, y, x + w, y + h))),
            (12i32..84, 12i32..84, 3i32..12).prop_map(|(x, y, r)| Shape::Disk(Point::new(x, y), r)),
        ],
        1..5,
    )
}

fn render(shapes: &[Shape]) -> BitGrid {
    let mut m = BitGrid::new(N, N);
    for s in shapes {
        match s {
            Shape::Rect(r) => fill_rect(&mut m, *r),
            Shape::Disk(c, r) => fill_circle(&mut m, *c, *r),
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rect_fracture_is_an_exact_partition(shapes in arb_shapes()) {
        let mask = render(&shapes);
        let rects = rect_fracture(&mask);
        let total: i64 = rects.iter().map(Rect::area).sum();
        prop_assert_eq!(total, mask.count_ones() as i64);
        let mut seen = BitGrid::new(N, N);
        for r in &rects {
            for y in r.y0..r.y1 {
                for x in r.x0..r.x1 {
                    prop_assert!(mask.get(x as usize, y as usize));
                    prop_assert!(!seen.get(x as usize, y as usize), "overlap at ({x},{y})");
                    seen.set(x as usize, y as usize, true);
                }
            }
        }
    }

    #[test]
    fn circle_rule_radii_always_in_bounds(shapes in arb_shapes()) {
        let mask = render(&shapes);
        let cfg = CircleRuleConfig::default();
        let px = 4.0;
        let circles = circle_rule(&mask, &cfg, px);
        let (r_min, r_max) = cfg.radius_range_px(px);
        for s in circles.shots() {
            prop_assert!(s.r >= r_min && s.r <= r_max, "radius {}", s.r);
            // Centers lie on mask pixels (they are sampled from region
            // skeletons / interiors).
            prop_assert!(mask.at(s.center()), "center {} off the mask", s.center());
        }
        // Radius-bound MRC is clean by construction.
        let report = check_mrc(
            &circles,
            &MrcRules { r_min, r_max, min_spacing: 0.0 },
        );
        prop_assert!(report.is_clean());
    }

    #[test]
    fn circle_rule_covers_most_of_each_big_region(x in 16i32..48, y in 16i32..48, w in 20i32..40, h in 12i32..40) {
        let mut mask = BitGrid::new(N, N);
        fill_rect(&mut mask, Rect::new(x, y, x + w, y + h));
        let circles = circle_rule(&mask, &CircleRuleConfig::default(), 4.0);
        let raster = circles.rasterize(N, N);
        let covered = raster.intersection_count(&mask);
        prop_assert!(
            covered as f64 >= 0.85 * mask.count_ones() as f64,
            "covered only {covered} of {}",
            mask.count_ones()
        );
    }

    #[test]
    fn circle_rule_is_deterministic(shapes in arb_shapes()) {
        let mask = render(&shapes);
        let cfg = CircleRuleConfig::default();
        prop_assert_eq!(circle_rule(&mask, &cfg, 4.0), circle_rule(&mask, &cfg, 4.0));
    }

    // --- CSHOT parser fuzzing -------------------------------------------

    #[test]
    fn shot_list_parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..256)
    ) {
        // Any input — valid UTF-8 or not — must produce Ok or a typed
        // error, never a panic.
        let _ = ShotList::from_text(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn shot_list_parser_never_panics_past_a_valid_header(
        bytes in proptest::collection::vec(0u8..=255, 0..192)
    ) {
        // Prepend valid CSHOT/GRID records so the fuzz reaches the
        // per-line SHOT parser instead of dying at the header checks.
        let text = format!("CSHOT 1\nGRID 64 64 4\n{}", String::from_utf8_lossy(&bytes));
        let _ = ShotList::from_text(&text);
    }

    #[test]
    fn shot_list_roundtrip_preserves_every_valid_list(list in arb_shot_list()) {
        prop_assert_eq!(ShotList::from_text(&list.to_text()), Ok(list));
    }
}

fn arb_shot_list() -> impl Strategy<Value = ShotList> {
    (
        1usize..=256,
        1usize..=256,
        0.5f64..64.0,
        proptest::collection::vec((0i32..256, 0i32..256, 1i32..48), 0..12),
    )
        .prop_map(|(w, h, pitch, shots)| {
            // Keep only shots inside the sampled grid so the list is valid
            // by construction.
            let shots = shots
                .into_iter()
                .filter(|&(x, y, _)| (x as usize) < w && (y as usize) < h)
                .map(|(x, y, r)| CircleShot::new(x, y, r))
                .collect();
            ShotList::new(CircularMask::from_shots(shots), w, h, pitch)
        })
}
