//! The daemon's wire protocol: newline-delimited JSON, both directions.
//!
//! Requests are parsed with `cfaopc_eval::Json`'s strict parser (a
//! malformed line gets an `error` response, never a guess) and responses
//! are built as ordered `Json` objects, so every line the daemon emits
//! is deterministic: same fields, same order, same float formatting.
//!
//! ## Requests (client → daemon)
//!
//! | `cmd` | fields |
//! |---|---|
//! | `submit` | `id` (required), `case` *or* `seed`, `size`, `kernels`, `init_iters`, `iters`, `priority`, `stream`, `timeout_ms`, `weight_l2`, `weight_pvb` |
//! | `cancel` | `id` |
//! | `status` | — |
//! | `ping` | — |
//! | `shutdown` | — |
//!
//! ## Responses (daemon → client)
//!
//! `ack`, `rejected`, `iter` (streamed telemetry, tagged with `job`),
//! `result`, `cancelled`, `failed`, `status`, `pong`, `shutting_down`,
//! `error`. Every job-related line carries the job `id`.

use cfaopc_eval::{CaseSource, Json};
use cfaopc_metrics::MaskMetrics;

/// Hard ceiling on requested grid edges: a submit asking for more is
/// rejected before it can make the daemon allocate gigabytes.
pub const MAX_SIZE: usize = 2048;

/// Hard ceiling on requested iteration counts (either stage).
pub const MAX_ITERATIONS: usize = 100_000;

/// A parsed job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen job identifier; echoed on every response line.
    pub id: String,
    /// Which layout to optimize.
    pub source: CaseSource,
    /// Simulation grid edge in pixels (power of two).
    pub size: usize,
    /// SOCS kernels per process corner.
    pub kernel_count: usize,
    /// CircleOpt stage-1 (pixel init) iterations.
    pub init_iterations: usize,
    /// CircleOpt stage-2 (circle-level) iterations.
    pub circle_iterations: usize,
    /// Queue priority; higher runs sooner.
    pub priority: i64,
    /// Stream per-iteration telemetry (`iter` lines) to the client.
    pub stream: bool,
    /// Per-job timeout override, milliseconds.
    pub timeout_ms: Option<u64>,
    /// L2 loss weight override (default 1.0).
    pub weight_l2: Option<f64>,
    /// PVB loss weight override (default 1.0).
    pub weight_pvb: Option<f64>,
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job.
    Submit(JobSpec),
    /// Cancel a queued or running job by id.
    Cancel {
        /// The job to cancel.
        id: String,
    },
    /// Report queue/runner/cache occupancy.
    Status,
    /// Liveness probe.
    Ping,
    /// Graceful shutdown: finish nothing, cancel everything, exit.
    Shutdown,
}

fn field_usize(obj: &Json, key: &str, default: usize) -> Result<usize, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn field_f64(obj: &Json, key: &str) -> Result<Option<f64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, an unknown
    /// `cmd`, or missing/invalid fields; the daemon relays it verbatim
    /// in an `error` response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let json = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let cmd = json
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"cmd\"".to_string())?;
        match cmd {
            "submit" => Ok(Request::Submit(JobSpec::from_json(&json)?)),
            "cancel" => {
                let id = json
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "cancel needs a string field \"id\"".to_string())?;
                Ok(Request::Cancel { id: id.to_string() })
            }
            "status" => Ok(Request::Status),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown cmd {other:?} (expected submit, cancel, status, ping or shutdown)"
            )),
        }
    }
}

impl JobSpec {
    /// Parses the body of a `submit` request.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(json: &Json) -> Result<JobSpec, String> {
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| "submit needs a string field \"id\"".to_string())?;
        if id.is_empty() || id.len() > 128 {
            return Err("job id must be 1..=128 characters".to_string());
        }
        let source = match (json.get("case"), json.get("seed")) {
            (Some(_), Some(_)) => {
                return Err("give either \"case\" or \"seed\", not both".to_string())
            }
            (Some(c), None) => CaseSource::Benchmark(
                c.as_usize()
                    .ok_or_else(|| "field \"case\" must be a non-negative integer".to_string())?,
            ),
            (None, Some(s)) => CaseSource::Generated(
                s.as_usize()
                    .ok_or_else(|| "field \"seed\" must be a non-negative integer".to_string())?
                    as u64,
            ),
            (None, None) => return Err("submit needs \"case\" or \"seed\"".to_string()),
        };
        let size = field_usize(json, "size", 128)?;
        if size > MAX_SIZE {
            return Err(format!("size {size} exceeds the maximum {MAX_SIZE}"));
        }
        let init_iterations = field_usize(json, "init_iters", 4)?;
        let circle_iterations = field_usize(json, "iters", 12)?;
        if init_iterations > MAX_ITERATIONS || circle_iterations > MAX_ITERATIONS {
            return Err(format!(
                "iteration counts above {MAX_ITERATIONS} are rejected"
            ));
        }
        let priority = match json.get("priority") {
            None => 0,
            Some(v) => {
                let p = v
                    .as_f64()
                    .ok_or_else(|| "field \"priority\" must be a number".to_string())?;
                if p.fract() != 0.0 || p.abs() > 1e9 {
                    return Err("priority must be an integer in [-1e9, 1e9]".to_string());
                }
                p as i64
            }
        };
        let stream = match json.get("stream") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("field \"stream\" must be a boolean".to_string()),
        };
        let timeout_ms =
            match json.get("timeout_ms") {
                None => None,
                Some(v) => Some(v.as_usize().ok_or_else(|| {
                    "field \"timeout_ms\" must be a non-negative integer".to_string()
                })? as u64),
            };
        Ok(JobSpec {
            id: id.to_string(),
            source,
            size,
            kernel_count: field_usize(json, "kernels", 6)?,
            init_iterations,
            circle_iterations,
            priority,
            stream,
            timeout_ms,
            weight_l2: field_f64(json, "weight_l2")?,
            weight_pvb: field_f64(json, "weight_pvb")?,
        })
    }
}

// --- response builders ------------------------------------------------------

fn line(pairs: Vec<(String, Json)>) -> String {
    let mut s = Json::Obj(pairs).to_string_compact();
    s.push('\n');
    s
}

fn kv(key: &str, value: Json) -> (String, Json) {
    (key.to_string(), value)
}

/// `ack`: the job was queued; `queued` is the depth after insertion.
pub fn ack(id: &str, queued: usize) -> String {
    line(vec![
        kv("kind", Json::Str("ack".into())),
        kv("id", Json::Str(id.into())),
        kv("queued", Json::Num(queued as f64)),
    ])
}

/// `rejected`: the job was not queued (backpressure, duplicate id,
/// shutdown); the reason says which.
pub fn rejected(id: &str, reason: &str) -> String {
    line(vec![
        kv("kind", Json::Str("rejected".into())),
        kv("id", Json::Str(id.into())),
        kv("reason", Json::Str(reason.into())),
    ])
}

/// `result`: the job finished; metrics in suite-report order.
pub fn result(id: &str, metrics: &MaskMetrics, iterations: usize) -> String {
    line(vec![
        kv("kind", Json::Str("result".into())),
        kv("id", Json::Str(id.into())),
        kv("l2", Json::Num(metrics.l2)),
        kv("pvb", Json::Num(metrics.pvb)),
        kv("epe", Json::Num(metrics.epe as f64)),
        kv("shots", Json::Num(metrics.shots as f64)),
        kv("iterations", Json::Num(iterations as f64)),
    ])
}

/// `cancelled`: the job stopped early; `reason` is `"cancel"`,
/// `"timeout"`, `"disconnect"` or `"shutdown"`.
pub fn cancelled(id: &str, reason: &str) -> String {
    line(vec![
        kv("kind", Json::Str("cancelled".into())),
        kv("id", Json::Str(id.into())),
        kv("reason", Json::Str(reason.into())),
    ])
}

/// `failed`: the job errored (typed litho/layout error, rendered).
pub fn failed(id: &str, error: &str) -> String {
    line(vec![
        kv("kind", Json::Str("failed".into())),
        kv("id", Json::Str(id.into())),
        kv("error", Json::Str(error.into())),
    ])
}

/// `status`: current occupancy.
pub fn status(queued: usize, running: usize, done: usize, cached_sims: usize) -> String {
    line(vec![
        kv("kind", Json::Str("status".into())),
        kv("queued", Json::Num(queued as f64)),
        kv("running", Json::Num(running as f64)),
        kv("done", Json::Num(done as f64)),
        kv("cached_sims", Json::Num(cached_sims as f64)),
    ])
}

/// `pong`: liveness reply.
pub fn pong() -> String {
    line(vec![kv("kind", Json::Str("pong".into()))])
}

/// `shutting_down`: acknowledgment of a `shutdown` request.
pub fn shutting_down() -> String {
    line(vec![kv("kind", Json::Str("shutting_down".into()))])
}

/// `error`: the request line itself was invalid.
pub fn error(message: &str) -> String {
    line(vec![
        kv("kind", Json::Str("error".into())),
        kv("message", Json::Str(message.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_parses_with_defaults() {
        let req = Request::parse(r#"{"cmd":"submit","id":"j1","case":4}"#).unwrap();
        match req {
            Request::Submit(spec) => {
                assert_eq!(spec.id, "j1");
                assert_eq!(spec.source, CaseSource::Benchmark(4));
                assert_eq!(spec.size, 128);
                assert_eq!(spec.kernel_count, 6);
                assert_eq!(spec.init_iterations, 4);
                assert_eq!(spec.circle_iterations, 12);
                assert_eq!(spec.priority, 0);
                assert!(!spec.stream);
                assert_eq!(spec.timeout_ms, None);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn submit_parses_every_field() {
        let req = Request::parse(
            r#"{"cmd":"submit","id":"j2","seed":7,"size":64,"kernels":4,"init_iters":2,"iters":3,"priority":5,"stream":true,"timeout_ms":250,"weight_l2":2.5}"#,
        )
        .unwrap();
        match req {
            Request::Submit(spec) => {
                assert_eq!(spec.source, CaseSource::Generated(7));
                assert_eq!(spec.size, 64);
                assert_eq!(spec.kernel_count, 4);
                assert_eq!(spec.init_iterations, 2);
                assert_eq!(spec.circle_iterations, 3);
                assert_eq!(spec.priority, 5);
                assert!(spec.stream);
                assert_eq!(spec.timeout_ms, Some(250));
                assert_eq!(spec.weight_l2, Some(2.5));
                assert_eq!(spec.weight_pvb, None);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn submit_rejects_bad_fields() {
        for (line, needle) in [
            (r#"{"cmd":"submit","case":4}"#, "id"),
            (r#"{"cmd":"submit","id":"x"}"#, "case"),
            (r#"{"cmd":"submit","id":"x","case":1,"seed":2}"#, "not both"),
            (
                r#"{"cmd":"submit","id":"x","case":1,"size":4096}"#,
                "maximum",
            ),
            (
                r#"{"cmd":"submit","id":"x","case":1,"stream":3}"#,
                "boolean",
            ),
            (r#"{"cmd":"nope"}"#, "unknown cmd"),
            (r#"{"id":"x"}"#, "cmd"),
            ("not json", "malformed"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(
                err.contains(needle),
                "{line}: {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn control_commands_parse() {
        assert_eq!(
            Request::parse(r#"{"cmd":"cancel","id":"j1"}"#).unwrap(),
            Request::Cancel { id: "j1".into() }
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(Request::parse(r#"{"cmd":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            Request::parse(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn response_lines_are_single_json_lines() {
        for s in [
            ack("j", 3),
            rejected("j", "queue full"),
            cancelled("j", "timeout"),
            failed("j", "boom"),
            status(1, 2, 3, 4),
            pong(),
            shutting_down(),
            error("bad"),
        ] {
            assert!(s.ends_with('\n'));
            assert_eq!(s.lines().count(), 1);
            cfaopc_eval::Json::parse(s.trim()).expect("response must be valid JSON");
        }
    }

    #[test]
    fn evil_ids_are_escaped_in_responses() {
        let s = ack("evil\"id\\\n", 1);
        let parsed = cfaopc_eval::Json::parse(s.trim()).unwrap();
        assert_eq!(
            parsed.get("id").and_then(Json::as_str),
            Some("evil\"id\\\n")
        );
    }

    #[test]
    fn infinity_weights_parse_for_health_guard_tests() {
        // Rust's f64 parser maps the overflowing literal to infinity;
        // the integration tests use this to force a NonFinite abort.
        let req =
            Request::parse(r#"{"cmd":"submit","id":"x","case":1,"weight_l2":1e999}"#).unwrap();
        match req {
            Request::Submit(spec) => assert_eq!(spec.weight_l2, Some(f64::INFINITY)),
            other => panic!("expected Submit, got {other:?}"),
        }
    }
}
