//! A bounded, priority-aware job queue with visible backpressure.
//!
//! The daemon must never buffer work unboundedly: a full queue fails the
//! push so the submitter can tell the client "rejected" immediately,
//! instead of accepting a job that will time out in line. Ordering is
//! highest priority first, FIFO within a priority (a monotone sequence
//! number breaks ties), implemented as a linear scan over a `Vec` —
//! deterministic, allocation-light, and plenty for a queue bounded in
//! the tens.

use std::sync::{Condvar, Mutex};

/// Why a [`JobQueue::push`] was refused; the job is handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — backpressure; retry later.
    Full(T),
    /// The queue was closed (daemon shutting down).
    Closed(T),
}

struct Inner<T> {
    /// `(priority, sequence, job)`; popped by max priority, min sequence.
    items: Vec<(i64, u64, T)>,
    next_seq: u64,
    closed: bool,
}

/// Bounded MPMC queue: producers are connection threads, consumers are
/// the runner threads. `pop` blocks until an item or close.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An empty queue holding at most `capacity` jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: Vec::new(),
                next_seq: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item` at `priority` (higher pops sooner). Returns the
    /// queue depth after insertion, or the item back on a full or
    /// closed queue.
    pub fn push(&self, priority: i64, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.items.push((priority, seq, item));
        let depth = inner.items.len();
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available (highest priority, FIFO within a
    /// priority) or the queue is closed and drained — then `None`.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(best) = Self::best_index(&inner.items) {
                let (_, _, item) = inner.items.remove(best);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Index of the next item to pop: max priority, then min sequence.
    fn best_index(items: &[(i64, u64, T)]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, (prio, seq, _)) in items.iter().enumerate() {
            let better = match best {
                None => true,
                Some(b) => {
                    let (bp, bs, _) = &items[b];
                    *prio > *bp || (*prio == *bp && *seq < *bs)
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    /// Closes the queue and returns every still-queued job (so the
    /// daemon can notify their clients); wakes all blocked consumers.
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        let drained = std::mem::take(&mut inner.items);
        drop(inner);
        self.available.notify_all();
        drained.into_iter().map(|(_, _, item)| item).collect()
    }

    /// Whether [`JobQueue::close_and_drain`] has run.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Jobs currently waiting (not the ones running).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes a queued job matching `pred` (e.g. cancel-before-start),
    /// returning it if it was still waiting.
    pub fn remove_if(&self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let idx = inner.items.iter().position(|(_, _, item)| pred(item))?;
        let (_, _, item) = inner.items.remove(idx);
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(8);
        q.push(0, "a").unwrap();
        q.push(5, "urgent").unwrap();
        q.push(0, "b").unwrap();
        q.push(5, "urgent2").unwrap();
        assert_eq!(q.pop(), Some("urgent"));
        assert_eq!(q.pop(), Some("urgent2"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
    }

    #[test]
    fn full_queue_rejects_with_the_item() {
        let q = JobQueue::new(2);
        assert_eq!(q.push(0, 1).unwrap(), 1);
        assert_eq!(q.push(0, 2).unwrap(), 2);
        match q.push(0, 3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(0, 3).unwrap(), 2, "popping frees capacity");
    }

    #[test]
    fn close_drains_and_unblocks() {
        let q = Arc::new(JobQueue::new(4));
        q.push(1, "queued").unwrap();
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // First pop gets the queued item; second blocks until close.
                let first = q.pop();
                let second = q.pop();
                (first, second)
            })
        };
        // Give the waiter a chance to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let drained = q.close_and_drain();
        let (first, second) = waiter.join().unwrap();
        assert_eq!(first, Some("queued"));
        assert_eq!(second, None);
        assert!(drained.is_empty());
        match q.push(0, "late") {
            Err(PushError::Closed(item)) => assert_eq!(item, "late"),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn remove_if_pulls_only_queued_jobs() {
        let q = JobQueue::new(4);
        q.push(0, 10).unwrap();
        q.push(0, 20).unwrap();
        assert_eq!(q.remove_if(|&v| v == 20), Some(20));
        assert_eq!(q.remove_if(|&v| v == 20), None);
        assert_eq!(q.len(), 1);
    }
}
