//! The daemon: accept loop, connection handlers, runner threads,
//! timeout watchdog, graceful shutdown.
//!
//! # Scheduling
//!
//! A fixed set of `runners` threads pops jobs from the bounded queue.
//! Runner `i` executes its job under
//! `with_worker_limit(worker_shares(worker_count(), runners)[i])` — the
//! eval harness's remainder-distributing share logic — so concurrent
//! jobs share the persistent pool without oversubscribing it, and
//! because every inner parallel region is bit-identical at any worker
//! limit, a job's result does not depend on which runner executed it or
//! what else was running. That is the daemon's determinism contract:
//! N concurrent submissions produce byte-identical result lines to N
//! serial ones.
//!
//! # Cancellation paths
//!
//! All four teardown paths converge on the job's [`CancelToken`], which
//! the optimizer polls at iteration boundaries:
//!
//! * client `cancel` request → token flipped by the connection thread;
//! * request timeout → token flipped by the watchdog;
//! * client disconnect (streaming jobs) → socket write fails, the
//!   hardened `JsonlSink` latches the error, [`StreamSink`] flips the
//!   token;
//! * daemon shutdown → every active token flipped, queue drained.

use crate::cache::SimulatorCache;
use crate::protocol::{self, JobSpec, Request};
use crate::queue::{JobQueue, PushError};
use crate::stream::{SharedWriter, StreamSink};
use cfaopc_core::{run_circleopt_cancellable, CircleOptConfig, CircleOptResult};
use cfaopc_fft::parallel::{with_worker_limit, worker_count, worker_shares};
use cfaopc_litho::{CancelToken, LithoError};
use cfaopc_metrics::{evaluate_mask, EpeConfig};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration. `Default` binds an ephemeral loopback port
/// with a 32-deep queue, auto-sized runners and no default timeout.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; loopback by default (the daemon trusts its peers —
    /// binding wider is an explicit operator decision).
    pub addr: String,
    /// Bounded queue depth; a full queue rejects submissions.
    pub queue_capacity: usize,
    /// Concurrent jobs (runner threads); `0` = auto
    /// (`worker_count()` capped at 4).
    pub runners: usize,
    /// Default per-job timeout (ms) when a submit does not set one;
    /// `None` = no timeout.
    pub default_timeout_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 32,
            runners: 0,
            default_timeout_ms: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
}

struct JobEntry {
    id: String,
    cancel: CancelToken,
    state: JobState,
    deadline: Option<Instant>,
    timed_out: bool,
}

/// A job as it sits in the queue: parsed spec, its cancel token, and
/// the submitting connection's shared writer for responses.
struct QueuedJob {
    spec: JobSpec,
    cancel: CancelToken,
    writer: SharedWriter<TcpStream>,
}

/// Keep at most this many finished registry entries (oldest pruned);
/// active entries are never pruned.
const DONE_RETENTION: usize = 4096;

struct State {
    queue: JobQueue<QueuedJob>,
    registry: Mutex<Vec<JobEntry>>,
    cache: SimulatorCache,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    runners: usize,
    default_timeout_ms: Option<u64>,
}

impl State {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

/// Handle to a daemon running on a background thread (tests, embedders).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to shut down (send it a `shutdown` request
    /// first).
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's I/O error, if any.
    pub fn join(self) -> std::io::Result<()> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("daemon thread panicked")),
        }
    }
}

impl Server {
    /// Binds the listener and prepares shared state (no threads yet).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let runners = if config.runners == 0 {
            worker_count().min(4)
        } else {
            config.runners
        };
        let state = Arc::new(State {
            queue: JobQueue::new(config.queue_capacity),
            registry: Mutex::new(Vec::new()),
            cache: SimulatorCache::new(),
            shutdown: AtomicBool::new(false),
            local_addr,
            runners,
            default_timeout_ms: config.default_timeout_ms,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Runs the daemon on the calling thread until a `shutdown` request
    /// arrives; runner and watchdog threads are joined before returning.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors other than transient
    /// per-connection failures (which are skipped).
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, state } = self;
        let shares = worker_shares(worker_count(), state.runners);
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(state.runners + 1);
        for &share in shares.iter().take(state.runners) {
            let state = Arc::clone(&state);
            workers.push(std::thread::spawn(move || runner_loop(&state, share)));
        }
        {
            let state = Arc::clone(&state);
            workers.push(std::thread::spawn(move || watchdog_loop(&state)));
        }

        for incoming in listener.incoming() {
            if state.shutting_down() {
                break;
            }
            match incoming {
                Ok(stream) => {
                    let state = Arc::clone(&state);
                    // Connection threads are detached: they exit on
                    // client EOF or shutdown, and hold no state the
                    // joiners below wait on.
                    std::thread::spawn(move || handle_connection(&state, stream));
                }
                Err(_) => continue,
            }
        }

        for handle in workers {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Binds and runs on a background thread; returns once the address
    /// is known.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let addr = server.local_addr();
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle { addr, thread })
    }
}

// --- connection handling ----------------------------------------------------

fn handle_connection(state: &Arc<State>, stream: TcpStream) {
    let writer = match stream.try_clone() {
        Ok(clone) => SharedWriter::new(clone),
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match Request::parse(trimmed) {
            Err(message) => {
                let _ = writer.send(&protocol::error(&message));
            }
            Ok(Request::Ping) => {
                let _ = writer.send(&protocol::pong());
            }
            Ok(Request::Status) => {
                let (running, done) = {
                    let registry = state.registry.lock().unwrap_or_else(|e| e.into_inner());
                    let running = registry
                        .iter()
                        .filter(|j| j.state == JobState::Running)
                        .count();
                    let done = registry
                        .iter()
                        .filter(|j| j.state == JobState::Done)
                        .count();
                    (running, done)
                };
                let _ = writer.send(&protocol::status(
                    state.queue.len(),
                    running,
                    done,
                    state.cache.len(),
                ));
            }
            Ok(Request::Cancel { id }) => cancel_job(state, &id, &writer),
            Ok(Request::Submit(spec)) => submit_job(state, spec, &writer),
            Ok(Request::Shutdown) => {
                let _ = writer.send(&protocol::shutting_down());
                initiate_shutdown(state);
                break;
            }
        }
        if state.shutting_down() {
            break;
        }
    }
}

fn submit_job(state: &Arc<State>, spec: JobSpec, writer: &SharedWriter<TcpStream>) {
    if state.shutting_down() {
        let _ = writer.send(&protocol::rejected(&spec.id, "shutting down"));
        return;
    }
    let cancel = CancelToken::new();
    {
        let mut registry = state.registry.lock().unwrap_or_else(|e| e.into_inner());
        let duplicate = registry
            .iter()
            .any(|j| j.id == spec.id && j.state != JobState::Done);
        if duplicate {
            drop(registry);
            let _ = writer.send(&protocol::rejected(&spec.id, "duplicate id"));
            return;
        }
        // Prune the oldest finished entries so the registry stays
        // bounded on a long-lived daemon.
        let finished = registry
            .iter()
            .filter(|j| j.state == JobState::Done)
            .count();
        if finished > DONE_RETENTION {
            if let Some(oldest) = registry.iter().position(|j| j.state == JobState::Done) {
                registry.remove(oldest);
            }
        }
        registry.push(JobEntry {
            id: spec.id.clone(),
            cancel: cancel.clone(),
            state: JobState::Queued,
            deadline: None,
            timed_out: false,
        });
    }
    let id = spec.id.clone();
    let priority = spec.priority;
    let job = QueuedJob {
        spec,
        cancel,
        writer: writer.clone(),
    };
    match state.queue.push(priority, job) {
        Ok(depth) => {
            let _ = writer.send(&protocol::ack(&id, depth));
        }
        Err(err) => {
            let reason = match err {
                PushError::Full(_) => "queue full",
                PushError::Closed(_) => "shutting down",
            };
            finish_entry(state, &id);
            let _ = writer.send(&protocol::rejected(&id, reason));
        }
    }
}

fn cancel_job(state: &Arc<State>, id: &str, writer: &SharedWriter<TcpStream>) {
    // Still queued? Pull it out before a runner ever sees it.
    if let Some(job) = state.queue.remove_if(|j| j.spec.id == id) {
        finish_entry(state, id);
        let _ = job.writer.send(&protocol::cancelled(id, "cancel"));
        return;
    }
    // Running (or racing with a runner): flip the token; the runner
    // emits the `cancelled` line when the optimizer observes it.
    let token = {
        let registry = state.registry.lock().unwrap_or_else(|e| e.into_inner());
        registry
            .iter()
            .find(|j| j.id == id && j.state != JobState::Done)
            .map(|j| j.cancel.clone())
    };
    match token {
        Some(token) => token.cancel(),
        None => {
            let _ = writer.send(&protocol::error(&format!("unknown job id {id:?}")));
        }
    }
}

fn initiate_shutdown(state: &Arc<State>) {
    state.shutdown.store(true, Ordering::Relaxed);
    // Reject-and-notify everything still waiting in line.
    for job in state.queue.close_and_drain() {
        finish_entry(state, &job.spec.id);
        let _ = job
            .writer
            .send(&protocol::cancelled(&job.spec.id, "shutdown"));
    }
    // Cancel everything currently running; runners emit the lines.
    {
        let registry = state.registry.lock().unwrap_or_else(|e| e.into_inner());
        for entry in registry.iter().filter(|j| j.state == JobState::Running) {
            entry.cancel.cancel();
        }
    }
    // Wake the accept loop so it observes the flag.
    let _ = TcpStream::connect(state.local_addr);
}

fn finish_entry(state: &Arc<State>, id: &str) {
    let mut registry = state.registry.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = registry
        .iter_mut()
        .find(|j| j.id == id && j.state != JobState::Done)
    {
        entry.state = JobState::Done;
        entry.deadline = None;
    }
}

// --- job execution ----------------------------------------------------------

fn runner_loop(state: &Arc<State>, share: usize) {
    while let Some(job) = state.queue.pop() {
        run_job(state, job, share);
    }
}

fn watchdog_loop(state: &Arc<State>) {
    while !state.shutting_down() {
        std::thread::sleep(Duration::from_millis(5));
        let now = Instant::now();
        let mut registry = state.registry.lock().unwrap_or_else(|e| e.into_inner());
        for entry in registry.iter_mut() {
            if entry.state == JobState::Running && !entry.timed_out {
                if let Some(deadline) = entry.deadline {
                    if now >= deadline {
                        entry.timed_out = true;
                        entry.cancel.cancel();
                    }
                }
            }
        }
    }
}

/// Builds the job's optimizer configuration exactly as the eval suite
/// does (gamma rescaled to grid resolution), with optional per-job loss
/// weights on top.
fn job_config(spec: &JobSpec) -> CircleOptConfig {
    let mut config = CircleOptConfig {
        init_iterations: spec.init_iterations,
        circle_iterations: spec.circle_iterations,
        gamma: 3.0 * (spec.size as f64 / 2048.0).powi(2),
        ..CircleOptConfig::default()
    };
    if let Some(w) = spec.weight_l2 {
        config.weights.l2 = w;
    }
    if let Some(w) = spec.weight_pvb {
        config.weights.pvb = w;
    }
    config
}

fn run_job(state: &Arc<State>, job: QueuedJob, share: usize) {
    let QueuedJob {
        spec,
        cancel,
        writer,
    } = job;
    let timeout_ms = spec.timeout_ms.or(state.default_timeout_ms);
    {
        let mut registry = state.registry.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = registry
            .iter_mut()
            .find(|j| j.id == spec.id && j.state == JobState::Queued)
        {
            entry.state = JobState::Running;
            entry.deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        }
    }

    let outcome = execute(state, &spec, &cancel, &writer, share);

    let line = match outcome {
        Ok((result, metrics)) => protocol::result(&spec.id, &metrics, result.history.len()),
        Err(JobError::Cancelled) => {
            let reason = cancel_reason(state, &spec.id);
            protocol::cancelled(&spec.id, reason)
        }
        Err(JobError::Failed(message)) => protocol::failed(&spec.id, &message),
    };
    finish_entry(state, &spec.id);
    let _ = writer.send(&line);
}

enum JobError {
    Cancelled,
    Failed(String),
}

fn execute(
    state: &Arc<State>,
    spec: &JobSpec,
    cancel: &CancelToken,
    writer: &SharedWriter<TcpStream>,
    share: usize,
) -> Result<(CircleOptResult, cfaopc_metrics::MaskMetrics), JobError> {
    let fail = |message: String| JobError::Failed(message);
    let sim = state
        .cache
        .get(spec.size, spec.kernel_count)
        .map_err(|e| fail(e.to_string()))?;
    let layout = spec.source.layout().map_err(|e| fail(e.to_string()))?;
    let target = layout.rasterize(spec.size);
    let config = job_config(spec);

    // The whole optimize-and-measure pipeline runs under this runner's
    // pool share; inner regions are bit-identical at any limit, so the
    // share never shows up in the results.
    with_worker_limit(share, || {
        let run = if spec.stream {
            let mut sink = StreamSink::new(writer.clone(), &spec.id, cancel.clone());
            run_circleopt_cancellable(&sim, &target, &config, &mut sink, cancel)
        } else {
            run_circleopt_cancellable(&sim, &target, &config, &mut (), cancel)
        };
        let result = run.map_err(|e| match e {
            LithoError::Cancelled { .. } => JobError::Cancelled,
            other => fail(other.to_string()),
        })?;
        let mut metrics = evaluate_mask(&sim, &result.mask_raster, &target, &EpeConfig::default())
            .map_err(|e| fail(e.to_string()))?;
        metrics.shots = result.shot_count();
        Ok((result, metrics))
    })
}

/// Why did this job's token flip? Precedence: an expired deadline is a
/// timeout even if shutdown follows; a daemon-wide shutdown beats an
/// individual cancel; otherwise it was a client cancel or disconnect
/// (the latter indistinguishable once the socket is gone — the line
/// likely isn't delivered anyway).
fn cancel_reason(state: &Arc<State>, id: &str) -> &'static str {
    let timed_out = {
        let registry = state.registry.lock().unwrap_or_else(|e| e.into_inner());
        registry
            .iter()
            .any(|j| j.id == id && j.state == JobState::Running && j.timed_out)
    };
    if timed_out {
        "timeout"
    } else if state.shutting_down() {
        "shutdown"
    } else {
        "cancel"
    }
}
