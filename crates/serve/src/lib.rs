//! `cfaopc-serve`: a concurrent mask-optimization daemon.
//!
//! The ROADMAP's production framing is a long-running service fed by a
//! mask-data-prep pipeline, not a one-shot CLI. This crate turns the
//! workspace's foundations — the persistent worker pool, the
//! shareable-and-reentrant [`LithoSimulator`], typed mid-run aborts, the
//! hardened `JsonlSink` — into exactly that, with zero dependencies
//! beyond `std::net`.
//!
//! # Architecture
//!
//! ```text
//!  client ──JSONL over TCP──▶ connection thread ──▶ bounded priority queue
//!                                   ▲                        │
//!                                   │ (ack/iter/result)      ▼ (pop)
//!                             shared writer ◀── runner threads (fixed N)
//!                                                      │
//!                                            with_worker_limit(share)
//!                                                      │
//!                                        Arc<LithoSimulator> cache
//! ```
//!
//! * **Protocol** ([`protocol`]) — newline-delimited JSON both ways,
//!   built on `cfaopc_eval::Json` so every response line is
//!   deterministic (ordered keys, shortest-roundtrip floats).
//! * **Queue** ([`queue`]) — bounded; a full queue *rejects* the
//!   submission immediately (backpressure the client can see) instead
//!   of buffering unboundedly. Priorities pop first, FIFO within a
//!   priority.
//! * **Scheduling** — a fixed set of runner threads pops jobs; runner
//!   `i` caps its inner parallel regions at
//!   `worker_shares(worker_count(), runners)[i]`, the same
//!   remainder-distributing share logic the eval harness shards with.
//!   Since inner regions are bit-identical at any worker limit,
//!   concurrent results equal serial ones byte for byte.
//! * **Cache** ([`cache`]) — one [`Arc<LithoSimulator>`] per
//!   `(size, kernel_count)`, built once and shared: SOCS kernels, FFT
//!   plans and scratch buffer pools are reused across jobs and across
//!   concurrently-running jobs (the simulator is `&self`-based and
//!   `Sync`; its buffer pools hand out fully-overwritten scratch, so
//!   sharing cannot perturb results).
//! * **Streaming** ([`stream`]) — per-iteration [`IterationRecord`]s
//!   flow through the ordinary `TelemetrySink` trait into a `JsonlSink`
//!   whose writer tags each line with the job id and multiplexes it
//!   onto the client socket. A dead client surfaces as the sink's
//!   latched write error, which cancels the job.
//! * **Cancellation** — every job carries a `CancelToken` polled at
//!   optimizer-iteration boundaries (`run_circleopt_cancellable`), the
//!   same clean exit as the `NonFinite` health guard; timeouts are a
//!   watchdog flipping the token, client cancels flip it over the wire,
//!   and shutdown flips them all.
//!
//! [`LithoSimulator`]: cfaopc_litho::LithoSimulator
//! [`Arc<LithoSimulator>`]: cfaopc_litho::LithoSimulator
//! [`IterationRecord`]: cfaopc_trace::IterationRecord

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stream;

pub use cache::SimulatorCache;
pub use protocol::{JobSpec, Request};
pub use queue::{JobQueue, PushError};
pub use server::{ServeConfig, Server, ServerHandle};
pub use stream::{SharedWriter, StreamSink, TaggedLineWriter};
