//! Streaming job telemetry onto a shared client socket.
//!
//! A connection serves many jobs at once, so its socket is a shared,
//! line-atomic channel: [`SharedWriter`] serializes whole lines under a
//! mutex. A streaming job's per-iteration records go through the
//! ordinary `cfaopc_trace::JsonlSink` — the same code path as
//! `--trace` files — wrapped around a [`TaggedLineWriter`] that buffers
//! until a full line is available and rewrites `{...}` into
//! `{"job":"<id>",...}` so the client can demultiplex.
//!
//! Client death is detected *through* the sink: a failed socket write
//! latches in the `JsonlSink` (the satellite hardening), and
//! [`StreamSink`] checks the latch after every record, cancelling the
//! job's token so the optimizer aborts at the next iteration boundary.

use cfaopc_litho::CancelToken;
use cfaopc_trace::{IterationRecord, JsonlSink, TelemetrySink};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// Clonable handle writing whole lines to a shared writer (typically a
/// `TcpStream` clone). Each line is written and flushed under one lock
/// acquisition, so concurrent jobs never interleave partial lines.
pub struct SharedWriter<W: Write> {
    inner: Arc<Mutex<W>>,
}

impl<W: Write> Clone for SharedWriter<W> {
    fn clone(&self) -> Self {
        SharedWriter {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<W: Write> SharedWriter<W> {
    /// Wraps `out` for line-atomic shared writing.
    pub fn new(out: W) -> Self {
        SharedWriter {
            inner: Arc::new(Mutex::new(out)),
        }
    }

    /// Writes `line` (which should end in `\n`) atomically and flushes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's error (e.g. a dead socket).
    pub fn write_line(&self, line: &[u8]) -> io::Result<()> {
        let mut out = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        out.write_all(line)?;
        out.flush()
    }

    /// Convenience for string lines.
    ///
    /// # Errors
    ///
    /// As [`SharedWriter::write_line`].
    pub fn send(&self, line: &str) -> io::Result<()> {
        self.write_line(line.as_bytes())
    }
}

/// An `io::Write` adapter that buffers bytes until a complete line and
/// forwards each line to a [`SharedWriter`], tagging JSON object lines
/// with the owning job's id.
///
/// `JsonlSink` emits exactly one `{...}\n` object per record, so the
/// rewrite is a prefix splice: `{"kind":...` becomes
/// `{"job":"<id>","kind":...`. Non-object lines (defensive case) pass
/// through untagged.
pub struct TaggedLineWriter<W: Write> {
    out: SharedWriter<W>,
    /// Pre-rendered `{"job":"<escaped id>",` prefix.
    tag: Vec<u8>,
    pending: Vec<u8>,
    scratch: Vec<u8>,
}

impl<W: Write> TaggedLineWriter<W> {
    /// Tags every line with `job_id` and multiplexes onto `out`.
    pub fn new(out: SharedWriter<W>, job_id: &str) -> Self {
        let mut tag = Vec::with_capacity(job_id.len() + 16);
        tag.extend_from_slice(b"{\"job\":");
        tag.extend_from_slice(
            cfaopc_eval::Json::Str(job_id.to_string())
                .to_string_compact()
                .as_bytes(),
        );
        tag.extend_from_slice(b",");
        TaggedLineWriter {
            out,
            tag,
            pending: Vec::with_capacity(256),
            scratch: Vec::with_capacity(256),
        }
    }
}

impl<W: Write> Write for TaggedLineWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.pending.extend_from_slice(buf);
        while let Some(nl) = self.pending.iter().position(|&b| b == b'\n') {
            self.scratch.clear();
            {
                let line = &self.pending[..=nl];
                if line.first() == Some(&b'{') && line.len() > 2 {
                    self.scratch.extend_from_slice(&self.tag);
                    self.scratch.extend_from_slice(&line[1..]);
                } else {
                    self.scratch.extend_from_slice(line);
                }
            }
            self.pending.drain(..=nl);
            self.out.write_line(&self.scratch)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Lines are forwarded (and flushed) eagerly as they complete;
        // a partial line stays buffered until its newline arrives.
        Ok(())
    }
}

/// The [`TelemetrySink`] a streaming job runs under: records flow
/// through a hardened `JsonlSink` onto the client socket, and a latched
/// write error cancels the job — mid-run teardown via the same token
/// path a client `cancel` uses.
pub struct StreamSink<W: Write> {
    jsonl: JsonlSink<TaggedLineWriter<W>>,
    cancel: CancelToken,
}

impl<W: Write> StreamSink<W> {
    /// Streams records for job `job_id` to `out`; flips `cancel` when
    /// the client stops accepting them.
    pub fn new(out: SharedWriter<W>, job_id: &str, cancel: CancelToken) -> Self {
        StreamSink {
            jsonl: JsonlSink::new(TaggedLineWriter::new(out, job_id)),
            cancel,
        }
    }

    /// Whether the underlying socket has failed (and the job's token
    /// has therefore been cancelled).
    pub fn client_gone(&self) -> bool {
        self.jsonl.write_error().is_some()
    }
}

impl<W: Write> TelemetrySink for StreamSink<W> {
    fn record(&mut self, rec: &IterationRecord) {
        self.jsonl.record(rec);
        if self.jsonl.write_error().is_some() {
            self.cancel.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_eval::Json;
    use cfaopc_trace::Stage;

    fn rec(iteration: usize) -> IterationRecord {
        IterationRecord {
            stage: Stage::CircleOpt,
            iteration,
            loss_l2: 1.0,
            loss_pvb: 2.0,
            loss_total: 3.0,
            sparsity: 0.0,
            active: 5,
            grad_l2: 0.5,
            grad_linf: 0.25,
        }
    }

    /// Shared sink capturing everything written, for assertions.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap_or_else(|e| e.into_inner()).clone()).unwrap()
        }
    }

    #[test]
    fn records_are_tagged_with_the_job_id() {
        let cap = Capture::default();
        let writer = SharedWriter::new(cap.clone());
        let mut sink = StreamSink::new(writer, "job-1", CancelToken::new());
        sink.record(&rec(0));
        sink.record(&rec(1));
        let text = cap.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let parsed = Json::parse(line).expect("tagged line stays valid JSON");
            assert_eq!(parsed.get("job").and_then(Json::as_str), Some("job-1"));
            assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("iter"));
            assert_eq!(parsed.get("iteration").and_then(Json::as_usize), Some(i));
        }
    }

    #[test]
    fn evil_job_ids_stay_valid_json() {
        let cap = Capture::default();
        let writer = SharedWriter::new(cap.clone());
        let mut sink = StreamSink::new(writer, "a\"b\\c", CancelToken::new());
        sink.record(&rec(0));
        let text = cap.text();
        let parsed = Json::parse(text.trim()).unwrap();
        assert_eq!(parsed.get("job").and_then(Json::as_str), Some("a\"b\\c"));
    }

    #[test]
    fn dead_writer_cancels_the_token() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let token = CancelToken::new();
        let mut sink = StreamSink::new(SharedWriter::new(Dead), "j", token.clone());
        assert!(!token.is_cancelled());
        sink.record(&rec(0));
        assert!(token.is_cancelled(), "write failure must cancel the job");
        assert!(sink.client_gone());
        // Further records are dropped by the latch, not retried.
        sink.record(&rec(1));
        assert!(sink.client_gone());
    }

    #[test]
    fn interleaved_writers_emit_whole_lines() {
        let cap = Capture::default();
        let writer = SharedWriter::new(cap.clone());
        let mut a = TaggedLineWriter::new(writer.clone(), "a");
        let mut b = TaggedLineWriter::new(writer, "b");
        // Partial writes: neither side forwards until its newline lands.
        a.write_all(b"{\"x\":1").unwrap();
        b.write_all(b"{\"x\":2}\n").unwrap();
        a.write_all(b"}\n").unwrap();
        let text = cap.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "{\"job\":\"b\",\"x\":2}");
        assert_eq!(lines[1], "{\"job\":\"a\",\"x\":1}");
    }
}
