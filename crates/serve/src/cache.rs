//! Shared simulator cache: one [`LithoSimulator`] per optical setup.
//!
//! Building a simulator is the expensive part of a job — SOCS kernel
//! generation and FFT plan construction dwarf a small tile's optimizer
//! loop. The daemon therefore builds each `(size, kernel_count)` setup
//! once and hands every job an `Arc` to it. This is the ownership
//! refactor the service needs: the simulator is `&self`-based and
//! `Sync`, and its scratch comes from internal buffer pools whose
//! buffers are fully overwritten before use, so any number of
//! concurrently-running jobs can share one instance without perturbing
//! each other's results.

use cfaopc_litho::{LithoConfig, LithoError, LithoSimulator};
use std::sync::{Arc, Mutex};

/// Cache key: `(size, kernel_count)` — the two knobs that change the
/// optical setup.
type SetupKey = (usize, usize);

/// Keyed store of shared simulators. A `Vec` keyed by [`SetupKey`] —
/// lookup is a scan over a handful of optical setups, and iteration
/// order stays deterministic.
#[derive(Default)]
pub struct SimulatorCache {
    entries: Mutex<Vec<(SetupKey, Arc<LithoSimulator>)>>,
}

impl SimulatorCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared simulator for `(size, kernel_count)`, building it on
    /// first use.
    ///
    /// Construction happens *outside* the cache lock so a slow build
    /// (large grid) never blocks jobs running other setups; if two
    /// threads race to build the same key, the loser's instance is
    /// dropped and both get the winner's (both are deterministic
    /// functions of the config, so which one wins is unobservable).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError`] when the configuration is invalid (bad
    /// grid size, kernel count out of range).
    pub fn get(&self, size: usize, kernel_count: usize) -> Result<Arc<LithoSimulator>, LithoError> {
        let key = (size, kernel_count);
        {
            let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((_, sim)) = entries.iter().find(|(k, _)| *k == key) {
                return Ok(Arc::clone(sim));
            }
        }
        let built = Arc::new(LithoSimulator::new(LithoConfig {
            size,
            kernel_count,
            ..LithoConfig::default()
        })?);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, sim)) = entries.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(sim));
        }
        entries.push((key, Arc::clone(&built)));
        Ok(built)
    }

    /// Number of distinct optical setups built so far.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no simulator has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_the_same_instance() {
        let cache = SimulatorCache::new();
        let a = cache.get(64, 6).unwrap();
        let b = cache.get(64, 6).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache must share, not rebuild");
        assert_eq!(cache.len(), 1);
        let c = cache.get(64, 4).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalid_configs_error_and_cache_nothing() {
        let cache = SimulatorCache::new();
        assert!(cache.get(63, 6).is_err(), "non-power-of-two grid");
        assert!(cache.is_empty());
    }
}
