//! End-to-end daemon tests over real loopback sockets.
//!
//! One umbrella test pins `CFAOPC_THREADS=4` before the first pool
//! consult (each integration-test file is its own process, so this is
//! safe) and then drives several daemon instances through the full
//! lifecycle: concurrent-vs-serial byte identity, mid-run cancellation,
//! client disconnect, the numerical-health abort path, backpressure,
//! timeouts and graceful shutdown.

use cfaopc_eval::Json;
use cfaopc_serve::{ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A line-oriented test client.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("set read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send line");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn next_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read line");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        line
    }

    /// Reads lines (skipping non-matching ones, e.g. streamed `iter`
    /// records) until `pred` matches; returns the raw line.
    fn wait_for(&mut self, what: &str, pred: impl Fn(&Json) -> bool) -> String {
        for _ in 0..100_000 {
            let line = self.next_line();
            let json = Json::parse(line.trim()).unwrap_or_else(|e| {
                panic!("daemon emitted invalid JSON {line:?}: {e}");
            });
            if pred(&json) {
                return line;
            }
        }
        panic!("gave up waiting for {what}");
    }

    fn wait_for_kind_id(&mut self, kind: &str, id: &str) -> String {
        self.wait_for(&format!("{kind}/{id}"), |j| {
            j.get("kind").and_then(Json::as_str) == Some(kind)
                && j.get("id").and_then(Json::as_str) == Some(id)
        })
    }
}

fn submit_small(id: &str, source: &str) -> String {
    format!(
        "{{\"cmd\":\"submit\",\"id\":\"{id}\",{source},\"size\":64,\"kernels\":4,\"init_iters\":2,\"iters\":3}}"
    )
}

/// A job that cannot finish on its own within the test: tiny grid, huge
/// iteration budget. Streaming, so the test can observe it running.
fn submit_long(id: &str, extra: &str) -> String {
    format!(
        "{{\"cmd\":\"submit\",\"id\":\"{id}\",\"seed\":11,\"size\":64,\"kernels\":4,\"init_iters\":2,\"iters\":100000,\"stream\":true{extra}}}"
    )
}

fn reason_of(line: &str) -> String {
    Json::parse(line.trim())
        .expect("valid JSON")
        .get("reason")
        .and_then(Json::as_str)
        .expect("cancelled line carries a reason")
        .to_string()
}

#[test]
fn daemon_lifecycle_under_forced_pool() {
    // One process-wide pool for every daemon below; latched before the
    // first worker_count() consult inside Server::bind.
    std::env::set_var("CFAOPC_THREADS", "4");

    let jobs: [(&str, &str); 3] = [
        ("j-bench1", "\"case\":1"),
        ("j-seed7", "\"seed\":7"),
        ("j-bench4", "\"case\":4"),
    ];

    // --- serial reference: one runner, jobs submitted one at a time ---
    let serial = Server::spawn(ServeConfig {
        runners: 1,
        ..ServeConfig::default()
    })
    .expect("spawn serial daemon");
    let mut reference = Vec::new();
    {
        let mut client = Client::connect(serial.addr());
        client.send("{\"cmd\":\"ping\"}");
        client.wait_for("pong", |j| {
            j.get("kind").and_then(Json::as_str) == Some("pong")
        });
        for (id, source) in &jobs {
            client.send(&submit_small(id, source));
            client.wait_for_kind_id("ack", id);
            reference.push((id.to_string(), client.wait_for_kind_id("result", id)));
        }
        shutdown_and_join(client, serial);
    }

    // --- concurrent: four runners, all jobs in flight at once ---------
    let concurrent = Server::spawn(ServeConfig {
        runners: 4,
        ..ServeConfig::default()
    })
    .expect("spawn concurrent daemon");
    {
        let mut client = Client::connect(concurrent.addr());
        for (id, source) in &jobs {
            client.send(&submit_small(id, source));
        }
        // Results complete in any order; collect all three, then match.
        let mut results: Vec<(String, String)> = Vec::new();
        while results.len() < jobs.len() {
            let line = client.wait_for("a result", |j| {
                j.get("kind").and_then(Json::as_str) == Some("result")
            });
            let id = Json::parse(line.trim())
                .expect("result JSON")
                .get("id")
                .and_then(Json::as_str)
                .expect("result id")
                .to_string();
            results.push((id, line));
        }
        for (id, _) in &jobs {
            let got = &results
                .iter()
                .find(|(rid, _)| rid == id)
                .expect("concurrent result")
                .1;
            let expected = &reference
                .iter()
                .find(|(rid, _)| rid == id)
                .expect("reference result")
                .1;
            assert_eq!(
                got, expected,
                "concurrent result for {id} must be byte-identical to serial"
            );
        }
        // The shared-simulator cache should hold exactly one setup.
        client.send("{\"cmd\":\"status\"}");
        let status = client.wait_for("status", |j| {
            j.get("kind").and_then(Json::as_str) == Some("status")
        });
        let parsed = Json::parse(status.trim()).expect("status JSON");
        assert_eq!(parsed.get("cached_sims").and_then(Json::as_usize), Some(1));
        assert_eq!(parsed.get("done").and_then(Json::as_usize), Some(3));
        shutdown_and_join(client, concurrent);
    }

    // --- interactive daemon: cancel, disconnect, NonFinite, timeout ---
    let main = Server::spawn(ServeConfig {
        runners: 2,
        ..ServeConfig::default()
    })
    .expect("spawn main daemon");
    let mut client = Client::connect(main.addr());

    // Mid-run cancel: watch two streamed iterations, then cancel.
    client.send(&submit_long("long-cancel", ""));
    client.wait_for_kind_id("ack", "long-cancel");
    for _ in 0..2 {
        client.wait_for("streamed iter", |j| {
            j.get("job").and_then(Json::as_str) == Some("long-cancel")
                && j.get("kind").and_then(Json::as_str) == Some("iter")
        });
    }
    client.send("{\"cmd\":\"cancel\",\"id\":\"long-cancel\"}");
    let line = client.wait_for_kind_id("cancelled", "long-cancel");
    assert_eq!(reason_of(&line), "cancel");

    // The daemon keeps serving after a cancel.
    client.send(&submit_small("after-cancel", "\"case\":2"));
    client.wait_for_kind_id("result", "after-cancel");

    // Client disconnect: a second connection starts a streaming job and
    // vanishes; the latched socket error cancels the job and the daemon
    // keeps serving.
    {
        let mut doomed = Client::connect(main.addr());
        doomed.send(&submit_long("long-disconnect", ""));
        doomed.wait_for("first streamed iter", |j| {
            j.get("job").and_then(Json::as_str) == Some("long-disconnect")
                && j.get("kind").and_then(Json::as_str) == Some("iter")
        });
        // Drop both halves of the socket: reads EOF server-side, writes
        // start failing once the peer is gone.
    }
    // Poll status until the orphaned job has torn down.
    let mut settled = false;
    for _ in 0..600 {
        client.send("{\"cmd\":\"status\"}");
        let status = client.wait_for("status", |j| {
            j.get("kind").and_then(Json::as_str) == Some("status")
        });
        let parsed = Json::parse(status.trim()).expect("status JSON");
        if parsed.get("running").and_then(Json::as_usize) == Some(0)
            && parsed.get("queued").and_then(Json::as_usize) == Some(0)
        {
            settled = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(settled, "disconnected client's job must tear down");
    client.send(&submit_small("after-disconnect", "\"case\":3"));
    client.wait_for_kind_id("result", "after-disconnect");

    // Numerical-health abort: an infinite loss weight trips the
    // NonFinite guard; the daemon reports `failed` and stays up.
    client.send(&submit_small(
        "non-finite",
        "\"seed\":5,\"weight_l2\":1e999",
    ));
    let line = client.wait_for_kind_id("failed", "non-finite");
    assert!(
        line.contains("non-finite"),
        "failed line should carry the typed error: {line}"
    );
    client.send(&submit_small("after-nonfinite", "\"case\":5"));
    client.wait_for_kind_id("result", "after-nonfinite");

    // Request timeout: the watchdog cancels an overrunning job.
    client.send(&submit_long("long-timeout", ",\"timeout_ms\":200"));
    let line = client.wait_for_kind_id("cancelled", "long-timeout");
    assert_eq!(reason_of(&line), "timeout");

    // Unknown-id cancels are an error, not a crash.
    client.send("{\"cmd\":\"cancel\",\"id\":\"no-such-job\"}");
    client.wait_for("unknown-id error", |j| {
        j.get("kind").and_then(Json::as_str) == Some("error")
    });

    // Graceful shutdown with a job still running: it is cancelled with
    // reason "shutdown" and the daemon thread exits cleanly.
    client.send(&submit_long("long-shutdown", ""));
    client.wait_for("streamed iter", |j| {
        j.get("job").and_then(Json::as_str) == Some("long-shutdown")
            && j.get("kind").and_then(Json::as_str) == Some("iter")
    });
    client.send("{\"cmd\":\"shutdown\"}");
    client.wait_for("shutdown ack", |j| {
        j.get("kind").and_then(Json::as_str) == Some("shutting_down")
    });
    let line = client.wait_for_kind_id("cancelled", "long-shutdown");
    assert_eq!(reason_of(&line), "shutdown");
    main.join().expect("daemon exits cleanly");

    // --- backpressure: capacity-1 queue rejects the overflow ----------
    let tight = Server::spawn(ServeConfig {
        queue_capacity: 1,
        runners: 1,
        ..ServeConfig::default()
    })
    .expect("spawn tight daemon");
    let mut client = Client::connect(tight.addr());
    client.send(&submit_long("occupant", ""));
    client.wait_for("streamed iter", |j| {
        j.get("job").and_then(Json::as_str) == Some("occupant")
            && j.get("kind").and_then(Json::as_str) == Some("iter")
    });
    client.send(&submit_small("waiter", "\"case\":6"));
    client.wait_for_kind_id("ack", "waiter");
    client.send(&submit_small("overflow", "\"case\":7"));
    let line = client.wait_for_kind_id("rejected", "overflow");
    assert!(line.contains("queue full"), "expected backpressure: {line}");
    // Duplicate ids of *active* jobs are rejected too.
    client.send(&submit_small("waiter", "\"case\":8"));
    let line = client.wait_for_kind_id("rejected", "waiter");
    assert!(line.contains("duplicate id"), "{line}");
    // Cancelling the queued job frees the slot before it ever ran.
    client.send("{\"cmd\":\"cancel\",\"id\":\"waiter\"}");
    let line = client.wait_for_kind_id("cancelled", "waiter");
    assert_eq!(reason_of(&line), "cancel");
    client.send("{\"cmd\":\"cancel\",\"id\":\"occupant\"}");
    client.wait_for_kind_id("cancelled", "occupant");
    shutdown_and_join(client, tight);
}

fn shutdown_and_join(mut client: Client, handle: ServerHandle) {
    client.send("{\"cmd\":\"shutdown\"}");
    client.wait_for("shutdown ack", |j| {
        j.get("kind").and_then(Json::as_str) == Some("shutting_down")
    });
    handle.join().expect("daemon exits cleanly");
}
