//! Adversarial-input and property tests for the lint lexer/analyzer.
//!
//! The analyzer reads every `.rs` file in the workspace, including ones
//! that are mid-edit or deliberately weird, so the one hard contract is:
//! never panic, on any input. The deterministic cases below pin the
//! classic lexer traps (raw strings containing keywords, nested block
//! comments, doc comments, string literals holding braces); the
//! proptest blocks then fuzz the same pipeline with arbitrary bytes and
//! with adversarial concatenations of Rust token fragments.

use cfaopc_lint::analyze::SourceFile;
use cfaopc_lint::lexer::{lex, TokKind};
use cfaopc_lint::manifest::Manifest;
use cfaopc_lint::rules::{run_all, Finding};
use proptest::prelude::*;

/// Runs the full per-file pipeline the way `cfaopc_lint::run` does.
fn findings(rel: &str, src: &str) -> Vec<Finding> {
    let file = SourceFile::analyze(rel, src);
    run_all(&file, &Manifest::default())
}

#[test]
fn raw_string_containing_unsafe_is_not_flagged() {
    let src = r##"
pub fn doc() -> &'static str {
    r#"unsafe { *ptr } // SAFETY: not real code"#
}
"##;
    assert!(findings("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn nested_block_comment_hides_code_from_every_rule() {
    let src = "/* outer /* unsafe { boom() } x.unwrap() */ still comment */\npub fn f() {}\n";
    assert!(findings("crates/x/src/lib.rs", src).is_empty());
    // The lexer must fold the whole nesting into one comment token.
    let toks = lex(src);
    assert!(matches!(toks[0].kind, TokKind::Comment { .. }));
    assert!(toks[0].text.contains("still comment"));
}

#[test]
fn doc_comment_mentioning_unwrap_is_not_flagged() {
    let src = "/// Panics: calls `.unwrap()` internally? No — see `unsafe` notes.\npub fn f() {}\n";
    assert!(findings("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn cfg_test_scope_survives_braces_inside_string_literals() {
    // Regression: `"{"`/`"}"` literals inside the test module must not
    // desynchronise brace matching and leak test code into L2's scope.
    let src = r#"
#[cfg(test)]
mod tests {
    fn g(x: Option<u8>) -> u8 {
        let open = "{";
        let close = "}";
        assert!(open != close);
        x.unwrap()
    }
}
"#;
    assert!(findings("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn safety_text_inside_a_string_does_not_satisfy_l1() {
    let src =
        "pub fn f(p: *const u8) -> u8 {\n    let _why = \"SAFETY: vibes\";\n    unsafe { *p }\n}\n";
    let got = findings("crates/x/src/lib.rs", src);
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].rule, "L1");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (lossily decoded, so including U+FFFD and every
    /// printable) never panic the lexer, and token line spans stay sane.
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let line_count = src.lines().count().max(1);
        for tok in lex(&src) {
            prop_assert!(tok.line >= 1);
            prop_assert!(tok.end_line >= tok.line);
            prop_assert!((tok.end_line as usize) <= line_count + 1);
        }
    }

    /// The whole analyze-and-lint pipeline never panics on arbitrary bytes.
    #[test]
    fn analyzer_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        for rel in ["crates/eval/src/lib.rs", "crates/x/src/lib.rs", "scratch.rs"] {
            let _ = findings(rel, &src);
        }
    }

    /// Adversarial soups of real Rust fragments — unterminated raw
    /// strings, half-open comments, stray quotes next to `unsafe` — never
    /// panic the pipeline. Fragments are concatenated WITHOUT separators
    /// so delimiters collide in ways hand-written tests would not.
    #[test]
    fn analyzer_is_total_on_token_fragment_soup(
        parts in proptest::collection::vec(prop_oneof![
            Just("unsafe"), Just("{"), Just("}"), Just("\""), Just("r#\""),
            Just("\"#"), Just("/*"), Just("*/"), Just("//"), Just("\n"),
            Just("#[cfg(test)]"), Just("mod tests"), Just("fn f()"),
            Just("'a"), Just("'a'"), Just(".unwrap()"), Just("panic!("),
            Just("SAFETY:"), Just("1.0"), Just("=="), Just("0..10"),
            Just("b\"x\""), Just("::<"), Just("ident"), Just("r#fn"),
            Just("/// doc"), Just("#"), Just("\\"),
            Just("c\"str\""), Just("c\""), Just("cr#\""), Just("cr\""),
            Just("use a::b as c;"), Just("impl T for U"), Just("-> ("),
        ], 0..64),
    ) {
        let src: String = parts.concat();
        let _ = findings("crates/eval/src/lib.rs", &src);
        let _ = lex(&src);
    }
}
