//! End-to-end tests of the `cfaopc-lint` binary against scratch
//! workspaces, covering the acceptance contract: seeding one violation
//! of each rule L1–L8 exits non-zero with a JSON finding naming file,
//! line and rule; the interprocedural L3 catches an allocation one call
//! removed from its seed; stale manifest entries exit 2 like a stale
//! baseline; and `--explain` / `--callgraph` expose the rule catalog and
//! the resolved graph.

use std::path::{Path, PathBuf};
use std::process::Command;

use cfaopc_lint::json::{self, Json};

const BIN: &str = env!("CARGO_BIN_EXE_cfaopc-lint");

/// Fresh scratch directory under cargo's per-target tmp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, text).unwrap();
}

fn run_lint(root: &Path, extra: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN)
        .current_dir(root)
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .unwrap();
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const HOTPATHS: &str = r#"
[[hotpath]]
file = "crates/litho/src/hot.rs"
functions = ["tight_loop"]

[determinism]
crates = ["eval"]

[telemetry]
exempt = ["trace"]
"#;

/// One violation of each rule, each in its own file so the JSON can be
/// checked finding-by-finding.
fn seed_violations(root: &Path) {
    write(root, "lint/hotpaths.toml", HOTPATHS);
    // L1: unsafe with no SAFETY comment (line 2).
    write(
        root,
        "crates/litho/src/lib.rs",
        "pub fn deref(p: *const u8) -> u8 {\n    unsafe { *p }\n}\npub mod hot;\n",
    );
    // L2: unwrap in non-test library code (line 2).
    write(
        root,
        "crates/litho/src/panicky.rs",
        "pub fn first(v: &[u8]) -> u8 {\n    *v.first().unwrap()\n}\n",
    );
    // L3: allocation inside a manifest-listed hot path (line 2).
    write(
        root,
        "crates/litho/src/hot.rs",
        "pub fn tight_loop(n: usize) -> Vec<u8> {\n    let out: Vec<u8> = Vec::new();\n    out\n}\n",
    );
    // L4: bare float == in a determinism crate (line 2).
    write(
        root,
        "crates/eval/src/lib.rs",
        "pub fn is_zero(a: f64) -> bool {\n    a == 0.0\n}\n",
    );
    // L5: ad-hoc static atomic counter outside cfaopc-trace (line 3).
    write(
        root,
        "crates/litho/src/counters.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\nstatic CALLS: AtomicU64 = AtomicU64::new(0);\npub fn bump() { CALLS.fetch_add(1, Ordering::Relaxed); }\n",
    );
}

fn parse_report(root: &Path, json_rel: &str) -> Json {
    let text = std::fs::read_to_string(root.join(json_rel)).unwrap();
    json::parse(&text).unwrap()
}

#[test]
fn seeded_violations_of_every_rule_fail_with_json_findings() {
    let root = scratch("seeded");
    seed_violations(&root);
    let (code, stdout, stderr) = run_lint(&root, &["--check", "--json", "report.json"]);
    assert_eq!(code, 1, "stdout:\n{stdout}\nstderr:\n{stderr}");

    let report = parse_report(&root, "report.json");
    let findings = report.get("findings").and_then(Json::as_arr).unwrap();
    let expect = [
        ("L1", "crates/litho/src/lib.rs", 2),
        ("L2", "crates/litho/src/panicky.rs", 2),
        ("L3", "crates/litho/src/hot.rs", 2),
        ("L4", "crates/eval/src/lib.rs", 2),
        ("L5", "crates/litho/src/counters.rs", 3),
    ];
    for (rule, file, line) in expect {
        let hit = findings.iter().any(|f| {
            f.get("rule").and_then(Json::as_str) == Some(rule)
                && f.get("file").and_then(Json::as_str) == Some(file)
                && f.get("line").and_then(Json::as_usize) == Some(line)
        });
        assert!(hit, "missing {rule} at {file}:{line} in:\n{stdout}");
    }
    let summary = report.get("summary").unwrap();
    assert_eq!(summary.get("exit_code").and_then(Json::as_usize), Some(1));
    assert!(summary.get("new").and_then(Json::as_usize).unwrap() >= 5);
}

#[test]
fn update_baseline_then_check_is_clean() {
    let root = scratch("baselined");
    seed_violations(&root);
    let (code, stdout, stderr) = run_lint(&root, &["--update-baseline"]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(root.join("lint/baseline.json").is_file());

    let (code, stdout, _) = run_lint(&root, &["--check", "--json", "report.json"]);
    assert_eq!(code, 0, "stdout:\n{stdout}");
    let report = parse_report(&root, "report.json");
    let summary = report.get("summary").unwrap();
    assert_eq!(summary.get("new").and_then(Json::as_usize), Some(0));
    assert!(summary.get("baselined").and_then(Json::as_usize).unwrap() >= 5);

    // Baselined entries carry the placeholder justification until a
    // human rewrites it; the JSON must surface it for review.
    let findings = report.get("findings").and_then(Json::as_arr).unwrap();
    assert!(findings
        .iter()
        .all(|f| f.get("baselined") == Some(&Json::Bool(true))));
}

#[test]
fn fixing_a_baselined_site_turns_the_entry_stale() {
    let root = scratch("stale");
    seed_violations(&root);
    let (code, _, _) = run_lint(&root, &["--update-baseline"]);
    assert_eq!(code, 0);

    // Fix the L2 site; its baseline entry now matches nothing.
    write(
        root.as_path(),
        "crates/litho/src/panicky.rs",
        "pub fn first(v: &[u8]) -> Option<u8> {\n    v.first().copied()\n}\n",
    );
    let (code, stdout, _) = run_lint(&root, &["--check", "--json", "report.json"]);
    assert_eq!(code, 2, "stdout:\n{stdout}");
    let report = parse_report(&root, "report.json");
    let stale = report.get("stale_baseline").and_then(Json::as_arr).unwrap();
    assert_eq!(stale.len(), 1);
    assert_eq!(
        stale[0].get("file").and_then(Json::as_str),
        Some("crates/litho/src/panicky.rs")
    );
    assert!(stdout.contains("stale baseline entry"));
}

#[test]
fn clean_workspace_exits_zero_without_manifest_or_baseline() {
    let root = scratch("clean");
    write(
        root.as_path(),
        "crates/litho/src/lib.rs",
        "/// Nothing objectionable.\npub fn id(x: u8) -> u8 {\n    x\n}\n",
    );
    let (code, stdout, stderr) = run_lint(&root, &["--check"]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
}

#[test]
fn interprocedural_l3_flags_helper_one_call_removed_from_the_seed() {
    let root = scratch("interproc");
    write(
        &root,
        "lint/hotpaths.toml",
        "[[hotpath]]\nfile = \"crates/litho/src/hot.rs\"\nfunctions = [\"tight_loop\"]\n",
    );
    write(
        &root,
        "crates/litho/src/hot.rs",
        "pub fn tight_loop(xs: &mut [u8]) {\n    normalize(xs);\n}\n",
    );
    write(
        &root,
        "crates/litho/src/helpers.rs",
        "pub fn normalize(xs: &mut [u8]) {\n    let scratch = xs.to_vec();\n    drop(scratch);\n}\n",
    );
    let (code, stdout, _) = run_lint(&root, &["--check", "--json", "report.json"]);
    assert_eq!(code, 1, "stdout:\n{stdout}");
    let report = parse_report(&root, "report.json");
    let findings = report.get("findings").and_then(Json::as_arr).unwrap();
    let hit = findings
        .iter()
        .find(|f| {
            f.get("rule").and_then(Json::as_str) == Some("L3")
                && f.get("file").and_then(Json::as_str) == Some("crates/litho/src/helpers.rs")
                && f.get("line").and_then(Json::as_usize) == Some(2)
        })
        .unwrap_or_else(|| panic!("no interprocedural L3 finding in:\n{stdout}"));
    let message = hit.get("message").and_then(Json::as_str).unwrap();
    assert!(message.contains("reachable from hot-path fn `tight_loop`"));
    assert!(message.contains("tight_loop -> normalize"));
}

#[test]
fn stale_manifest_entry_exits_two() {
    let root = scratch("stale-manifest");
    write(
        &root,
        "lint/hotpaths.toml",
        "[[hotpath]]\nfile = \"crates/litho/src/hot.rs\"\nfunctions = [\"renamed_away\"]\n",
    );
    write(&root, "crates/litho/src/hot.rs", "pub fn tight_loop() {}\n");
    let (code, stdout, _) = run_lint(&root, &["--check", "--json", "report.json"]);
    assert_eq!(code, 2, "stdout:\n{stdout}");
    assert!(stdout.contains("stale manifest entry"));
    assert!(stdout.contains("renamed_away"));
    let report = parse_report(&root, "report.json");
    let stale = report.get("stale_manifest").and_then(Json::as_arr).unwrap();
    assert_eq!(stale.len(), 1);
    assert_eq!(
        stale[0].get("section").and_then(Json::as_str),
        Some("hotpath")
    );
    assert_eq!(
        stale[0].get("function").and_then(Json::as_str),
        Some("renamed_away")
    );
    let summary = report.get("summary").unwrap();
    assert_eq!(summary.get("exit_code").and_then(Json::as_usize), Some(2));
}

const GRAPH_HOTPATHS: &str = r#"
[[panic_entry]]
file = "crates/serve/src/server.rs"
functions = ["runner_loop"]

[locks]
crates = ["serve"]

[determinism]
crates = ["eval"]
"#;

/// One violation of each graph rule L6/L7/L8, each in its own file.
fn seed_graph_violations(root: &Path) {
    write(root, "lint/hotpaths.toml", GRAPH_HOTPATHS);
    // L6: panic two calls below the runner entry (worker.rs line 5).
    write(
        root,
        "crates/serve/src/server.rs",
        "pub fn runner_loop(jobs: &[u8]) {\n    for j in jobs {\n        step(*j);\n    }\n}\n",
    );
    write(
        root,
        "crates/serve/src/worker.rs",
        "pub fn step(j: u8) {\n    check(j);\n}\nfn check(j: u8) {\n    if j > 7 { panic!(\"bad job\") }\n}\n",
    );
    // L7: blocking write while a mutex guard is live (stream.rs line 3).
    write(
        root,
        "crates/serve/src/stream.rs",
        "pub fn send_line(s: &Shared, line: &[u8]) {\n    let mut out = s.inner.lock().unwrap_or_else(|e| e.into_inner());\n    let _ = out.write_all(line);\n}\n",
    );
    // L8: `+=` inside a parallel primitive's closure (sums.rs line 4).
    write(
        root,
        "crates/eval/src/sums.rs",
        "pub fn total(xs: &[f64]) -> f64 {\n    let mut sum = 0.0;\n    par_index_claim(xs.len(), |i| {\n        sum += xs[i];\n    });\n    sum\n}\n",
    );
}

#[test]
fn seeded_graph_rule_violations_fail_with_json_findings() {
    let root = scratch("graph-seeded");
    seed_graph_violations(&root);
    let (code, stdout, stderr) = run_lint(&root, &["--check", "--json", "report.json"]);
    assert_eq!(code, 1, "stdout:\n{stdout}\nstderr:\n{stderr}");

    let report = parse_report(&root, "report.json");
    let findings = report.get("findings").and_then(Json::as_arr).unwrap();
    let expect = [
        ("L6", "crates/serve/src/worker.rs", 5),
        ("L7", "crates/serve/src/stream.rs", 3),
        ("L8", "crates/eval/src/sums.rs", 4),
    ];
    for (rule, file, line) in expect {
        let hit = findings.iter().any(|f| {
            f.get("rule").and_then(Json::as_str) == Some(rule)
                && f.get("file").and_then(Json::as_str) == Some(file)
                && f.get("line").and_then(Json::as_usize) == Some(line)
        });
        assert!(hit, "missing {rule} at {file}:{line} in:\n{stdout}");
    }
    // The L6 message names the whole chain from the runner entry.
    let l6 = findings
        .iter()
        .find(|f| f.get("rule").and_then(Json::as_str) == Some("L6"))
        .unwrap();
    let message = l6.get("message").and_then(Json::as_str).unwrap();
    assert!(
        message.contains("runner_loop -> step -> check"),
        "{message}"
    );
    // The report embeds the full rule catalog.
    let rules = report.get("rules").and_then(Json::as_arr).unwrap();
    assert_eq!(rules.len(), 8);
}

#[test]
fn explain_prints_the_catalog_entry() {
    let root = scratch("explain");
    let (code, stdout, _) = run_lint(&root, &["--explain", "L6"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("panic-reachable-from-runner"));
    assert!(stdout.contains("fix:"));

    // Slug lookup works too, case-insensitively.
    let (code, stdout, _) = run_lint(&root, &["--explain", "Hotpath-Allocation"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("L3"));

    let (code, _, stderr) = run_lint(&root, &["--explain", "L99"]);
    assert_eq!(code, 3);
    assert!(stderr.contains("unknown rule"));
}

#[test]
fn callgraph_export_names_nodes_and_edges() {
    let root = scratch("graph-export");
    seed_graph_violations(&root);
    let (code, _, _) = run_lint(&root, &["--check", "--callgraph", "graph.json"]);
    assert_eq!(code, 1);
    let graph = parse_report(&root, "graph.json");
    let nodes = graph.get("nodes").and_then(Json::as_arr).unwrap();
    let idx_of = |name: &str| {
        nodes
            .iter()
            .position(|n| n.get("fn").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no node {name}"))
    };
    let (runner, step) = (idx_of("runner_loop"), idx_of("step"));
    let edges = graph.get("edges").and_then(Json::as_arr).unwrap();
    let has_edge = edges.iter().any(|e| {
        let pair = e.as_arr().unwrap();
        pair[0].as_usize() == Some(runner) && pair[1].as_usize() == Some(step)
    });
    assert!(has_edge, "runner_loop -> step edge missing");
}

#[test]
fn self_check_on_the_lint_crate_is_clean() {
    let own = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (code, stdout, stderr) = run_lint(own, &["--check"]);
    assert_eq!(
        code, 0,
        "the linter must pass its own rules\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}

#[test]
fn unreadable_manifest_is_an_internal_error() {
    let root = scratch("broken-manifest");
    write(
        root.as_path(),
        "lint/hotpaths.toml",
        "[[hotpath]]\nnonsense\n",
    );
    write(root.as_path(), "src/lib.rs", "pub fn f() {}\n");
    let (code, _, stderr) = run_lint(&root, &["--check"]);
    assert_eq!(code, 3, "stderr:\n{stderr}");
    assert!(!stderr.is_empty());
}
