//! Parser for `lint/hotpaths.toml` — the checked-in manifest that names
//! the allocation-free hot-path functions (rule L3) and the crates under
//! the determinism (L4) and telemetry (L5) contracts.
//!
//! Only the TOML subset the manifest actually uses is supported: comments,
//! `[[hotpath]]` array-of-tables, plain `[section]` tables, and
//! `key = "string"` / `key = ["a", "b"]` assignments (single- or
//! multi-line arrays). Anything else is a hard error so a typo in the
//! manifest fails loudly instead of silently disabling a rule.

/// One `[[hotpath]]` entry: a file and the functions within it whose
/// bodies may not allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotpath {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// Function names inside that file.
    pub functions: Vec<String>,
}

/// One `[[panic_entry]]` entry: a file and the runner entry-point fns
/// from which rule L6 computes panic reachability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicEntry {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// Entry-point function names inside that file.
    pub functions: Vec<String>,
}

/// The parsed manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// All `[[hotpath]]` entries in file order.
    pub hotpaths: Vec<Hotpath>,
    /// All `[[panic_entry]]` entries in file order (rule L6 seeds).
    pub panic_entries: Vec<PanicEntry>,
    /// Crate names (directory names under `crates/`) whose `src/` trees
    /// are subject to the determinism rule L4.
    pub determinism_crates: Vec<String>,
    /// Crate names exempt from the telemetry rule L5 (the tracing crate
    /// itself implements the gated counters).
    pub telemetry_exempt: Vec<String>,
    /// Crate names whose `src/` trees are subject to the lock-discipline
    /// rule L7.
    pub lock_crates: Vec<String>,
    /// Function names exempt from rule L8 because they implement the
    /// ordered-reduction pattern themselves (turnstiles, ascending
    /// reductions).
    pub ordered_functions: Vec<String>,
}

/// A manifest parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line in the manifest file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hotpaths.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ManifestError {}

fn fail(line: u32, message: impl Into<String>) -> ManifestError {
    ManifestError {
        line,
        message: message.into(),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Hotpath,
    PanicEntry,
    Determinism,
    Telemetry,
    Locks,
    Ordered,
}

/// Parses the manifest text.
pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
    let mut manifest = Manifest::default();
    let mut section = Section::None;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[hotpath]]" {
            section = Section::Hotpath;
            manifest.hotpaths.push(Hotpath {
                file: String::new(),
                functions: Vec::new(),
            });
            continue;
        }
        if line == "[[panic_entry]]" {
            section = Section::PanicEntry;
            manifest.panic_entries.push(PanicEntry {
                file: String::new(),
                functions: Vec::new(),
            });
            continue;
        }
        if line.starts_with("[[") {
            return Err(fail(lineno, format!("unknown array-of-tables {line}")));
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = match name.trim() {
                "determinism" => Section::Determinism,
                "telemetry" => Section::Telemetry,
                "locks" => Section::Locks,
                "ordered" => Section::Ordered,
                other => return Err(fail(lineno, format!("unknown section [{other}]"))),
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(fail(lineno, "expected `key = value`"));
        };
        let key = key.trim();
        let mut value = value.trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets balance.
        while value.starts_with('[') && !value.ends_with(']') {
            let Some((_, next)) = lines.next() else {
                return Err(fail(lineno, "unterminated array"));
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        match (section, key) {
            (Section::Hotpath, "file") => {
                let Some(entry) = manifest.hotpaths.last_mut() else {
                    return Err(fail(lineno, "file= outside [[hotpath]]"));
                };
                entry.file = parse_string(&value, lineno)?;
            }
            (Section::Hotpath, "functions") => {
                let Some(entry) = manifest.hotpaths.last_mut() else {
                    return Err(fail(lineno, "functions= outside [[hotpath]]"));
                };
                entry.functions = parse_string_array(&value, lineno)?;
            }
            (Section::PanicEntry, "file") => {
                let Some(entry) = manifest.panic_entries.last_mut() else {
                    return Err(fail(lineno, "file= outside [[panic_entry]]"));
                };
                entry.file = parse_string(&value, lineno)?;
            }
            (Section::PanicEntry, "functions") => {
                let Some(entry) = manifest.panic_entries.last_mut() else {
                    return Err(fail(lineno, "functions= outside [[panic_entry]]"));
                };
                entry.functions = parse_string_array(&value, lineno)?;
            }
            (Section::Determinism, "crates") => {
                manifest.determinism_crates = parse_string_array(&value, lineno)?;
            }
            (Section::Telemetry, "exempt") => {
                manifest.telemetry_exempt = parse_string_array(&value, lineno)?;
            }
            (Section::Locks, "crates") => {
                manifest.lock_crates = parse_string_array(&value, lineno)?;
            }
            (Section::Ordered, "functions") => {
                manifest.ordered_functions = parse_string_array(&value, lineno)?;
            }
            _ => return Err(fail(lineno, format!("unexpected key `{key}` here"))),
        }
    }
    for (i, entry) in manifest.hotpaths.iter().enumerate() {
        if entry.file.is_empty() {
            return Err(fail(0, format!("[[hotpath]] entry {} has no file=", i + 1)));
        }
        if entry.functions.is_empty() {
            return Err(fail(
                0,
                format!("[[hotpath]] {} has no functions=", entry.file),
            ));
        }
    }
    for (i, entry) in manifest.panic_entries.iter().enumerate() {
        if entry.file.is_empty() {
            return Err(fail(
                0,
                format!("[[panic_entry]] entry {} has no file=", i + 1),
            ));
        }
        if entry.functions.is_empty() {
            return Err(fail(
                0,
                format!("[[panic_entry]] {} has no functions=", entry.file),
            ));
        }
    }
    Ok(manifest)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: u32) -> Result<String, ManifestError> {
    let value = value.trim();
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|v| v.to_string())
        .ok_or_else(|| fail(line, format!("expected a quoted string, got `{value}`")))
}

fn parse_string_array(value: &str, line: u32) -> Result<Vec<String>, ManifestError> {
    let value = value.trim();
    let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) else {
        return Err(fail(line, format!("expected an array, got `{value}`")));
    };
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_manifest() {
        let text = r##"
# Hot paths guarded by the allocation lint.
[[hotpath]]
file = "crates/core/src/compose.rs"
functions = ["render_max", "backward_max_into"]

[[hotpath]]
file = "crates/fft/src/fft1d.rs"   # trailing comment
functions = [
    "dispatch",
]

[determinism]
crates = ["eval", "metrics"]

[telemetry]
exempt = ["trace"]
"##;
        let m = parse(text).expect("manifest parses");
        assert_eq!(m.hotpaths.len(), 2);
        assert_eq!(m.hotpaths[0].file, "crates/core/src/compose.rs");
        assert_eq!(
            m.hotpaths[0].functions,
            vec!["render_max", "backward_max_into"]
        );
        assert_eq!(m.hotpaths[1].functions, vec!["dispatch"]);
        assert_eq!(m.determinism_crates, vec!["eval", "metrics"]);
        assert_eq!(m.telemetry_exempt, vec!["trace"]);
    }

    #[test]
    fn parses_graph_rule_sections() {
        let text = r##"
[[panic_entry]]
file = "crates/serve/src/server.rs"
functions = ["runner_loop", "handle_connection"]

[locks]
crates = ["serve"]

[ordered]
functions = ["accumulate_intensity"]
"##;
        let m = parse(text).expect("manifest parses");
        assert_eq!(m.panic_entries.len(), 1);
        assert_eq!(m.panic_entries[0].file, "crates/serve/src/server.rs");
        assert_eq!(
            m.panic_entries[0].functions,
            vec!["runner_loop", "handle_connection"]
        );
        assert_eq!(m.lock_crates, vec!["serve"]);
        assert_eq!(m.ordered_functions, vec!["accumulate_intensity"]);
    }

    #[test]
    fn rejects_incomplete_panic_entry() {
        assert!(parse("[[panic_entry]]\nfile = \"a.rs\"\n").is_err());
        assert!(parse("[[panic_entry]]\nfunctions = [\"f\"]\n").is_err());
        assert!(parse("[locks]\nexempt = [\"x\"]\n").is_err());
    }

    #[test]
    fn rejects_unknown_section_and_key() {
        assert!(parse("[mystery]\n").is_err());
        assert!(parse("[[hotpath]]\nnope = \"x\"\n").is_err());
        assert!(parse("file = \"orphan.rs\"\n").is_err());
    }

    #[test]
    fn rejects_incomplete_hotpath() {
        assert!(parse("[[hotpath]]\nfile = \"a.rs\"\n").is_err());
        assert!(parse("[[hotpath]]\nfunctions = [\"f\"]\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let m = parse("[[hotpath]]\nfile = \"a#b.rs\"\nfunctions = [\"f\"]\n").expect("parses");
        assert_eq!(m.hotpaths[0].file, "a#b.rs");
    }
}
