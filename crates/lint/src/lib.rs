//! `cfaopc-lint` — a zero-dependency static analyzer for the cfaopc
//! workspace.
//!
//! The repo's core guarantees (bit-identical serial/parallel composition,
//! allocation-free steady-state iterations, byte-identical `RESULTS.json`
//! across thread counts, a panic-free library surface) are contracts that
//! runtime tests can only sample. This crate checks their *lexical
//! footprint* on every `.rs` file at CI time:
//!
//! * **L1** `unsafe` without an adjacent `// SAFETY:` comment
//! * **L2** `unwrap`/`expect`/`panic!`-family in non-test library code
//! * **L3** allocation anywhere in the call-graph closure of the fns
//!   named by `lint/hotpaths.toml`
//! * **L4** hash collections / bare float `==` in determinism crates
//! * **L5** ad-hoc atomic counters bypassing `cfaopc-trace`
//! * **L6** panic sites reachable from `[[panic_entry]]` runner fns
//! * **L7** lock-order and held-guard-I/O discipline in `[locks]` crates
//! * **L8** `+=` accumulation inside unordered parallel primitives
//!
//! The graph rules run over a workspace-wide call graph built by a
//! zero-dependency item [`parser`] on top of the total [`lexer`]
//! (resolution policy in [`callgraph`]). Accepted legacy findings live in
//! `lint/baseline.json` with one-line justifications; manifest entries
//! naming fns that no longer exist are *stale drift* and map to exit
//! code 2, like stale baseline entries. See DESIGN.md ("Static
//! analysis") for the rule catalog and baseline policy.

pub mod analyze;
pub mod baseline;
pub mod callgraph;
pub mod json;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod rules;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use baseline::{Baseline, Outcome};
use json::Json;

/// Exit codes of the `cfaopc-lint` binary. Distinct codes let CI and
/// scripts distinguish "fix your code" from "prune the baseline" from
/// "the linter itself broke".
pub const EXIT_CLEAN: i32 = 0;
/// At least one finding is not covered by the baseline.
pub const EXIT_NEW_FINDINGS: i32 = 1;
/// The baseline or the manifest lists sites/fns that no longer exist
/// (prune the baseline, or fix `lint/hotpaths.toml`).
pub const EXIT_STALE_BASELINE: i32 = 2;
/// I/O, manifest or baseline parse failure.
pub const EXIT_INTERNAL: i32 = 3;

/// Anything that stops the analyzer from producing a verdict.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem failure on a specific path.
    Io(PathBuf, std::io::Error),
    /// `lint/hotpaths.toml` failed to parse.
    Manifest(manifest::ManifestError),
    /// `lint/baseline.json` failed to parse.
    Baseline(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(path, err) => write!(f, "{}: {err}", path.display()),
            LintError::Manifest(err) => write!(f, "{err}"),
            LintError::Baseline(msg) => write!(f, "baseline.json: {msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// How a run is configured; paths are workspace-root-relative by default.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Path to the hot-path manifest; `None` uses `<root>/lint/hotpaths.toml`
    /// and tolerates its absence (L3/L4/L5 scopes become empty).
    pub hotpaths: Option<PathBuf>,
    /// Path to the baseline; `None` uses `<root>/lint/baseline.json` and
    /// tolerates its absence (empty baseline).
    pub baseline: Option<PathBuf>,
}

/// The result of one analyzer run.
pub struct Report {
    /// Findings annotated with baseline status, plus stale entries.
    pub outcome: Outcome,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// The raw findings before baseline matching (for `--update-baseline`).
    pub raw_findings: Vec<rules::Finding>,
    /// The baseline that was applied.
    pub baseline: Baseline,
    /// Manifest entries naming fns that no longer exist (exit code 2).
    pub stale_manifest: Vec<rules::StaleManifest>,
    /// The workspace call graph, for `--callgraph` export / CI artifact.
    pub callgraph: Json,
}

impl Report {
    /// The process exit code this report warrants. New findings dominate
    /// staleness: fix the code first, then prune the metadata.
    pub fn exit_code(&self) -> i32 {
        if self.outcome.new_count > 0 {
            EXIT_NEW_FINDINGS
        } else if !self.outcome.stale.is_empty() || !self.stale_manifest.is_empty() {
            EXIT_STALE_BASELINE
        } else {
            EXIT_CLEAN
        }
    }

    /// Machine-readable report, mirroring the eval crate's ordered-JSON
    /// conventions (stable key order, trailing newline).
    pub fn to_json(&self) -> Json {
        let findings = self
            .outcome
            .findings
            .iter()
            .map(|a| {
                let mut fields = vec![
                    ("rule".to_string(), Json::Str(a.finding.rule.to_string())),
                    ("name".to_string(), Json::Str(a.finding.name.to_string())),
                    ("file".to_string(), Json::Str(a.finding.file.clone())),
                    ("line".to_string(), Json::int(a.finding.line as usize)),
                    ("message".to_string(), Json::Str(a.finding.message.clone())),
                    ("snippet".to_string(), Json::Str(a.finding.snippet.clone())),
                    ("baselined".to_string(), Json::Bool(a.baselined)),
                ];
                if let Some(justification) = &a.justification {
                    fields.push((
                        "justification".to_string(),
                        Json::Str(justification.clone()),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        let stale = self
            .outcome
            .stale
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("rule".to_string(), Json::Str(s.rule.clone())),
                    ("file".to_string(), Json::Str(s.file.clone())),
                    ("snippet".to_string(), Json::Str(s.snippet.clone())),
                    ("expected".to_string(), Json::int(s.expected)),
                    ("actual".to_string(), Json::int(s.actual)),
                ])
            })
            .collect();
        let stale_manifest = self
            .stale_manifest
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("section".to_string(), Json::Str(s.section.to_string())),
                    ("file".to_string(), Json::Str(s.file.clone())),
                    ("function".to_string(), Json::Str(s.function.clone())),
                ])
            })
            .collect();
        let rules_catalog = rules::CATALOG
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("id".to_string(), Json::Str(r.id.to_string())),
                    ("name".to_string(), Json::Str(r.name.to_string())),
                    ("rationale".to_string(), Json::Str(r.rationale.to_string())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".to_string(), Json::int(2)),
            ("files_scanned".to_string(), Json::int(self.files_scanned)),
            ("rules".to_string(), Json::Arr(rules_catalog)),
            ("findings".to_string(), Json::Arr(findings)),
            ("stale_baseline".to_string(), Json::Arr(stale)),
            ("stale_manifest".to_string(), Json::Arr(stale_manifest)),
            (
                "summary".to_string(),
                Json::Obj(vec![
                    ("total".to_string(), Json::int(self.outcome.findings.len())),
                    ("new".to_string(), Json::int(self.outcome.new_count)),
                    (
                        "baselined".to_string(),
                        Json::int(self.outcome.baselined_count),
                    ),
                    ("stale".to_string(), Json::int(self.outcome.stale.len())),
                    (
                        "stale_manifest".to_string(),
                        Json::int(self.stale_manifest.len()),
                    ),
                    (
                        "exit_code".to_string(),
                        Json::int(self.exit_code() as usize),
                    ),
                ]),
            ),
        ])
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for a in &self.outcome.findings {
            if a.baselined {
                continue;
            }
            let _ = writeln!(
                out,
                "{}:{}: [{}] {} — {}",
                a.finding.file, a.finding.line, a.finding.rule, a.finding.name, a.finding.message
            );
            if !a.finding.snippet.is_empty() {
                let _ = writeln!(out, "    {}", a.finding.snippet);
            }
        }
        for s in &self.outcome.stale {
            let _ = writeln!(
                out,
                "stale baseline entry: [{}] {} `{}` (baselined {}, found {}) — run --update-baseline or prune lint/baseline.json",
                s.rule, s.file, s.snippet, s.expected, s.actual
            );
        }
        for s in &self.stale_manifest {
            let _ = writeln!(
                out,
                "stale manifest entry: [[{}]] {} names fn `{}` which no longer exists — update lint/hotpaths.toml",
                s.section, s.file, s.function
            );
        }
        let _ = writeln!(
            out,
            "cfaopc-lint: {} files, {} findings ({} new, {} baselined, {} stale baseline, {} stale manifest entries)",
            self.files_scanned,
            self.outcome.findings.len(),
            self.outcome.new_count,
            self.outcome.baselined_count,
            self.outcome.stale.len(),
            self.stale_manifest.len()
        );
        out
    }
}

/// Directories never scanned: third-party stubs, build output, VCS
/// metadata and hidden directories.
fn skip_dir(name: &str) -> bool {
    name == "vendor" || name == "target" || name.starts_with('.')
}

/// Collects every `.rs` file under `root`, sorted by relative path so the
/// report (and therefore the JSON artifact) is deterministic.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| LintError::Io(dir.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError::Io(dir.clone(), e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let file_type = entry
                .file_type()
                .map_err(|e| LintError::Io(path.clone(), e))?;
            if file_type.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs the full analysis and matches it against the baseline.
pub fn run(opts: &RunOptions) -> Result<Report, LintError> {
    let manifest_path = opts
        .hotpaths
        .clone()
        .unwrap_or_else(|| opts.root.join("lint/hotpaths.toml"));
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => manifest::parse(&text).map_err(LintError::Manifest)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && opts.hotpaths.is_none() => {
            manifest::Manifest::default()
        }
        Err(e) => return Err(LintError::Io(manifest_path, e)),
    };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint/baseline.json"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).map_err(LintError::Baseline)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && opts.baseline.is_none() => {
            Baseline::default()
        }
        Err(e) => return Err(LintError::Io(baseline_path, e)),
    };

    // Pass 1: analyze every file, so the call graph sees the whole
    // workspace before any rule runs.
    let files = collect_rs_files(&opts.root)?;
    let mut analyzed = Vec::with_capacity(files.len());
    for path in &files {
        let source = std::fs::read_to_string(path).map_err(|e| LintError::Io(path.clone(), e))?;
        let rel = rel_path(&opts.root, path);
        analyzed.push(analyze::SourceFile::analyze(&rel, &source));
    }
    // Pass 2: build the workspace call graph and run all rules over it.
    let ws = callgraph::Workspace::new(&analyzed);
    let graph = callgraph::CallGraph::build(&ws);
    let (mut findings, stale_manifest) = rules::run_workspace(&ws, &graph, &manifest);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    let callgraph_json = graph.to_json();
    let outcome = baseline.apply(findings.clone());
    Ok(Report {
        outcome,
        files_scanned: files.len(),
        raw_findings: findings,
        baseline,
        stale_manifest,
        callgraph: callgraph_json,
    })
}
