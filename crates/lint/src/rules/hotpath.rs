//! Rule L3 (interprocedural): the allocation-reachability closure.
//!
//! `lint/hotpaths.toml` names the seed fns; every workspace fn reachable
//! from a seed through the call graph inherits the allocation-free
//! contract, so an allocation hidden in a helper one (or five) calls away
//! from `render_max` is flagged exactly like one in `render_max` itself.
//! Seed entries whose file or fn no longer exists are reported as stale
//! manifest drift (exit code 2).

use crate::callgraph::{CallGraph, Workspace};
use crate::manifest::Manifest;
use crate::parser::FnItem;

use super::{allocation_hits, push, Finding, StaleManifest};

/// Token sub-ranges of fn `idx`'s body that belong to it alone — nested
/// `fn` items are excluded (they are graph nodes of their own, so scanning
/// them here would double-count their sites).
pub(crate) fn own_ranges(fns: &[FnItem], idx: usize) -> Vec<(usize, usize)> {
    let (open, close) = fns[idx].body;
    let mut children: Vec<(usize, usize)> = fns
        .iter()
        .enumerate()
        .filter(|(j, f)| *j != idx && f.body.0 > open && f.body.1 < close)
        .map(|(_, f)| f.body)
        .collect();
    children.sort_unstable();
    let mut tops: Vec<(usize, usize)> = Vec::new();
    for c in children {
        if tops.last().is_some_and(|t| c.1 <= t.1) {
            continue; // nested inside the previous child
        }
        tops.push(c);
    }
    let mut out = Vec::new();
    let mut cur = open;
    for (a, b) in tops {
        if a > cur {
            out.push((cur, a - 1));
        }
        cur = b + 1;
    }
    if cur <= close {
        out.push((cur, close));
    }
    out
}

/// Runs the rule over the workspace.
pub(crate) fn run(
    ws: &Workspace<'_>,
    graph: &CallGraph,
    manifest: &Manifest,
    findings: &mut Vec<Finding>,
    stale: &mut Vec<StaleManifest>,
) {
    let mut seeds = Vec::new();
    for entry in &manifest.hotpaths {
        for fname in &entry.functions {
            let found = graph.find(&entry.file, fname);
            if found.is_empty() {
                stale.push(StaleManifest {
                    section: "hotpath",
                    file: entry.file.clone(),
                    function: fname.clone(),
                });
            } else {
                seeds.extend(found);
            }
        }
    }
    let cl = graph.closure(&seeds);
    for (idx, node) in graph.nodes.iter().enumerate() {
        if !cl.reached[idx] || node.in_test_scope {
            continue;
        }
        let entry = &ws.files[node.file_idx];
        if !entry.source.role.library {
            continue;
        }
        let is_seed = cl.parent[idx].is_none();
        for range in own_ranges(&entry.parsed.fns, node.item_idx) {
            for (line, what) in allocation_hits(entry.source, range) {
                let message = if is_seed {
                    format!(
                        "`{what}` inside hot-path fn `{}` (allocation-free contract)",
                        node.name
                    )
                } else {
                    let seed = cl.seed_of[idx]
                        .map(|s| graph.nodes[s].name.as_str())
                        .unwrap_or("?");
                    format!(
                        "`{what}` in `{}`, reachable from hot-path fn `{seed}` via {} (allocation-free contract)",
                        node.name,
                        graph.chain(&cl, idx).join(" -> "),
                    )
                };
                push(
                    findings,
                    entry.source,
                    "L3",
                    "hotpath-allocation",
                    line,
                    message,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze::SourceFile;
    use crate::manifest;
    use crate::rules::run_all;

    #[test]
    fn flags_allocation_one_call_removed_from_a_seed() {
        let m = manifest::parse(
            "[[hotpath]]\nfile = \"crates/core/src/hot.rs\"\nfunctions = [\"hot\"]\n",
        )
        .expect("manifest");
        let src = "\
pub fn hot(xs: &[u8]) -> Vec<u8> { helper(xs) }
fn helper(xs: &[u8]) -> Vec<u8> { xs.to_vec() }
fn unrelated(xs: &[u8]) -> Vec<u8> { xs.to_vec() }
";
        let findings = run_all(&SourceFile::analyze("crates/core/src/hot.rs", src), &m);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "L3");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0]
            .message
            .contains("reachable from hot-path fn `hot`"));
        assert!(findings[0].message.contains("hot -> helper"));
    }

    #[test]
    fn recursion_terminates() {
        let m = manifest::parse(
            "[[hotpath]]\nfile = \"crates/core/src/hot.rs\"\nfunctions = [\"hot\"]\n",
        )
        .expect("manifest");
        let src = "\
pub fn hot(n: usize) { if n > 0 { hot(n - 1); ping(n); } }
fn ping(n: usize) { pong(n); }
fn pong(n: usize) { ping(n); let v = vec![n]; drop(v); }
";
        let findings = run_all(&SourceFile::analyze("crates/core/src/hot.rs", src), &m);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("hot -> ping -> pong"));
    }
}
