//! The contract rules. L1–L5 are pure functions from one analyzed
//! [`SourceFile`] (plus the manifest) to findings; L3 and the graph rules
//! L6–L8 additionally consume the workspace call graph (see the
//! submodules). `run_all` applies the full pipeline to a single file —
//! the whole-workspace entry point is [`run_workspace`].
//!
//! | rule | name                          | scope                                     |
//! |------|-------------------------------|-------------------------------------------|
//! | L1   | unsafe-without-safety-comment | every `.rs` file                          |
//! | L2   | panic-in-library              | library code outside test scope           |
//! | L3   | hotpath-allocation            | allocation-reachability closure of the    |
//! |      |                               | fns named in hotpaths.toml                |
//! | L4   | nondeterministic-construct    | library code of the determinism crates    |
//! | L5   | adhoc-telemetry               | library code outside `cfaopc-trace`       |
//! | L6   | panic-reachable-from-runner   | closure of the `[[panic_entry]]` fns      |
//! | L7   | lock-discipline               | library code of the `[locks]` crates      |
//! | L8   | unordered-parallel-merge      | parallel-primitive call sites in the      |
//! |      |                               | determinism crates                        |

pub mod hotpath;
pub mod locks;
pub mod merge;
pub mod panics;

use crate::analyze::{LineClass, SourceFile};
use crate::callgraph::{CallGraph, Workspace};
use crate::lexer::TokKind;
use crate::manifest::Manifest;

/// One rule violation at a specific site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id: "L1" … "L8".
    pub rule: &'static str,
    /// Stable rule slug, e.g. "unsafe-without-safety-comment".
    pub name: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed text of the offending line — the baseline key, so entries
    /// survive unrelated line drift.
    pub snippet: String,
}

/// A manifest entry naming a fn (or file) that no longer exists — silent
/// drift the run reports separately and maps to exit code 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleManifest {
    /// Manifest section: "hotpath" or "panic_entry".
    pub section: &'static str,
    /// The entry's file path.
    pub file: String,
    /// The fn name that was not found.
    pub function: String,
}

/// One entry in the shared rule table (JSON report + `--explain`).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id, "L1" … "L8".
    pub id: &'static str,
    /// Stable slug, matching [`Finding::name`].
    pub name: &'static str,
    /// Why the rule exists.
    pub rationale: &'static str,
    /// An example finding message.
    pub example: &'static str,
    /// How to fix (or justify) a finding.
    pub fix: &'static str,
}

/// The rule catalog, in rule order. `--explain <RULE>` prints from this
/// table and the JSON report embeds it, so the two can never drift.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        id: "L1",
        name: "unsafe-without-safety-comment",
        rationale: "Every `unsafe` block encodes a proof obligation; without an adjacent \
                    `// SAFETY:` comment the obligation is invisible to reviewers and decays.",
        example: "`unsafe` is not immediately preceded by a `// SAFETY:` comment",
        fix: "Add a `// SAFETY:` comment directly above the `unsafe` (attributes in between \
              are fine) stating the invariant that makes it sound.",
    },
    RuleInfo {
        id: "L2",
        name: "panic-in-library",
        rationale: "Library code panicking turns recoverable conditions into process aborts; \
                    the workspace contract is a panic-free library surface.",
        example: "`.unwrap()` in non-test library code; return a typed error or baseline with \
                  a justification",
        fix: "Return a typed error (or `unwrap_or_else(|e| e.into_inner())` for poisoned \
              locks); baseline only deliberate invariant checks, with a justification.",
    },
    RuleInfo {
        id: "L3",
        name: "hotpath-allocation",
        rationale: "Steady-state optimizer iterations must not allocate; hotpaths.toml names \
                    the seed fns and L3 flags allocations in every fn reachable from them \
                    through the call graph.",
        example: "`.collect()` in `take`, reachable from hot-path fn `loss_and_gradient_into` \
                  via loss_and_gradient_into -> take (allocation-free contract)",
        fix: "Hoist the allocation to setup and reuse pooled buffers; baseline deliberate \
              cold paths (pool refills, one-time setup) with a justification.",
    },
    RuleInfo {
        id: "L4",
        name: "nondeterministic-construct",
        rationale: "Crates feeding golden files must be byte-deterministic across thread \
                    counts; hash iteration order and exact float comparison both break that.",
        example: "`HashMap` in a determinism crate; use BTreeMap/BTreeSet or an ordered Vec",
        fix: "Use BTreeMap/BTreeSet or a sorted Vec; compare floats with an explicit \
              tolerance or bit pattern.",
    },
    RuleInfo {
        id: "L5",
        name: "adhoc-telemetry",
        rationale: "Telemetry counters must go through the gated cfaopc-trace API so disabled \
                    tracing stays zero-cost and counter placement stays auditable.",
        example: "ad-hoc atomic `.fetch_add()` outside cfaopc-trace; route counters through \
                  the gated trace API",
        fix: "Replace the raw atomic with a cfaopc-trace counter; only the exempt crates may \
              touch atomics directly.",
    },
    RuleInfo {
        id: "L6",
        name: "panic-reachable-from-runner",
        rationale: "A panic anywhere in the call closure of a cfaopc-serve runner entry point \
                    kills the runner thread and strands every queued job.",
        example: "`.expect(...)` in `spawn_worker` is reachable from runner entry `execute` \
                  via execute -> par_map -> spawn_worker; a panicking runner strands queued \
                  jobs",
        fix: "Convert the panic site to a typed error propagated to the runner's job-failure \
              path; baseline only sites whose failure is unrecoverable by construction.",
    },
    RuleInfo {
        id: "L7",
        name: "lock-discipline",
        rationale: "Nested `.lock()` acquisitions in inconsistent order deadlock under \
                    contention, and blocking I/O under a held guard stalls every thread \
                    waiting on that Mutex.",
        example: "blocking `.write_all(...)` while `self.inner` mutex guard is live; move \
                  the I/O outside the critical section",
        fix: "Acquire locks in one global order; copy data out and drop the guard before \
              blocking calls. Baseline deliberate cases (e.g. a writer lock held across one \
              line write for atomicity) with a justification.",
    },
    RuleInfo {
        id: "L8",
        name: "unordered-parallel-merge",
        rationale: "par_map/par_index_claim/par_chunks2_mut claim work in nondeterministic \
                    order; `+=` accumulation inside their closures makes float results \
                    depend on thread timing, breaking golden-file identity.",
        example: "`+=` accumulation inside a `par_index_claim` closure in a determinism \
                  crate; claim order is nondeterministic",
        fix: "Write per-index results and reduce serially in ascending order (or through the \
              ordered-turnstile helpers), or list the fn under `[ordered]` in hotpaths.toml \
              if it implements such a pattern itself.",
    },
];

/// Looks up a rule by id (`L3`) or slug (`hotpath-allocation`),
/// case-insensitively.
pub fn rule_info(query: &str) -> Option<&'static RuleInfo> {
    let q = query.trim().to_ascii_lowercase();
    CATALOG
        .iter()
        .find(|r| r.id.to_ascii_lowercase() == q || r.name.to_ascii_lowercase() == q)
}

/// Runs the full pipeline over one file as a single-file workspace: the
/// per-file rules plus the graph rules L3/L6/L7/L8, whose closures then
/// stay within the file. Stale-manifest entries are ignored here — a
/// single file can't see the rest of the workspace.
pub fn run_all(file: &SourceFile, manifest: &Manifest) -> Vec<Finding> {
    let sources = std::slice::from_ref(file);
    let ws = Workspace::new(sources);
    let graph = CallGraph::build(&ws);
    let (mut findings, _stale) = run_workspace(&ws, &graph, manifest);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

/// Runs every rule over an analyzed workspace. Returns the findings
/// (unsorted — the report layer sorts) and any stale manifest entries.
pub fn run_workspace(
    ws: &Workspace<'_>,
    graph: &CallGraph,
    manifest: &Manifest,
) -> (Vec<Finding>, Vec<StaleManifest>) {
    let mut findings = Vec::new();
    let mut stale = Vec::new();
    for entry in &ws.files {
        let file = entry.source;
        l1_unsafe_safety(file, &mut findings);
        l2_panic_surface(file, &mut findings);
        l4_determinism(file, manifest, &mut findings);
        l5_telemetry(file, manifest, &mut findings);
    }
    hotpath::run(ws, graph, manifest, &mut findings, &mut stale);
    panics::run(ws, graph, manifest, &mut findings, &mut stale);
    locks::run(ws, manifest, &mut findings);
    merge::run(ws, manifest, &mut findings);
    (findings, stale)
}

fn push(
    findings: &mut Vec<Finding>,
    file: &SourceFile,
    rule: &'static str,
    name: &'static str,
    line: u32,
    message: String,
) {
    findings.push(Finding {
        rule,
        name,
        file: file.rel.clone(),
        line,
        message,
        snippet: file.snippet(line),
    });
}

/// The previous non-comment token before index `i`.
fn prev_tok(file: &SourceFile, i: usize) -> Option<&crate::lexer::Tok> {
    file.toks[..i]
        .iter()
        .rev()
        .find(|t| !matches!(t.kind, TokKind::Comment { .. }))
}

/// The next non-comment token after index `i`.
fn next_tok(file: &SourceFile, i: usize) -> Option<&crate::lexer::Tok> {
    file.toks[i + 1..]
        .iter()
        .find(|t| !matches!(t.kind, TokKind::Comment { .. }))
}

/// Whether the identifier at `i` is used as a method call: preceded by
/// `.` and followed by `(` or a `::<…>` turbofish. The `.` requirement
/// keeps free functions that share a name (like eval's `expect`) clean.
fn is_method_call(file: &SourceFile, i: usize) -> bool {
    prev_tok(file, i).is_some_and(|t| t.is_punct("."))
        && next_tok(file, i).is_some_and(|t| t.is_punct("(") || t.is_punct("::"))
}

/// L1: every `unsafe` keyword must be immediately preceded by a comment
/// block containing `SAFETY:` (attribute lines in between are skipped; a
/// blank line breaks the association). Applies everywhere, tests included.
fn l1_unsafe_safety(file: &SourceFile, findings: &mut Vec<Finding>) {
    for tok in &file.toks {
        if !tok.is_ident("unsafe") {
            continue;
        }
        let line = tok.line;
        if has_safety_comment(file, line) {
            continue;
        }
        // Several `unsafe` tokens can share a line (e.g. chained
        // `unsafe { … }` expressions); one missing comment yields one
        // finding, so dedup by line.
        if findings
            .iter()
            .any(|f| f.rule == "L1" && f.file == file.rel && f.line == line)
        {
            continue;
        }
        push(
            findings,
            file,
            "L1",
            "unsafe-without-safety-comment",
            line,
            "`unsafe` is not immediately preceded by a `// SAFETY:` comment".to_string(),
        );
    }
}

fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    // Accept `SAFETY:` on the `unsafe` line itself (trailing or inline
    // block comment).
    if file.snippet(line).contains("SAFETY:") {
        return true;
    }
    // Walk upward: skip attribute lines, then require a contiguous
    // comment block and search it for `SAFETY:`.
    let mut l = line.saturating_sub(1);
    while l >= 1 && file.class_of(l) == LineClass::Attr {
        l -= 1;
    }
    if l == 0 || file.class_of(l) != LineClass::Comment {
        return false;
    }
    while l >= 1 && file.class_of(l) == LineClass::Comment {
        if file.snippet(l).contains("SAFETY:") {
            return true;
        }
        l -= 1;
    }
    false
}

/// L2: no `.unwrap()` / `.expect(…)` / `panic!` / `unreachable!` /
/// `todo!` / `unimplemented!` in non-test library code.
fn l2_panic_surface(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !file.role.library {
        return;
    }
    for (i, tok) in file.toks.iter().enumerate() {
        if file.in_test_scope[i] || tok.kind != TokKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            // Method calls only: a leading `.` distinguishes them from
            // free functions that happen to share the name.
            "unwrap" | "expect" if is_method_call(file, i) => {
                push(
                    findings,
                    file,
                    "L2",
                    "panic-in-library",
                    tok.line,
                    format!("`.{}()` in non-test library code; return a typed error or baseline with a justification", tok.text),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next_tok(file, i).is_some_and(|t| t.is_punct("!")) =>
            {
                push(
                    findings,
                    file,
                    "L2",
                    "panic-in-library",
                    tok.line,
                    format!("`{}!` in non-test library code; return a typed error or baseline with a justification", tok.text),
                );
            }
            _ => {}
        }
    }
}

/// Allocation sites inside a token range: `Vec::new` / `vec!` /
/// `.to_vec()` / `.collect()` / `.clone()` / `Box::new` and the
/// `with_capacity` variants. Shared by the interprocedural L3 in
/// [`hotpath`].
pub(crate) fn allocation_hits(file: &SourceFile, body: (usize, usize)) -> Vec<(u32, &'static str)> {
    let (open, close) = body;
    let mut hits = Vec::new();
    for i in open..=close.min(file.toks.len().saturating_sub(1)) {
        let tok = &file.toks[i];
        if tok.kind != TokKind::Ident {
            continue;
        }
        let hit: Option<&'static str> = match tok.text.as_str() {
            "Vec" | "Box" => {
                let path = next_tok(file, i).is_some_and(|t| t.is_punct("::"))
                    && file.toks[i + 1..]
                        .iter()
                        .filter(|t| !matches!(t.kind, TokKind::Comment { .. }))
                        .nth(1)
                        .is_some_and(|t| t.is_ident("new") || t.is_ident("with_capacity"));
                path.then(|| {
                    if tok.text == "Vec" {
                        "Vec::new"
                    } else {
                        "Box::new"
                    }
                })
            }
            "vec" => next_tok(file, i)
                .is_some_and(|t| t.is_punct("!"))
                .then_some("vec!"),
            "to_vec" | "collect" | "clone" => {
                is_method_call(file, i).then_some(match tok.text.as_str() {
                    "to_vec" => ".to_vec()",
                    "collect" => ".collect()",
                    _ => ".clone()",
                })
            }
            _ => None,
        };
        if let Some(what) = hit {
            hits.push((tok.line, what));
        }
    }
    hits
}

/// Panic sites inside a token range: `.unwrap()` / `.expect(…)` method
/// calls and the panic-family macros, skipping test-scope tokens. Shared
/// by the reachability rule L6 in [`panics`].
pub(crate) fn panic_sites(file: &SourceFile, body: (usize, usize)) -> Vec<(u32, String)> {
    let (open, close) = body;
    let mut sites = Vec::new();
    for i in open..=close.min(file.toks.len().saturating_sub(1)) {
        let tok = &file.toks[i];
        if file.in_test_scope.get(i).copied().unwrap_or(false) || tok.kind != TokKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "unwrap" | "expect" if is_method_call(file, i) => {
                sites.push((tok.line, format!(".{}(...)", tok.text)));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next_tok(file, i).is_some_and(|t| t.is_punct("!")) =>
            {
                sites.push((tok.line, format!("{}!", tok.text)));
            }
            _ => {}
        }
    }
    sites
}

/// L4: determinism crates may not use `HashMap`/`HashSet` (iteration
/// order feeds golden files) nor compare floats with bare `==`/`!=`.
fn l4_determinism(file: &SourceFile, manifest: &Manifest, findings: &mut Vec<Finding>) {
    if !file.role.library
        || !manifest
            .determinism_crates
            .iter()
            .any(|c| c == &file.role.crate_name)
    {
        return;
    }
    for (i, tok) in file.toks.iter().enumerate() {
        if file.in_test_scope[i] {
            continue;
        }
        if tok.kind == TokKind::Ident && (tok.text == "HashMap" || tok.text == "HashSet") {
            push(
                findings,
                file,
                "L4",
                "nondeterministic-construct",
                tok.line,
                format!(
                    "`{}` in a determinism crate; use BTreeMap/BTreeSet or an ordered Vec",
                    tok.text
                ),
            );
        }
        if tok.is_punct("==") || tok.is_punct("!=") {
            let float_operand = prev_tok(file, i).is_some_and(|t| t.kind == TokKind::Float)
                || next_tok(file, i).is_some_and(|t| t.kind == TokKind::Float);
            if float_operand {
                push(
                    findings,
                    file,
                    "L4",
                    "nondeterministic-construct",
                    tok.line,
                    format!("bare float `{}` comparison in a determinism crate; compare with an explicit tolerance or bit pattern", tok.text),
                );
            }
        }
    }
}

/// L5: telemetry must go through the gated `cfaopc-trace` entry points —
/// no ad-hoc `.fetch_add(…)`-style counters and no `static Atomic*`
/// declarations outside the exempt crates.
fn l5_telemetry(file: &SourceFile, manifest: &Manifest, findings: &mut Vec<Finding>) {
    if !file.role.library
        || manifest
            .telemetry_exempt
            .iter()
            .any(|c| c == &file.role.crate_name)
    {
        return;
    }
    for (i, tok) in file.toks.iter().enumerate() {
        if file.in_test_scope[i] || tok.kind != TokKind::Ident {
            continue;
        }
        if matches!(
            tok.text.as_str(),
            "fetch_add" | "fetch_sub" | "fetch_or" | "fetch_and"
        ) && is_method_call(file, i)
        {
            push(
                findings,
                file,
                "L5",
                "adhoc-telemetry",
                tok.line,
                format!("ad-hoc atomic `.{}()` outside cfaopc-trace; route counters through the gated trace API", tok.text),
            );
        }
        if tok.text.starts_with("Atomic") {
            // `static NAME: AtomicU64 = …` within the preceding few tokens.
            let recent: Vec<&crate::lexer::Tok> = file.toks[..i]
                .iter()
                .rev()
                .filter(|t| !matches!(t.kind, TokKind::Comment { .. }))
                .take(4)
                .collect();
            if recent.iter().any(|t| t.is_ident("static")) {
                push(
                    findings,
                    file,
                    "L5",
                    "adhoc-telemetry",
                    tok.line,
                    format!(
                        "`static {}` counter outside cfaopc-trace; use a gated trace counter",
                        tok.text
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        crate::manifest::parse(
            "[[hotpath]]\nfile = \"crates/core/src/hot.rs\"\nfunctions = [\"hot\"]\n\n[determinism]\ncrates = [\"eval\"]\n\n[telemetry]\nexempt = [\"trace\"]\n",
        )
        .expect("test manifest")
    }

    fn lint(rel: &str, src: &str) -> Vec<Finding> {
        run_all(&SourceFile::analyze(rel, src), &manifest())
    }

    #[test]
    fn l1_flags_uncommented_unsafe_and_accepts_safety() {
        let bad = lint("crates/x/src/a.rs", "fn f() { unsafe { g() } }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "L1");
        assert_eq!(bad[0].line, 1);

        let good = lint(
            "crates/x/src/a.rs",
            "fn f() {\n    // SAFETY: g upholds the contract.\n    unsafe { g() }\n}\n",
        );
        assert!(good.is_empty());
    }

    #[test]
    fn l1_skips_attributes_between_comment_and_unsafe() {
        let good = lint(
            "crates/x/src/a.rs",
            "// SAFETY: sound because reasons.\n#[inline]\nunsafe fn f() {}\n",
        );
        assert!(good.is_empty());
    }

    #[test]
    fn l1_not_fooled_by_strings_or_docs() {
        let src =
            "/// This fn is not `unsafe` at all.\nfn f() -> &'static str { \"unsafe { }\" }\n";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn l2_flags_library_unwrap_but_not_tests_or_bins() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(lint("crates/x/src/a.rs", src).len(), 1);
        assert!(lint("crates/x/tests/a.rs", src).is_empty());
        assert!(lint("crates/x/src/bin/tool.rs", src).is_empty());
        let test_scoped =
            "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert!(lint("crates/x/src/a.rs", test_scoped).is_empty());
    }

    #[test]
    fn l2_requires_method_position() {
        // A free function named `expect` (as in eval's JSON layer) is fine.
        let src = "fn expect(t: Tok) -> Tok { t }\nfn f(t: Tok) { expect(t); }\n";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn l2_flags_panic_macros() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { unreachable!(); }\nfn h() { todo!(); }\n";
        let findings = lint("crates/x/src/a.rs", src);
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.rule == "L2"));
    }

    #[test]
    fn l3_flags_allocation_in_named_hot_fn_only() {
        let src = "pub fn hot(xs: &[u8]) -> Vec<u8> { xs.to_vec() }\npub fn cold(xs: &[u8]) -> Vec<u8> { xs.to_vec() }\n";
        let findings = lint("crates/core/src/hot.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "L3");
        assert!(findings[0].message.contains("`hot`"));
    }

    #[test]
    fn l3_catches_each_allocator() {
        let src = "pub fn hot() {\n    let a = Vec::new();\n    let b = vec![0u8];\n    let c = b.clone();\n    let d: Vec<u8> = c.iter().copied().collect();\n    let e = Box::new(d);\n    drop((a, e));\n}\n";
        let findings = lint("crates/core/src/hot.rs", src);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["L3"; 5]);
    }

    #[test]
    fn l4_flags_hash_collections_and_float_eq_in_determinism_crates() {
        let src = "use std::collections::HashMap;\nfn f(x: f64) -> bool { x == 0.5 }\n";
        let findings = lint("crates/eval/src/a.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == "L4"));
        // Same code outside a determinism crate is fine.
        assert!(lint("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn l4_ignores_integer_comparisons() {
        let src = "fn f(x: usize) -> bool { x == 5 }\n";
        assert!(lint("crates/eval/src/a.rs", src).is_empty());
    }

    #[test]
    fn l5_flags_adhoc_atomics_outside_trace() {
        let src = "static HITS: AtomicU64 = AtomicU64::new(0);\nfn f() { HITS.fetch_add(1, Ordering::Relaxed); }\n";
        let findings = lint("crates/core/src/a.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == "L5"));
        // The trace crate itself is exempt.
        assert!(lint("crates/trace/src/a.rs", src).is_empty());
    }

    #[test]
    fn l5_allows_non_static_atomic_fields() {
        let src = "struct Pool { next: AtomicUsize }\nfn f(p: &Pool) -> usize { p.next.load(Ordering::Relaxed) }\n";
        assert!(lint("crates/core/src/a.rs", src).is_empty());
    }
}
