//! Rule L7: lock discipline in the `[locks]` crates.
//!
//! A lexical guard-liveness scan per fn body: a `let g = x.lock(…)…;`
//! binding is live until its enclosing block closes (or `drop(g)`);
//! an unbound `x.lock(…)` temporary dies at the end of its statement.
//! While any guard is live, the rule flags
//!
//! * a nested `.lock()` on the *same* receiver (self-deadlock),
//! * a nested `.lock()` whose (outer, inner) receiver order also occurs
//!   reversed anywhere in the scoped crates (inconsistent order ⇒
//!   deadlock under contention), and
//! * blocking I/O calls (`write_all`, `flush`, `accept`, `connect`,
//!   `sleep`, …) made while the guard is held.
//!
//! Receivers are compared textually (`self.inner`, `state.registry`);
//! `Condvar::wait` is deliberately not a blocking call — it releases the
//! lock while parked.

use crate::analyze::SourceFile;
use crate::callgraph::Workspace;
use crate::lexer::TokKind;
use crate::manifest::Manifest;
use crate::parser::FnItem;

use super::hotpath::own_ranges;
use super::{push, Finding};

/// Method (and `sleep`) names treated as blocking while a guard is live.
const BLOCKING: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "join",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "send",
    "sleep",
    "write_all",
    "write_fmt",
    "write_line",
];

#[derive(Debug)]
struct Guard {
    /// Binding name for `let g = …` guards; `None` for temporaries.
    name: Option<String>,
    /// Textual receiver of the `.lock()` call.
    recv: String,
    /// Brace depth at acquisition (temporaries die at `;` on this depth;
    /// named guards when the depth drops below it).
    depth: i32,
}

/// One nested acquisition: `inner.lock()` while an `outer` guard is live.
#[derive(Debug)]
struct NestedPair {
    outer: String,
    inner: String,
    file: String,
    line: u32,
}

/// Runs the rule over the workspace.
pub(crate) fn run(ws: &Workspace<'_>, manifest: &Manifest, findings: &mut Vec<Finding>) {
    let mut pairs: Vec<NestedPair> = Vec::new();
    for entry in &ws.files {
        let file = entry.source;
        if !file.role.library
            || !manifest
                .lock_crates
                .iter()
                .any(|c| c == &file.role.crate_name)
        {
            continue;
        }
        for (idx, item) in entry.parsed.fns.iter().enumerate() {
            if item.in_test_scope {
                continue;
            }
            scan_fn(file, &entry.parsed.fns, idx, findings, &mut pairs);
        }
    }
    // Second pass: inconsistent acquisition order across the whole scope.
    for p in &pairs {
        if p.outer == p.inner {
            continue; // flagged immediately as self-deadlock
        }
        if let Some(op) = pairs
            .iter()
            .find(|q| q.outer == p.inner && q.inner == p.outer)
        {
            findings.push(Finding {
                rule: "L7",
                name: "lock-discipline",
                file: p.file.clone(),
                line: p.line,
                message: format!(
                    "nested `.lock()`: `{}` acquired while `{}` guard is live, but the opposite order occurs at {}:{}; acquire locks in one global order",
                    p.inner, p.outer, op.file, op.line
                ),
                snippet: snippet_of(ws, &p.file, p.line),
            });
        }
    }
}

fn snippet_of(ws: &Workspace<'_>, rel: &str, line: u32) -> String {
    ws.file(rel)
        .map(|e| e.source.snippet(line))
        .unwrap_or_default()
}

/// Previous non-comment token index before `i`.
fn prev_idx(file: &SourceFile, i: usize) -> Option<usize> {
    (0..i)
        .rev()
        .find(|&j| !matches!(file.toks[j].kind, TokKind::Comment { .. }))
}

/// Next non-comment token index after `i`.
fn next_idx(file: &SourceFile, i: usize) -> Option<usize> {
    (i + 1..file.toks.len()).find(|&j| !matches!(file.toks[j].kind, TokKind::Comment { .. }))
}

/// The textual receiver chain ending at the `.` before token `dot`:
/// `state.registry.lock()` → `state.registry`. Unrecognizable receivers
/// (call results, indexing) collapse to `<expr>`.
fn receiver_chain(file: &SourceFile, dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut expect_name = true;
    let mut j = dot;
    while let Some(p) = prev_idx(file, j) {
        let t = &file.toks[p];
        if expect_name {
            if t.kind == TokKind::Ident {
                parts.push(t.text.clone());
                expect_name = false;
                j = p;
                continue;
            }
            break;
        }
        if t.is_punct(".") || t.is_punct("::") {
            expect_name = true;
            j = p;
            continue;
        }
        break;
    }
    if parts.is_empty() {
        return "<expr>".to_string();
    }
    parts.reverse();
    parts.join(".")
}

/// The `let` binding name for the statement containing token `i`, if the
/// statement is a `let` (scanning back, bounded by `;`/`{`/`}`).
fn let_binding(file: &SourceFile, i: usize) -> Option<String> {
    let mut j = i;
    while let Some(p) = prev_idx(file, j) {
        let t = &file.toks[p];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return None;
        }
        if t.is_ident("let") {
            let mut n = next_idx(file, p)?;
            if file.toks[n].is_ident("mut") {
                n = next_idx(file, n)?;
            }
            let name = &file.toks[n];
            return (name.kind == TokKind::Ident).then(|| name.text.clone());
        }
        j = p;
    }
    None
}

fn scan_fn(
    file: &SourceFile,
    fns: &[FnItem],
    idx: usize,
    findings: &mut Vec<Finding>,
    pairs: &mut Vec<NestedPair>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    for (a, b) in own_ranges(fns, idx) {
        for i in a..=b.min(file.toks.len().saturating_sub(1)) {
            let tok = &file.toks[i];
            if tok.is_punct("{") {
                depth += 1;
                continue;
            }
            if tok.is_punct("}") {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                continue;
            }
            if tok.is_punct(";") {
                guards.retain(|g| g.name.is_some() || g.depth < depth);
                continue;
            }
            if tok.kind != TokKind::Ident {
                continue;
            }
            // `drop(g)` / `mem::drop(g)` releases a named guard early.
            if tok.text == "drop" {
                if let Some(o) = next_idx(file, i).filter(|&o| file.toks[o].is_punct("(")) {
                    if let Some(n) = next_idx(file, o) {
                        if file.toks[n].kind == TokKind::Ident
                            && next_idx(file, n).is_some_and(|c| file.toks[c].is_punct(")"))
                        {
                            let name = file.toks[n].text.clone();
                            guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                        }
                    }
                }
                continue;
            }
            let is_method = prev_idx(file, i).is_some_and(|p| file.toks[p].is_punct("."));
            let has_args = next_idx(file, i).is_some_and(|n| file.toks[n].is_punct("("));
            if tok.text == "lock" && is_method && has_args {
                let dot = prev_idx(file, i).unwrap_or(i);
                let recv = receiver_chain(file, dot);
                for g in &guards {
                    if g.recv == recv {
                        push(
                            findings,
                            file,
                            "L7",
                            "lock-discipline",
                            tok.line,
                            format!(
                                "nested `.lock()` on `{recv}` while its own guard is live — self-deadlock"
                            ),
                        );
                    } else {
                        pairs.push(NestedPair {
                            outer: g.recv.clone(),
                            inner: recv.clone(),
                            file: file.rel.clone(),
                            line: tok.line,
                        });
                    }
                }
                guards.push(Guard {
                    name: let_binding(file, i),
                    recv,
                    depth,
                });
                continue;
            }
            if BLOCKING.contains(&tok.text.as_str())
                && has_args
                && (is_method || tok.text == "sleep")
            {
                if let Some(g) = guards.last() {
                    push(
                        findings,
                        file,
                        "L7",
                        "lock-discipline",
                        tok.line,
                        format!(
                            "blocking `{}{}(...)` while `{}` mutex guard is live; move the I/O outside the critical section",
                            if is_method { "." } else { "" },
                            tok.text,
                            g.recv
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze::SourceFile;
    use crate::manifest;
    use crate::rules::run_all;
    use crate::rules::Finding;

    fn lint(src: &str) -> Vec<Finding> {
        let m = manifest::parse("[locks]\ncrates = [\"serve\"]\n").expect("manifest");
        run_all(&SourceFile::analyze("crates/serve/src/x.rs", src), &m)
            .into_iter()
            .filter(|f| f.rule == "L7")
            .collect()
    }

    #[test]
    fn scoped_guard_then_io_is_clean() {
        let src = "\
fn f(s: &S) {
    let line = {
        let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.front().cloned()
    };
    s.out.write_all(b\"x\");
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn blocking_io_under_live_guard_is_flagged() {
        let src = "\
fn f(s: &S) {
    let mut w = s.inner.lock().unwrap_or_else(|e| e.into_inner());
    w.write_all(b\"x\");
    w.flush();
}
";
        let found = lint(src);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].line, 3);
        assert_eq!(found[1].line, 4);
        assert!(found[0].message.contains("`.write_all(...)`"));
        assert!(found[1].message.contains("`.flush(...)`"));
        assert!(found[0].message.contains("`s.inner` mutex guard is live"));
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "\
fn f(s: &S) {
    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
    drop(q);
    s.sock.write_all(b\"x\");
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn inconsistent_nesting_order_is_flagged_both_ways() {
        let src = "\
fn ab(s: &S) {
    let a = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let b = s.beta.lock().unwrap_or_else(|e| e.into_inner());
}
fn ba(s: &S) {
    let b = s.beta.lock().unwrap_or_else(|e| e.into_inner());
    let a = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
}
";
        let found = lint(src);
        assert_eq!(found.len(), 2);
        assert!(found
            .iter()
            .all(|f| f.message.contains("opposite order occurs at")));
        assert_eq!(found[0].line.min(found[1].line), 3);
    }

    #[test]
    fn consistent_nesting_order_is_clean() {
        let src = "\
fn ab(s: &S) {
    let a = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let b = s.beta.lock().unwrap_or_else(|e| e.into_inner());
}
fn also_ab(s: &S) {
    let a = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let b = s.beta.lock().unwrap_or_else(|e| e.into_inner());
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn relocking_the_same_receiver_is_a_self_deadlock() {
        let src = "\
fn f(s: &S) {
    let a = s.state.lock().unwrap_or_else(|e| e.into_inner());
    let b = s.state.lock().unwrap_or_else(|e| e.into_inner());
}
";
        let found = lint(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("self-deadlock"));
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let m = manifest::parse("[locks]\ncrates = [\"serve\"]\n").expect("manifest");
        let src = "\
fn f(s: &S) {
    let w = s.inner.lock().unwrap_or_else(|e| e.into_inner());
    w.write_all(b\"x\");
}
";
        let found = run_all(&SourceFile::analyze("crates/fft/src/x.rs", src), &m);
        assert!(found.iter().all(|f| f.rule != "L7"));
    }
}
