//! Rule L6: panic reachability from daemon runner entry points.
//!
//! `[[panic_entry]]` in the manifest names the `cfaopc-serve` fns that run
//! on runner/acceptor threads. Any library fn reachable from them whose
//! body can hit `.unwrap()` / `.expect(…)` / `panic!`-family macros is
//! flagged: a panic there unwinds the runner thread and strands every
//! queued job. Entries naming fns that no longer exist are stale manifest
//! drift (exit code 2).

use crate::callgraph::{CallGraph, Workspace};
use crate::manifest::Manifest;

use super::hotpath::own_ranges;
use super::{panic_sites, push, Finding, StaleManifest};

/// Runs the rule over the workspace.
pub(crate) fn run(
    ws: &Workspace<'_>,
    graph: &CallGraph,
    manifest: &Manifest,
    findings: &mut Vec<Finding>,
    stale: &mut Vec<StaleManifest>,
) {
    let mut seeds = Vec::new();
    for entry in &manifest.panic_entries {
        for fname in &entry.functions {
            let found = graph.find(&entry.file, fname);
            if found.is_empty() {
                stale.push(StaleManifest {
                    section: "panic_entry",
                    file: entry.file.clone(),
                    function: fname.clone(),
                });
            } else {
                seeds.extend(found);
            }
        }
    }
    if seeds.is_empty() {
        return;
    }
    let cl = graph.closure(&seeds);
    for (idx, node) in graph.nodes.iter().enumerate() {
        if !cl.reached[idx] || node.in_test_scope {
            continue;
        }
        let entry = &ws.files[node.file_idx];
        if !entry.source.role.library {
            continue;
        }
        let seed = cl.seed_of[idx]
            .map(|s| graph.nodes[s].name.as_str())
            .unwrap_or("?");
        for range in own_ranges(&entry.parsed.fns, node.item_idx) {
            for (line, site) in panic_sites(entry.source, range) {
                push(
                    findings,
                    entry.source,
                    "L6",
                    "panic-reachable-from-runner",
                    line,
                    format!(
                        "`{site}` in `{}` is reachable from runner entry `{seed}` via {}; a panicking runner strands queued jobs — return a typed error",
                        node.name,
                        graph.chain(&cl, idx).join(" -> "),
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze::SourceFile;
    use crate::manifest;
    use crate::rules::run_all;

    fn m() -> manifest::Manifest {
        manifest::parse(
            "[[panic_entry]]\nfile = \"crates/serve/src/server.rs\"\nfunctions = [\"runner_loop\"]\n",
        )
        .expect("manifest")
    }

    #[test]
    fn flags_transitive_panic_sites_once_per_site() {
        let src = "\
pub fn runner_loop() { step(); step(); }
fn step() { deep(); }
fn deep(x: Option<u8>) -> u8 { x.unwrap() }
fn unreached(x: Option<u8>) -> u8 { x.unwrap() }
";
        let findings: Vec<_> = run_all(
            &SourceFile::analyze("crates/serve/src/server.rs", src),
            &m(),
        )
        .into_iter()
        .filter(|f| f.rule == "L6")
        .collect();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
        assert!(findings[0]
            .message
            .contains("runner entry `runner_loop` via runner_loop -> step -> deep"));
    }

    #[test]
    fn test_scope_panics_are_exempt() {
        let src = "\
pub fn runner_loop() { helper(); }
fn helper() {}
#[cfg(test)]
mod tests {
    fn t() { helper(); None::<u8>.unwrap(); }
}
";
        let findings: Vec<_> = run_all(
            &SourceFile::analyze("crates/serve/src/server.rs", src),
            &m(),
        )
        .into_iter()
        .filter(|f| f.rule == "L6")
        .collect();
        assert!(findings.is_empty());
    }
}
