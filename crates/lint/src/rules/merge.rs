//! Rule L8: unordered parallel merge in the determinism crates.
//!
//! `par_map` / `par_index_claim` / `par_chunks2_mut` hand work items to
//! threads in claim order, which varies run to run. A `+=` accumulation
//! inside the argument list of such a call folds float results in that
//! nondeterministic order, so the sum's rounding depends on thread timing
//! and golden-file identity breaks. The fix is to write per-index results
//! and reduce serially in ascending order; fns that implement an ordered
//! reduction themselves (turnstiles, ascending merges) are exempted via
//! the manifest's `[ordered]` section.

use crate::callgraph::Workspace;
use crate::lexer::TokKind;
use crate::manifest::Manifest;

use super::{push, Finding};

/// Parallel primitives whose work-claim order is nondeterministic.
const PRIMITIVES: &[&str] = &["par_chunks2_mut", "par_index_claim", "par_map"];

/// Runs the rule over the workspace.
pub(crate) fn run(ws: &Workspace<'_>, manifest: &Manifest, findings: &mut Vec<Finding>) {
    for entry in &ws.files {
        let file = entry.source;
        if !file.role.library
            || !manifest
                .determinism_crates
                .iter()
                .any(|c| c == &file.role.crate_name)
        {
            continue;
        }
        for item in &entry.parsed.fns {
            if item.in_test_scope || manifest.ordered_functions.iter().any(|f| f == &item.name) {
                continue;
            }
            for call in &item.calls {
                let Some(prim) = call.path.last().map(String::as_str) else {
                    continue;
                };
                if !PRIMITIVES.contains(&prim) {
                    continue;
                }
                for line in plus_eq_lines(file, call.tok) {
                    push(
                        findings,
                        file,
                        "L8",
                        "unordered-parallel-merge",
                        line,
                        format!(
                            "`+=` accumulation inside a `{prim}` call in `{}`; claim order is nondeterministic — write per-index results and reduce in ascending order, or list the fn under [ordered] in hotpaths.toml",
                            item.name
                        ),
                    );
                }
            }
        }
    }
}

/// Lines of `+=` punctuation inside the argument list that starts at the
/// first `(` after the callee token.
fn plus_eq_lines(file: &crate::analyze::SourceFile, callee: usize) -> Vec<u32> {
    let mut lines = Vec::new();
    let toks = &file.toks;
    let Some(open) = (callee + 1..toks.len()).find(|&i| toks[i].is_punct("(")) else {
        return lines;
    };
    let mut depth = 0i32;
    for tok in &toks[open..] {
        if matches!(tok.kind, TokKind::Comment { .. }) {
            continue;
        }
        if tok.is_punct("(") {
            depth += 1;
        } else if tok.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if tok.is_punct("+=") {
            lines.push(tok.line);
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use crate::analyze::SourceFile;
    use crate::manifest::{self, Manifest};
    use crate::rules::{run_all, Finding};

    fn m(ordered: &str) -> Manifest {
        manifest::parse(&format!(
            "[determinism]\ncrates = [\"eval\"]\n\n[ordered]\nfunctions = [{ordered}]\n"
        ))
        .expect("manifest")
    }

    fn lint(rel: &str, src: &str, ordered: &str) -> Vec<Finding> {
        run_all(&SourceFile::analyze(rel, src), &m(ordered))
            .into_iter()
            .filter(|f| f.rule == "L8")
            .collect()
    }

    #[test]
    fn flags_accumulation_inside_a_parallel_closure() {
        let src = "\
fn total(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    par_index_claim(xs.len(), |i| {
        sum += xs[i];
    });
    sum
}
";
        let found = lint("crates/eval/src/a.rs", src, "");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 4);
        assert!(found[0].message.contains("`par_index_claim`"));
        assert!(found[0].message.contains("`total`"));
    }

    #[test]
    fn serial_reduction_after_par_map_is_clean() {
        let src = "\
fn total(xs: &[f64]) -> f64 {
    let parts = par_map(xs, |x| x * 2.0);
    let mut sum = 0.0;
    for p in parts {
        sum += p;
    }
    sum
}
";
        assert!(lint("crates/eval/src/a.rs", src, "").is_empty());
    }

    #[test]
    fn ordered_fns_are_exempt() {
        let src = "\
fn turnstile_total(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    par_index_claim(xs.len(), |i| {
        sum += xs[i];
    });
    sum
}
";
        assert!(lint("crates/eval/src/a.rs", src, "\"turnstile_total\"").is_empty());
        assert_eq!(lint("crates/eval/src/a.rs", src, "").len(), 1);
    }

    #[test]
    fn other_crates_and_tests_are_out_of_scope() {
        let src = "\
fn total(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    par_map(xs, |x| { sum += x; });
    sum
}
";
        assert!(lint("crates/core/src/a.rs", src, "").is_empty());
        assert!(lint("crates/eval/tests/a.rs", src, "").is_empty());
    }

    #[test]
    fn method_position_par_map_is_also_flagged() {
        let src = "\
fn total(p: &Pool, xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    p.par_map(xs, |x| { sum += x; });
    sum
}
";
        assert_eq!(lint("crates/eval/src/a.rs", src, "").len(), 1);
    }
}
