//! Minimal ordered-JSON value, writer and strict parser.
//!
//! This deliberately mirrors the conventions of `cfaopc-eval`'s JSON layer
//! (insertion-ordered objects, two-space pretty printing with a trailing
//! newline, shortest-roundtrip float formatting, non-finite numbers
//! serialized as `null`, strict parsing with byte offsets in errors) but is
//! re-implemented here so that `cfaopc-lint` stays dependency-free — the
//! analyzer must build without compiling any other workspace crate.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for integer fields.
    pub fn int(v: usize) -> Json {
        Json::Num(v as f64)
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Non-negative integer content, if this is a whole finite number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if v.is_finite() && *v >= 0.0 && v.fract() == 0.0 => Some(*v as usize),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Strictly parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| err(start, "non-utf8 number slice"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    // Caller guarantees bytes[*pos] == b'"'.
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err(err(*pos, "unterminated string"));
        };
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let end = pos
                            .checked_add(4)
                            .filter(|&e| e <= bytes.len())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(&bytes[*pos..end])
                            .map_err(|_| err(*pos, "non-utf8 \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        *pos = end;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(err(*pos - 1, "unknown escape")),
                }
            }
            _ => {
                // Copy one UTF-8 character.
                let len = utf8_len(c);
                let end = (*pos + len).min(bytes.len());
                let s = std::str::from_utf8(&bytes[*pos..end])
                    .map_err(|_| err(*pos, "invalid utf-8 in string"))?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // `{`
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_ordered_object() {
        let doc = Json::Obj(vec![
            ("b".into(), Json::int(2)),
            ("a".into(), Json::Str("x\"y".into())),
            ("list".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = doc.to_string_pretty();
        assert!(text.ends_with('\n'));
        let back = parse(&text).expect("roundtrip parse");
        assert_eq!(back, doc);
        // Key order preserved.
        assert!(text.find("\"b\"").expect("b") < text.find("\"a\"").expect("a"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        let mut out = String::new();
        write_num(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::int(42).to_string_pretty(), "42\n");
    }
}
