//! A small, self-contained Rust lexer — just enough token structure for
//! the contract rules, with no external parser dependency (the build
//! container is offline, so `syn` is not an option).
//!
//! The lexer's one hard promise is **robustness**: any byte sequence that
//! is valid UTF-8 lexes to a token stream without panicking (unterminated
//! strings and comments simply run to end of input). Everything the rules
//! depend on is token-accurate:
//!
//! * string literals (plain, byte, raw with any `#` count) are single
//!   tokens, so `"unsafe"` inside a string never looks like the keyword;
//! * block comments nest (`/* /* */ */`), line/doc comments are kept as
//!   [`TokKind::Comment`] tokens (with their text) so the `// SAFETY:`
//!   rule can inspect them while keyword rules skip them;
//! * char literals are distinguished from lifetimes;
//! * float literals are distinguished from integers (the determinism rule
//!   flags exact float comparisons);
//! * a handful of two-character operators (`==`, `!=`, `::`, …) are fused
//!   so rules can match them as single tokens.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers `r#foo`).
    Ident,
    /// Operator / punctuation (common two-char operators fused).
    Punct,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Integer literal.
    Int,
    /// Floating-point literal (has a fractional part, an exponent, or an
    /// `f32`/`f64` suffix).
    Float,
    /// Comment; `doc` distinguishes `///` / `//!` / `/**` / `/*!`.
    Comment {
        /// Whether this is a documentation comment.
        doc: bool,
    },
}

/// One token with its source span (1-based lines).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based line of the token's last character (differs from `line`
    /// for multi-line strings and block comments).
    pub end_line: u32,
    /// The token's text. For `Str` tokens this is the *content* between
    /// the delimiters (so rules never re-scan quoting); for everything
    /// else it is the literal source text.
    pub text: String,
}

impl Tok {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// Two-character operators fused into one `Punct` token. Order matters
/// only in that all entries are the same length; longer operators such as
/// `..=` and `<<=` lex as a fused pair plus a trailing single, which is
/// precise enough for every rule in this crate.
const TWO_CHAR_OPS: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "<<", ">>",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `source` into tokens. Never fails: malformed input degrades to
/// `Punct` tokens or to literals that run to end of input.
pub fn lex(source: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let start_line = cur.line;
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('/') {
            toks.push(line_comment(&mut cur, start_line));
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            toks.push(block_comment(&mut cur, start_line));
            continue;
        }
        if let Some(tok) = string_prefix(&mut cur, start_line) {
            toks.push(tok);
            continue;
        }
        if c == '"' {
            toks.push(plain_string(&mut cur, start_line));
            continue;
        }
        if c == '\'' {
            toks.push(char_or_lifetime(&mut cur, start_line));
            continue;
        }
        if c.is_ascii_digit() {
            toks.push(number(&mut cur, start_line));
            continue;
        }
        if is_ident_start(c) {
            toks.push(ident(&mut cur, start_line));
            continue;
        }
        // Punctuation, fusing common two-char operators.
        let mut text = String::new();
        text.push(c);
        cur.bump();
        if let Some(next) = cur.peek() {
            let mut pair = text.clone();
            pair.push(next);
            if TWO_CHAR_OPS.contains(&pair.as_str()) {
                cur.bump();
                text = pair;
            }
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            line: start_line,
            end_line: start_line,
            text,
        });
    }
    toks
}

fn line_comment(cur: &mut Cursor, start_line: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // `///` and `//!` are doc comments; `////…` is an ordinary comment by
    // rustdoc's rules.
    let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
    Tok {
        kind: TokKind::Comment { doc },
        line: start_line,
        end_line: start_line,
        text,
    }
}

fn block_comment(cur: &mut Cursor, start_line: u32) -> Tok {
    let mut text = String::new();
    // Consume the opening `/*`.
    for _ in 0..2 {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                text.push('/');
                text.push('*');
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                text.push('*');
                text.push('/');
                cur.bump();
                cur.bump();
            }
            (Some(c), _) => {
                text.push(c);
                cur.bump();
            }
            (None, _) => break, // unterminated: run to end of input
        }
    }
    let doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
        || text.starts_with("/*!");
    Tok {
        kind: TokKind::Comment { doc },
        line: start_line,
        end_line: cur.line,
        text,
    }
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, the Rust 1.77
/// C-string family `c"…"` / `cr"…"` / `cr#"…"#`, and raw identifiers
/// `r#ident`. Returns `None` when the cursor is not at any of these,
/// leaving it untouched.
fn string_prefix(cur: &mut Cursor, start_line: u32) -> Option<Tok> {
    let c = cur.peek()?;
    if c != 'r' && c != 'b' && c != 'c' {
        return None;
    }
    let (raw_at, byte) = match (c, cur.peek_at(1)) {
        ('r', Some('"' | '#')) => (1, false),
        // Plain byte and C strings share the plain-string scanner (the
        // prefix changes the value type, not the delimiter grammar).
        ('b' | 'c', Some('"')) => (1, true),
        ('b', Some('\'')) => {
            // Byte literal `b'x'`.
            cur.bump();
            let mut tok = char_or_lifetime(cur, start_line);
            tok.kind = TokKind::Char;
            return Some(tok);
        }
        ('b' | 'c', Some('r')) if matches!(cur.peek_at(2), Some('"' | '#')) => (2, false),
        _ => return None,
    };
    if byte {
        cur.bump(); // `b`
        return Some(plain_string(cur, start_line));
    }
    // Count hashes after the prefix; a `"` must follow for a raw string.
    let mut hashes = 0usize;
    while cur.peek_at(raw_at + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek_at(raw_at + hashes) != Some('"') {
        if hashes > 0 && cur.peek_at(raw_at + hashes).is_some_and(is_ident_start) {
            // Raw identifier `r#foo` (or the `br#…` impossibility, which
            // still lexes harmlessly as an ident here).
            for _ in 0..raw_at + hashes {
                cur.bump();
            }
            let mut tok = ident(cur, start_line);
            tok.text.insert_str(0, "r#");
            return Some(tok);
        }
        return None; // plain ident starting with r/b
    }
    for _ in 0..raw_at + hashes + 1 {
        cur.bump(); // prefix, hashes, opening quote
    }
    // Scan to `"` followed by `hashes` hashes.
    let mut content = String::new();
    loop {
        match cur.peek() {
            None => break, // unterminated
            Some('"') => {
                let mut matched = true;
                for i in 0..hashes {
                    if cur.peek_at(1 + i) != Some('#') {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    for _ in 0..1 + hashes {
                        cur.bump();
                    }
                    break;
                }
                content.push('"');
                cur.bump();
            }
            Some(c) => {
                content.push(c);
                cur.bump();
            }
        }
    }
    Some(Tok {
        kind: TokKind::Str,
        line: start_line,
        end_line: cur.line,
        text: content,
    })
}

fn plain_string(cur: &mut Cursor, start_line: u32) -> Tok {
    cur.bump(); // opening quote
    let mut content = String::new();
    loop {
        match cur.peek() {
            None => break, // unterminated
            Some('"') => {
                cur.bump();
                break;
            }
            Some('\\') => {
                cur.bump();
                if let Some(esc) = cur.bump() {
                    content.push('\\');
                    content.push(esc);
                }
            }
            Some(c) => {
                content.push(c);
                cur.bump();
            }
        }
    }
    Tok {
        kind: TokKind::Str,
        line: start_line,
        end_line: cur.line,
        text: content,
    }
}

fn char_or_lifetime(cur: &mut Cursor, start_line: u32) -> Tok {
    let mut text = String::from("'");
    cur.bump(); // opening quote
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            text.push('\\');
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
                if esc == 'u' {
                    // `\u{…}` — consume through `}`.
                    while let Some(c) = cur.peek() {
                        text.push(c);
                        cur.bump();
                        if c == '}' {
                            break;
                        }
                    }
                } else if esc == 'x' {
                    for _ in 0..2 {
                        if let Some(c) = cur.peek() {
                            if c != '\'' {
                                text.push(c);
                                cur.bump();
                            }
                        }
                    }
                }
            }
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            Tok {
                kind: TokKind::Char,
                line: start_line,
                end_line: cur.line,
                text,
            }
        }
        Some(c) if is_ident_continue(c) => {
            // One ident-ish char then a quote → char literal ('a');
            // otherwise a lifetime ('a, 'static, '_).
            text.push(c);
            cur.bump();
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
                return Tok {
                    kind: TokKind::Char,
                    line: start_line,
                    end_line: cur.line,
                    text,
                };
            }
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            Tok {
                kind: TokKind::Lifetime,
                line: start_line,
                end_line: cur.line,
                text,
            }
        }
        Some(other) => {
            // Non-ident char literal like '(' or ' ' — or stray quote.
            text.push(other);
            cur.bump();
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            Tok {
                kind: TokKind::Char,
                line: start_line,
                end_line: cur.line,
                text,
            }
        }
        None => Tok {
            kind: TokKind::Punct,
            line: start_line,
            end_line: cur.line,
            text,
        },
    }
}

fn number(cur: &mut Cursor, start_line: u32) -> Tok {
    let mut text = String::new();
    let mut float = false;
    // Radix prefix disables float detection (`0x1.8` is not Rust anyway).
    let hex = cur.peek() == Some('0') && matches!(cur.peek_at(1), Some('x' | 'o' | 'b'));
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if !hex && (c == 'e' || c == 'E') {
                // Exponent only if followed by digit or sign+digit.
                let next = cur.peek_at(1);
                let sign_digit = matches!(next, Some('+' | '-'))
                    && cur.peek_at(2).is_some_and(|d| d.is_ascii_digit());
                if next.is_some_and(|d| d.is_ascii_digit()) || sign_digit {
                    float = true;
                    text.push(c);
                    cur.bump();
                    if sign_digit {
                        if let Some(s) = cur.bump() {
                            text.push(s);
                        }
                    }
                    continue;
                }
            }
            if !hex && c == 'f' {
                // `f32` / `f64` suffix marks a float (e.g. `2f64`).
                if (cur.peek_at(1) == Some('3') && cur.peek_at(2) == Some('2'))
                    || (cur.peek_at(1) == Some('6') && cur.peek_at(2) == Some('4'))
                {
                    float = true;
                }
            }
            text.push(c);
            cur.bump();
            continue;
        }
        if c == '.' && !float && !hex {
            // A fractional part — but not `..` (range) and not `.method()`.
            match cur.peek_at(1) {
                Some('.') => break,
                Some(n) if is_ident_start(n) => break,
                _ => {
                    float = true;
                    text.push('.');
                    cur.bump();
                }
            }
            continue;
        }
        break;
    }
    Tok {
        kind: if float { TokKind::Float } else { TokKind::Int },
        line: start_line,
        end_line: cur.line,
        text,
    }
}

fn ident(cur: &mut Cursor, start_line: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Tok {
        kind: TokKind::Ident,
        line: start_line,
        end_line: cur.line,
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn fuses_comparison_operators() {
        let toks = kinds("a == b != 0.5");
        assert_eq!(toks[1], (TokKind::Punct, "==".into()));
        assert_eq!(toks[3], (TokKind::Punct, "!=".into()));
        assert_eq!(toks[4], (TokKind::Float, "0.5".into()));
    }

    #[test]
    fn macro_bang_stays_single() {
        let toks = kinds("panic!(\"x\")");
        assert_eq!(toks[0], (TokKind::Ident, "panic".into()));
        assert_eq!(toks[1], (TokKind::Punct, "!".into()));
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = kinds("0..10");
        assert_eq!(toks[0].0, TokKind::Int);
        assert_eq!(toks[1], (TokKind::Punct, "..".into()));
        assert_eq!(toks[2].0, TokKind::Int);
    }

    #[test]
    fn method_call_on_int_is_not_a_float() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Int, "1".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
    }

    #[test]
    fn float_suffix_without_dot() {
        assert_eq!(kinds("2f64")[0].0, TokKind::Float);
        assert_eq!(kinds("1e-9")[0].0, TokKind::Float);
        assert_eq!(kinds("3u32")[0].0, TokKind::Int);
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("&'a str 'x' '_ '\\n'");
        assert_eq!(toks[1], (TokKind::Lifetime, "'a".into()));
        assert_eq!(toks[3], (TokKind::Char, "'x'".into()));
        assert_eq!(toks[4], (TokKind::Lifetime, "'_".into()));
        assert_eq!(toks[5].0, TokKind::Char);
    }

    #[test]
    fn raw_ident_is_ident() {
        let toks = kinds("r#fn r#unsafe");
        assert_eq!(toks[0], (TokKind::Ident, "r#fn".into()));
        assert_eq!(toks[1], (TokKind::Ident, "r#unsafe".into()));
    }

    #[test]
    fn multiline_tokens_track_end_line() {
        let toks = lex("/* a\nb */ \"x\ny\"");
        assert_eq!((toks[0].line, toks[0].end_line), (1, 2));
        assert_eq!((toks[1].line, toks[1].end_line), (2, 3));
    }

    #[test]
    fn c_string_literals_are_single_tokens() {
        // `c"…"`: one Str token whose text is the content, so a brace
        // inside the literal can't desynchronize brace scoping.
        let toks = kinds("c\"a{b\" }");
        assert_eq!(toks[0], (TokKind::Str, "a{b".into()));
        assert_eq!(toks[1], (TokKind::Punct, "}".into()));

        let toks = kinds("cr\"no \\ escapes\"");
        assert_eq!(toks[0], (TokKind::Str, "no \\ escapes".into()));

        let toks = kinds("cr#\"quote \" inside\"# fn");
        assert_eq!(toks[0], (TokKind::Str, "quote \" inside".into()));
        assert_eq!(toks[1], (TokKind::Ident, "fn".into()));
    }

    #[test]
    fn c_prefix_without_quote_is_an_ident() {
        let toks = kinds("c + cr * crate");
        assert_eq!(toks[0], (TokKind::Ident, "c".into()));
        assert_eq!(toks[2], (TokKind::Ident, "cr".into()));
        assert_eq!(toks[4], (TokKind::Ident, "crate".into()));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in [
            "\"abc", "/* open", "r#\"abc", "'", "b\"x", "r###\"y", "c\"ab", "cr#\"ab", "cr\"",
        ] {
            let _ = lex(src);
        }
    }
}
