//! The committed baseline (`lint/baseline.json`): accepted legacy
//! findings, each with a one-line justification.
//!
//! Entries are keyed by `(rule, file, snippet)` rather than line number so
//! that unrelated edits shifting lines do not invalidate the baseline; a
//! `count` allows several identical sites in one file. The check is
//! two-sided: findings beyond the baselined count are **new** (exit 1) and
//! baselined counts no longer reached are **stale** (exit 2), so the
//! baseline can only shrink deliberately.

use crate::json::{self, Json};
use crate::rules::Finding;

/// One accepted legacy finding (possibly several identical sites).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id ("L1" … "L5").
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// Trimmed offending line — the matching key.
    pub snippet: String,
    /// How many identical sites are accepted.
    pub count: usize,
    /// Why this is acceptable.
    pub justification: String,
}

/// The parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// All accepted entries.
    pub entries: Vec<BaselineEntry>,
}

/// A baseline entry whose accepted sites no longer all exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// Rule id of the stale entry.
    pub rule: String,
    /// File of the stale entry.
    pub file: String,
    /// Snippet key of the stale entry.
    pub snippet: String,
    /// Count recorded in the baseline.
    pub expected: usize,
    /// Matching findings actually present.
    pub actual: usize,
}

/// A finding annotated with its baseline status.
#[derive(Debug, Clone)]
pub struct Annotated {
    /// The underlying finding.
    pub finding: Finding,
    /// Whether the baseline accepts this site.
    pub baselined: bool,
    /// The baseline justification, when baselined.
    pub justification: Option<String>,
}

/// Result of matching findings against the baseline.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// All findings, in (file, line, rule) order, annotated.
    pub findings: Vec<Annotated>,
    /// Findings not covered by the baseline.
    pub new_count: usize,
    /// Findings absorbed by the baseline.
    pub baselined_count: usize,
    /// Baseline entries that over-count current findings.
    pub stale: Vec<StaleEntry>,
}

impl Baseline {
    /// Parses `lint/baseline.json` text.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let entries_json = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("baseline: missing `entries` array")?;
        let mut entries = Vec::new();
        for (i, entry) in entries_json.iter().enumerate() {
            let field = |key: &str| -> Result<String, String> {
                entry
                    .get(key)
                    .and_then(Json::as_str)
                    .map(|s| s.to_string())
                    .ok_or(format!("baseline entry {i}: missing string `{key}`"))
            };
            entries.push(BaselineEntry {
                rule: field("rule")?,
                file: field("file")?,
                snippet: field("snippet")?,
                count: entry
                    .get("count")
                    .and_then(Json::as_usize)
                    .ok_or(format!("baseline entry {i}: missing integer `count`"))?,
                justification: field("justification")?,
            });
        }
        Ok(Baseline { entries })
    }

    /// Serializes in the committed format.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".to_string(), Json::int(1)),
            (
                "entries".to_string(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("rule".to_string(), Json::Str(e.rule.clone())),
                                ("file".to_string(), Json::Str(e.file.clone())),
                                ("snippet".to_string(), Json::Str(e.snippet.clone())),
                                ("count".to_string(), Json::int(e.count)),
                                (
                                    "justification".to_string(),
                                    Json::Str(e.justification.clone()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Matches findings (already sorted by file/line/rule) against the
    /// baseline: the first `count` sites per key are accepted, extras are
    /// new, shortfalls make the entry stale.
    pub fn apply(&self, findings: Vec<Finding>) -> Outcome {
        let mut remaining: Vec<(usize, &BaselineEntry)> =
            self.entries.iter().map(|e| (e.count, e)).collect();
        let mut outcome = Outcome::default();
        for finding in findings {
            let slot = remaining.iter_mut().find(|(left, e)| {
                *left > 0
                    && e.rule == finding.rule
                    && e.file == finding.file
                    && e.snippet == finding.snippet
            });
            let (baselined, justification) = match slot {
                Some((left, entry)) => {
                    *left -= 1;
                    (true, Some(entry.justification.clone()))
                }
                None => (false, None),
            };
            if baselined {
                outcome.baselined_count += 1;
            } else {
                outcome.new_count += 1;
            }
            outcome.findings.push(Annotated {
                finding,
                baselined,
                justification,
            });
        }
        for (left, entry) in remaining {
            if left > 0 {
                outcome.stale.push(StaleEntry {
                    rule: entry.rule.clone(),
                    file: entry.file.clone(),
                    snippet: entry.snippet.clone(),
                    expected: entry.count,
                    actual: entry.count - left,
                });
            }
        }
        outcome
    }

    /// Builds a fresh baseline from current findings, preserving the
    /// justifications of entries that still match; brand-new entries get a
    /// placeholder that reviewers must replace.
    pub fn updated_from(&self, findings: &[Finding]) -> Baseline {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        for finding in findings {
            if let Some(entry) = entries.iter_mut().find(|e| {
                e.rule == finding.rule && e.file == finding.file && e.snippet == finding.snippet
            }) {
                entry.count += 1;
                continue;
            }
            let justification = self
                .entries
                .iter()
                .find(|e| {
                    e.rule == finding.rule && e.file == finding.file && e.snippet == finding.snippet
                })
                .map(|e| e.justification.clone())
                .unwrap_or_else(|| "UNREVIEWED: justify before merging".to_string());
            entries.push(BaselineEntry {
                rule: finding.rule.to_string(),
                file: finding.file.clone(),
                snippet: finding.snippet.clone(),
                count: 1,
                justification,
            });
        }
        Baseline { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            name: "x",
            file: file.to_string(),
            line,
            message: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    fn entry(
        rule: &str,
        file: &str,
        snippet: &str,
        count: usize,
        justification: &str,
    ) -> BaselineEntry {
        BaselineEntry {
            rule: rule.to_string(),
            file: file.to_string(),
            snippet: snippet.to_string(),
            count,
            justification: justification.to_string(),
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let baseline = Baseline {
            entries: vec![BaselineEntry {
                rule: "L2".to_string(),
                file: "crates/a/src/lib.rs".to_string(),
                snippet: "x.expect(\"y\")".to_string(),
                count: 2,
                justification: "unreachable by construction".to_string(),
            }],
        };
        let text = baseline.to_json().to_string_pretty();
        let back = Baseline::parse(&text).expect("parse");
        assert_eq!(back.entries, baseline.entries);
    }

    #[test]
    fn counts_split_between_baselined_and_new() {
        let baseline = Baseline {
            entries: vec![entry("L2", "f.rs", "s", 1, "ok")],
        };
        let out = baseline.apply(vec![
            finding("L2", "f.rs", 3, "s"),
            finding("L2", "f.rs", 9, "s"),
        ]);
        assert_eq!(out.baselined_count, 1);
        assert_eq!(out.new_count, 1);
        assert!(out.stale.is_empty());
        assert!(out.findings[0].baselined);
        assert!(!out.findings[1].baselined);
    }

    #[test]
    fn unmatched_entries_are_stale() {
        let baseline = Baseline {
            entries: vec![entry("L2", "f.rs", "gone", 2, "ok")],
        };
        let out = baseline.apply(vec![finding("L2", "f.rs", 3, "gone")]);
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].expected, 2);
        assert_eq!(out.stale[0].actual, 1);
    }

    #[test]
    fn update_preserves_existing_justifications() {
        let old = Baseline {
            entries: vec![entry("L2", "f.rs", "s", 1, "carefully reviewed")],
        };
        let findings = vec![finding("L2", "f.rs", 3, "s"), finding("L5", "g.rs", 7, "t")];
        let new = old.updated_from(&findings);
        assert_eq!(new.entries.len(), 2);
        assert_eq!(new.entries[0].justification, "carefully reviewed");
        assert!(new.entries[1].justification.starts_with("UNREVIEWED"));
    }
}
