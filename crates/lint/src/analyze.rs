//! Per-file structural analysis on top of the lexer: line classification
//! (code / comment / attribute / blank), `#[cfg(test)]` and `mod tests`
//! scoping, function-body spans, and the file's role in the workspace
//! (library vs test vs binary code). Rules consume this instead of raw
//! tokens.

use crate::lexer::{Tok, TokKind};

/// What a source line predominantly contains, for the "immediately
/// preceded by a comment" logic of rule L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineClass {
    /// No tokens on the line.
    Blank,
    /// Only comment tokens.
    Comment,
    /// Only attribute tokens (`#[…]` / `#![…]`), possibly plus comments.
    Attr,
    /// Anything else.
    Code,
}

/// A function body located in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, inclusive of both braces.
    pub body: (usize, usize),
}

/// A file's place in the workspace, derived from its relative path.
#[derive(Debug, Clone, Default)]
pub struct FileRole {
    /// Crate directory name under `crates/`, or empty for the root crate.
    pub crate_name: String,
    /// True for `crates/*/src/**` and root `src/**`, excluding `main.rs`
    /// and `src/bin/**`: the code subject to L2/L4/L5.
    pub library: bool,
    /// True for files under `tests/`, `benches/` or `examples/`.
    pub test_file: bool,
}

/// Fully analyzed source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// The raw source lines (for finding snippets).
    pub src_lines: Vec<String>,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Class of each line; index 0 is line 1.
    pub line_class: Vec<LineClass>,
    /// For each token, whether it sits inside `#[cfg(test)]` or
    /// `mod tests` scope.
    pub in_test_scope: Vec<bool>,
    /// Function bodies, in source order.
    pub fns: Vec<FnSpan>,
    /// The file's workspace role.
    pub role: FileRole,
}

impl SourceFile {
    /// Analyzes one file.
    pub fn analyze(rel: &str, source: &str) -> SourceFile {
        let toks = crate::lexer::lex(source);
        let src_lines: Vec<String> = source.lines().map(|l| l.to_string()).collect();
        let attr_ranges = attr_ranges(&toks);
        let line_class = classify_lines(&toks, &attr_ranges, src_lines.len());
        let in_test_scope = test_scope(&toks, &attr_ranges);
        let fns = fn_spans(&toks);
        SourceFile {
            rel: rel.to_string(),
            src_lines,
            toks,
            line_class,
            in_test_scope,
            fns,
            role: FileRole::from_rel(rel),
        }
    }

    /// The class of a 1-based line (out-of-range lines are blank).
    pub fn class_of(&self, line: u32) -> LineClass {
        let idx = line as usize;
        if idx == 0 {
            return LineClass::Blank;
        }
        self.line_class
            .get(idx - 1)
            .copied()
            .unwrap_or(LineClass::Blank)
    }

    /// The trimmed text of a 1-based line, for finding snippets.
    pub fn snippet(&self, line: u32) -> String {
        let idx = line as usize;
        if idx == 0 {
            return String::new();
        }
        self.src_lines
            .get(idx - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

impl FileRole {
    /// Derives the role from a workspace-relative path.
    pub fn from_rel(rel: &str) -> FileRole {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") {
            parts.get(1).copied().unwrap_or("").to_string()
        } else {
            String::new()
        };
        let test_file = parts
            .iter()
            .any(|p| matches!(*p, "tests" | "benches" | "examples"));
        let src_tree = if parts.first() == Some(&"crates") {
            parts.get(2) == Some(&"src")
        } else {
            parts.first() == Some(&"src")
        };
        let in_bin = parts.contains(&"bin")
            || parts.last().is_some_and(|p| *p == "main.rs")
            || parts.last().is_some_and(|p| *p == "build.rs");
        FileRole {
            crate_name,
            library: src_tree && !in_bin && !test_file,
            test_file,
        }
    }
}

/// Token-index ranges (inclusive) of attributes: `#[…]` and `#![…]`.
fn attr_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct("!")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct("[")) {
                // Bracket-match to the closing `]`.
                let mut depth = 0i32;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_punct("[") {
                        depth += 1;
                    } else if toks[k].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                let end = k.min(toks.len().saturating_sub(1));
                ranges.push((i, end));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

fn in_ranges(idx: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
}

fn classify_lines(toks: &[Tok], attrs: &[(usize, usize)], n_lines: usize) -> Vec<LineClass> {
    let max_line = toks
        .iter()
        .map(|t| t.end_line as usize)
        .max()
        .unwrap_or(0)
        .max(n_lines);
    let mut has_code = vec![false; max_line];
    let mut has_comment = vec![false; max_line];
    let mut has_attr = vec![false; max_line];
    for (idx, tok) in toks.iter().enumerate() {
        let bucket: &mut Vec<bool> = if matches!(tok.kind, TokKind::Comment { .. }) {
            &mut has_comment
        } else if in_ranges(idx, attrs) {
            &mut has_attr
        } else {
            &mut has_code
        };
        for line in tok.line..=tok.end_line {
            if let Some(slot) = bucket.get_mut(line as usize - 1) {
                *slot = true;
            }
        }
    }
    (0..max_line)
        .map(|i| {
            if has_code[i] {
                LineClass::Code
            } else if has_attr[i] {
                LineClass::Attr
            } else if has_comment[i] {
                LineClass::Comment
            } else {
                LineClass::Blank
            }
        })
        .collect()
}

/// Marks token ranges covered by `#[cfg(test)]` items and `mod tests`
/// blocks. Conservative by design: `#[cfg(all(test, …))]` also counts.
fn test_scope(toks: &[Tok], attrs: &[(usize, usize)]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    for &(a, b) in attrs {
        let has_cfg = toks[a..=b].iter().any(|t| t.is_ident("cfg"));
        let has_test = toks[a..=b].iter().any(|t| t.is_ident("test"));
        if !(has_cfg && has_test) {
            continue;
        }
        if let Some((start, end)) = item_extent(toks, b + 1) {
            mark(&mut mask, a, end);
            let _ = start;
        }
    }
    // `mod tests {` — common idiom the issue calls out explicitly.
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_ident("mod")
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 1].text.starts_with("test")
            && toks[i + 2].is_punct("{")
        {
            if let Some(close) = brace_match(toks, i + 2) {
                mark(&mut mask, i, close);
            }
        }
        i += 1;
    }
    mask
}

fn mark(mask: &mut [bool], from: usize, to: usize) {
    for slot in mask.iter_mut().take(to + 1).skip(from) {
        *slot = true;
    }
}

/// From `start`, finds the extent of the next item: skips further
/// attributes and comments, then runs to the first `;` at depth 0 or to
/// the matching `}` of the first `{`. Returns (first token, last token).
fn item_extent(toks: &[Tok], start: usize) -> Option<(usize, usize)> {
    let mut i = start;
    // Skip comments and subsequent attributes.
    loop {
        match toks.get(i) {
            Some(t) if matches!(t.kind, TokKind::Comment { .. }) => i += 1,
            Some(t) if t.is_punct("#") => {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_punct("!")) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_punct("[")) {
                    let mut depth = 0i32;
                    while j < toks.len() {
                        if toks[j].is_punct("[") {
                            depth += 1;
                        } else if toks[j].is_punct("]") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    i = j + 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    let first = i;
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct("{") && depth == 0 {
            let close = brace_match(toks, i)?;
            return Some((first, close));
        } else if t.is_punct(";") && depth == 0 {
            return Some((first, i));
        }
        i += 1;
    }
    None
}

/// Given the index of a `{` token, returns the index of its matching `}`.
pub(crate) fn brace_match(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, tok) in toks.iter().enumerate().skip(open) {
        if tok.is_punct("{") {
            depth += 1;
        } else if tok.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Locates every `fn name … { body }` and records the body's token range.
fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // The name is the next non-comment token; `fn(` is a fn-pointer
        // type, not a definition.
        let mut j = i + 1;
        while toks
            .get(j)
            .is_some_and(|t| matches!(t.kind, TokKind::Comment { .. }))
        {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != TokKind::Ident {
            i = j;
            continue;
        }
        let name = name_tok.text.clone();
        let line = toks[i].line;
        // Scan the signature for the body `{` (or `;` for a trait decl),
        // tracking paren/bracket depth; `->`/`=>`/`<<`/`>>` are fused so
        // angle brackets never masquerade as braces here.
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut body = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                if let Some(close) = brace_match(toks, k) {
                    body = Some((k, close));
                }
                break;
            } else if t.is_punct(";") && depth == 0 {
                break;
            }
            k += 1;
        }
        if let Some(body) = body {
            spans.push(FnSpan { name, line, body });
            // Continue scanning *inside* the body too (nested fns).
            i = j + 1;
        } else {
            i = k;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_lines() {
        let src = "// comment\n\n#[inline]\nfn f() {}\n";
        let file = SourceFile::analyze("crates/x/src/lib.rs", src);
        assert_eq!(file.class_of(1), LineClass::Comment);
        assert_eq!(file.class_of(2), LineClass::Blank);
        assert_eq!(file.class_of(3), LineClass::Attr);
        assert_eq!(file.class_of(4), LineClass::Code);
    }

    #[test]
    fn cfg_test_scopes_the_following_item() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod checks {\n    fn t() { y.unwrap(); }\n}\nfn after() {}\n";
        let file = SourceFile::analyze("crates/x/src/lib.rs", src);
        let unwraps: Vec<bool> = file
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| file.in_test_scope[i])
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        // Code after the scoped item is live again.
        let after = file
            .toks
            .iter()
            .enumerate()
            .find(|(_, t)| t.is_ident("after"))
            .map(|(i, _)| file.in_test_scope[i]);
        assert_eq!(after, Some(false));
    }

    #[test]
    fn mod_tests_scopes_to_closing_brace() {
        let src = "mod tests {\n    fn t() { panic!(); }\n}\nfn live() {}\n";
        let file = SourceFile::analyze("crates/x/src/lib.rs", src);
        let panic_idx = file
            .toks
            .iter()
            .position(|t| t.is_ident("panic"))
            .expect("panic tok");
        assert!(file.in_test_scope[panic_idx]);
        let live_idx = file
            .toks
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("live tok");
        assert!(!file.in_test_scope[live_idx]);
    }

    #[test]
    fn finds_fn_bodies_including_nested() {
        let src = "pub fn outer<T: Clone>(x: &[T]) -> Vec<T> {\n    fn inner(n: usize) -> usize { n }\n    x.to_vec()\n}\n";
        let file = SourceFile::analyze("crates/x/src/lib.rs", src);
        let names: Vec<&str> = file.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn roles_from_paths() {
        assert!(FileRole::from_rel("crates/core/src/compose.rs").library);
        assert!(!FileRole::from_rel("crates/core/tests/alloc.rs").library);
        assert!(FileRole::from_rel("crates/core/tests/alloc.rs").test_file);
        assert!(!FileRole::from_rel("crates/bench/src/bin/fig1.rs").library);
        assert!(FileRole::from_rel("src/lib.rs").library);
        assert!(!FileRole::from_rel("src/bin/cfaopc.rs").library);
        assert!(!FileRole::from_rel("examples/quickstart.rs").library);
        assert_eq!(
            FileRole::from_rel("crates/eval/src/json.rs").crate_name,
            "eval"
        );
    }
}
