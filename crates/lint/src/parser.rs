//! Recursive-descent item parser on top of the total lexer: per-file item
//! tree with functions (module path, surrounding `impl` type, body span,
//! call expressions) and `use` aliases. This is deliberately *not* a full
//! Rust parser — it only recovers the structure the call graph needs, and
//! it shares the lexer's robustness promise: any token stream parses to
//! *some* item tree without panicking (malformed input degrades to fewer
//! recognized items, never to an error).

use crate::analyze::{brace_match, SourceFile};
use crate::lexer::{Tok, TokKind};

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments as written (`foo` → `["foo"]`, `a::b::foo` →
    /// `["a", "b", "foo"]`). Method calls carry only the method name.
    pub path: Vec<String>,
    /// True for `receiver.name(…)` — resolution must be conservative
    /// because the receiver's type is unknown.
    pub method: bool,
    /// 1-based line of the callee name.
    pub line: u32,
    /// Token index of the callee name (last path segment).
    pub tok: usize,
}

/// One `fn` item with everything the call graph needs.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing inline `mod` names, outermost first (empty at file root).
    pub module_path: Vec<String>,
    /// The `Self` type name when the fn sits in an `impl` block
    /// (`impl Foo` and `impl Trait for Foo` both record `Foo`).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    /// Calls made directly by this body (nested `fn` bodies excluded —
    /// those get their own item; closure bodies are included here).
    pub calls: Vec<CallSite>,
    /// Whether the `fn` keyword sits in `#[cfg(test)]`/`mod tests` scope.
    pub in_test_scope: bool,
}

/// One name introduced by a `use` declaration (globs are ignored).
#[derive(Debug, Clone)]
pub struct UseAlias {
    /// The name visible in this file (`c` in `use a::b as c;`, `b` in
    /// `use a::b;`).
    pub alias: String,
    /// The full imported path, including the final segment.
    pub path: Vec<String>,
}

/// The parsed item tree of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` with a body, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Every `use` alias, in source order.
    pub uses: Vec<UseAlias>,
}

/// Keywords that can precede `(` without being a call (`if (…)`,
/// `return (…)`, `match (…)`, …) or appear as path heads.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "fn"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "union"
            | "type"
            | "mod"
            | "use"
            | "pub"
            | "static"
            | "const"
            | "where"
            | "as"
            | "in"
            | "box"
            | "yield"
    )
}

/// Parses a file into its item tree.
pub fn parse(file: &SourceFile) -> ParsedFile {
    let mut out = ParsedFile::default();
    walk(file, 0, file.toks.len(), &mut Vec::new(), None, &mut out);
    out
}

/// Next non-comment token index at or after `i`.
fn skip_comments(toks: &[Tok], mut i: usize) -> usize {
    while toks
        .get(i)
        .is_some_and(|t| matches!(t.kind, TokKind::Comment { .. }))
    {
        i += 1;
    }
    i
}

/// Previous non-comment token before `i`.
fn prev_code_tok(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[..i]
        .iter()
        .rev()
        .find(|t| !matches!(t.kind, TokKind::Comment { .. }))
}

/// Walks the token range `[start, end)` collecting items. `module_path`
/// and `impl_type` describe the enclosing scope.
fn walk(
    file: &SourceFile,
    start: usize,
    end: usize,
    module_path: &mut Vec<String>,
    impl_type: Option<&str>,
    out: &mut ParsedFile,
) {
    let toks = &file.toks;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if matches!(t.kind, TokKind::Comment { .. }) {
            i += 1;
            continue;
        }
        if t.is_ident("use") {
            i = parse_use(toks, i + 1, end, out);
            continue;
        }
        if t.is_ident("mod") {
            // Inline module `mod name { … }`; `mod name;` declares an
            // out-of-line module handled when its file is scanned.
            let j = skip_comments(toks, i + 1);
            let name = match toks.get(j) {
                Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            let k = skip_comments(toks, j + 1);
            if toks.get(k).is_some_and(|t| t.is_punct("{")) {
                if let Some(close) = brace_match(toks, k) {
                    module_path.push(name);
                    walk(file, k + 1, close.min(end), module_path, None, out);
                    module_path.pop();
                    i = close + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((ty, body_open)) = impl_header(toks, i + 1, end) {
                if let Some(close) = brace_match(toks, body_open) {
                    walk(
                        file,
                        body_open + 1,
                        close.min(end),
                        module_path,
                        ty.as_deref(),
                        out,
                    );
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            // Same shape as `analyze::fn_spans`, plus scope bookkeeping.
            let j = skip_comments(toks, i + 1);
            let Some(name_tok) = toks.get(j) else { break };
            if name_tok.kind != TokKind::Ident {
                i = j.max(i + 1);
                continue;
            }
            let mut k = j + 1;
            let mut depth = 0i32;
            let mut body = None;
            while k < end {
                let t = &toks[k];
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if t.is_punct("{") && depth == 0 {
                    body = brace_match(toks, k).map(|close| (k, close));
                    break;
                } else if t.is_punct(";") && depth == 0 {
                    break;
                }
                k += 1;
            }
            let Some((open, close)) = body else {
                i = k.max(i + 1);
                continue;
            };
            let mut calls = Vec::new();
            extract_calls(toks, open + 1, close, &mut calls);
            out.fns.push(FnItem {
                name: name_tok.text.clone(),
                module_path: module_path.clone(),
                impl_type: impl_type.map(|s| s.to_string()),
                line: toks[i].line,
                body: (open, close),
                calls,
                in_test_scope: file.in_test_scope.get(i).copied().unwrap_or(false),
            });
            // Recurse into the body for nested items (fns, mods, uses).
            walk(file, open + 1, close.min(end), module_path, None, out);
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

/// Parses an `impl` header starting just after the `impl` keyword.
/// Returns the `Self` type name (last path segment; `None` for
/// unrecognized shapes like `impl Trait for &T`) and the index of the
/// body's `{`.
fn impl_header(toks: &[Tok], start: usize, end: usize) -> Option<(Option<String>, usize)> {
    let mut i = skip_comments(toks, start);
    // Skip generic parameters `impl<…>`.
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_angles(toks, i, end)?;
    }
    // Collect the first type path, then — if a top-level `for` follows —
    // the type path after it wins (`impl Trait for Type`).
    let mut last_seg: Option<String> = None;
    let mut depth = 0i32;
    while i < end {
        let t = &toks[i];
        if matches!(t.kind, TokKind::Comment { .. }) {
            i += 1;
            continue;
        }
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct("<") && depth == 0 {
            i = skip_angles(toks, i, end)?;
            continue;
        } else if t.is_punct("{") && depth == 0 {
            return Some((last_seg, i));
        } else if t.is_ident("where") && depth == 0 {
            // Segments in where-clauses are bounds, not the Self type.
            while i < end && !toks[i].is_punct("{") {
                i += 1;
            }
            continue;
        } else if t.is_ident("for") && depth == 0 {
            last_seg = None; // the Self type follows
        } else if t.kind == TokKind::Ident && depth == 0 && !is_keyword(&t.text) {
            last_seg = Some(t.text.clone());
        }
        i += 1;
    }
    None
}

/// From an opening `<` at `i`, returns the index just past its matching
/// `>`. Fused `<<`/`>>` count twice; `->` / `=>` don't participate.
fn skip_angles(toks: &[Tok], i: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = i;
    while k < end {
        let t = &toks[k];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct("<<") {
            depth += 2;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct(">>") {
            depth -= 2;
        } else if t.is_punct(";") || t.is_punct("{") {
            return None; // not a generic argument list after all
        }
        k += 1;
        if depth <= 0 {
            return Some(k);
        }
    }
    None
}

/// Parses one `use` declaration starting just after the `use` keyword;
/// returns the index just past the terminating `;`.
fn parse_use(toks: &[Tok], start: usize, end: usize, out: &mut ParsedFile) -> usize {
    // Find the end of the declaration first so malformed trees can't
    // desynchronize the caller.
    let mut stop = start;
    let mut depth = 0i32;
    while stop < end {
        let t = &toks[stop];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                break; // unbalanced: bail at the enclosing block's close
            }
        } else if t.is_punct(";") && depth == 0 {
            break;
        }
        stop += 1;
    }
    use_tree(toks, start, stop, &mut Vec::new(), out);
    (stop + 1).min(end)
}

/// Recursively parses a use tree in `[start, stop)` with the accumulated
/// `prefix` of outer segments.
fn use_tree(
    toks: &[Tok],
    start: usize,
    stop: usize,
    prefix: &mut Vec<String>,
    out: &mut ParsedFile,
) {
    let mut i = skip_comments(toks, start);
    let base_len = prefix.len();
    let mut last: Option<String> = None;
    while i < stop {
        let t = &toks[i];
        if matches!(t.kind, TokKind::Comment { .. }) {
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident && t.text != "as" {
            if let Some(seg) = last.replace(t.text.clone()) {
                prefix.push(seg);
            }
            i += 1;
            continue;
        }
        if t.is_punct("::") {
            i += 1;
            continue;
        }
        if t.is_ident("as") {
            let j = skip_comments(toks, i + 1);
            if let (Some(alias_tok), Some(seg)) = (toks.get(j), last.take()) {
                if alias_tok.kind == TokKind::Ident && alias_tok.text != "_" {
                    let mut path = prefix.clone();
                    path.push(seg);
                    out.uses.push(UseAlias {
                        alias: alias_tok.text.clone(),
                        path,
                    });
                }
            }
            i = j + 1;
            continue;
        }
        if t.is_punct("{") {
            // Group: each comma-separated subtree re-uses the prefix.
            if let Some(seg) = last.take() {
                prefix.push(seg);
            }
            let close = match group_close(toks, i, stop) {
                Some(c) => c,
                None => stop,
            };
            let mut sub = i + 1;
            let mut depth = 0i32;
            for k in i + 1..close {
                let t = &toks[k];
                if t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct("}") {
                    depth -= 1;
                } else if t.is_punct(",") && depth == 0 {
                    use_tree(toks, sub, k, prefix, out);
                    sub = k + 1;
                }
            }
            use_tree(toks, sub, close, prefix, out);
            prefix.truncate(base_len);
            return;
        }
        if t.is_punct("*") {
            // Glob: introduces unknowable names; ignored by design.
            last = None;
            i += 1;
            continue;
        }
        i += 1;
    }
    // Plain leaf `use a::b::c;` — alias is the last segment. `self`
    // aliases the parent module's name (`use a::b::{self}` → `b`).
    if let Some(seg) = last {
        if seg == "self" {
            if let Some(parent) = prefix.last().cloned() {
                out.uses.push(UseAlias {
                    alias: parent,
                    path: prefix.clone(),
                });
            }
        } else {
            let mut path = prefix.clone();
            path.push(seg.clone());
            out.uses.push(UseAlias { alias: seg, path });
        }
    }
    prefix.truncate(base_len);
}

/// Matching `}` for the `{` at `open`, bounded by `stop`.
fn group_close(toks: &[Tok], open: usize, stop: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(stop).skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Collects call expressions in `[start, end)`, skipping nested `fn`
/// bodies (their calls belong to the nested item).
fn extract_calls(toks: &[Tok], start: usize, end: usize, out: &mut Vec<CallSite>) {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if matches!(t.kind, TokKind::Comment { .. }) {
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            // Skip the nested fn's signature and body.
            let mut k = skip_comments(toks, i + 1);
            let mut depth = 0i32;
            let mut advanced = false;
            while k < end {
                let t = &toks[k];
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if t.is_punct("{") && depth == 0 {
                    if let Some(close) = brace_match(toks, k) {
                        i = close + 1;
                        advanced = true;
                    }
                    break;
                } else if t.is_punct(";") && depth == 0 {
                    i = k + 1;
                    advanced = true;
                    break;
                }
                k += 1;
            }
            if !advanced {
                i = k.max(i + 1);
            }
            continue;
        }
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            i += 1;
            continue;
        }
        // Read the path chain `seg (:: seg)*`, treating any `::<…>`
        // turbofish (mid-path or trailing) as part of the chain.
        let mut segs = vec![t.text.clone()];
        let mut j = i; // index of the last path-segment ident
        let mut cursor = i; // index of the last consumed path token
        loop {
            let a = skip_comments(toks, cursor + 1);
            if !toks.get(a).is_some_and(|t| t.is_punct("::")) {
                break;
            }
            let b = skip_comments(toks, a + 1);
            if toks.get(b).is_some_and(|t| t.is_punct("<")) {
                match skip_angles(toks, b, end) {
                    Some(past) => {
                        cursor = past - 1;
                        continue;
                    }
                    None => break,
                }
            }
            match toks.get(b) {
                Some(n) if n.kind == TokKind::Ident && !is_keyword(&n.text) => {
                    segs.push(n.text.clone());
                    j = b;
                    cursor = b;
                }
                _ => break,
            }
        }
        let k = skip_comments(toks, cursor + 1);
        if toks.get(k).is_some_and(|t| t.is_punct("(")) {
            let method = segs.len() == 1 && prev_code_tok(toks, i).is_some_and(|t| t.is_punct("."));
            out.push(CallSite {
                path: segs,
                method,
                line: toks[j].line,
                tok: j,
            });
        }
        i = cursor + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        parse(&SourceFile::analyze("crates/x/src/lib.rs", src))
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    fn call_paths(f: &FnItem) -> Vec<String> {
        f.calls.iter().map(|c| c.path.join("::")).collect()
    }

    #[test]
    fn records_module_paths_and_impl_types() {
        let src = "\
mod outer {
    mod inner {
        fn deep() {}
    }
    struct S;
    impl S {
        fn method(&self) {}
    }
    impl std::fmt::Display for S {
        fn fmt(&self) {}
    }
}
";
        let p = parsed(src);
        assert_eq!(fn_named(&p, "deep").module_path, vec!["outer", "inner"]);
        let m = fn_named(&p, "method");
        assert_eq!(m.module_path, vec!["outer"]);
        assert_eq!(m.impl_type.as_deref(), Some("S"));
        assert_eq!(fn_named(&p, "fmt").impl_type.as_deref(), Some("S"));
    }

    #[test]
    fn generic_impl_headers_resolve_self_type() {
        let src = "\
impl<W: Write + Send> TaggedLineWriter<W> {
    fn new() {}
}
impl<T> From<Vec<T>> for Holder<T> where T: Clone {
    fn from() {}
}
";
        let p = parsed(src);
        assert_eq!(
            fn_named(&p, "new").impl_type.as_deref(),
            Some("TaggedLineWriter")
        );
        assert_eq!(fn_named(&p, "from").impl_type.as_deref(), Some("Holder"));
    }

    #[test]
    fn collects_calls_with_paths_and_methods() {
        let src = "\
fn caller() {
    helper();
    crate::sub::helper2();
    x.method_one().method_two();
    Vec::<u8>::with_capacity(4);
    y.collect::<Vec<_>>();
    not_a_call;
    macro_not_call!(arg);
    if (a) {}
}
";
        let p = parsed(src);
        let f = fn_named(&p, "caller");
        assert_eq!(
            call_paths(f),
            vec![
                "helper",
                "crate::sub::helper2",
                "method_one",
                "method_two",
                "Vec::with_capacity",
                "collect",
            ]
        );
        assert!(f.calls[2].method && f.calls[3].method);
        assert!(!f.calls[0].method && !f.calls[4].method);
    }

    #[test]
    fn nested_fn_calls_belong_to_the_nested_item() {
        let src = "\
fn outer() {
    fn inner() { inner_call(); }
    outer_call();
    let clo = |x: usize| closure_call(x);
    clo(1);
}
";
        let p = parsed(src);
        assert_eq!(
            call_paths(fn_named(&p, "outer")),
            vec!["outer_call", "closure_call", "clo"]
        );
        assert_eq!(call_paths(fn_named(&p, "inner")), vec!["inner_call"]);
    }

    #[test]
    fn use_aliases_including_groups_and_self() {
        let src = "\
use crate::stitch::extract_window_into;
use cfaopc_fft::parallel as par;
use a::b::{c, d as dd, e::{f, self}};
use ignored::*;
fn f() {}
";
        let p = parsed(src);
        let aliases: Vec<(String, String)> = p
            .uses
            .iter()
            .map(|u| (u.alias.clone(), u.path.join("::")))
            .collect();
        assert_eq!(
            aliases,
            vec![
                (
                    "extract_window_into".into(),
                    "crate::stitch::extract_window_into".into()
                ),
                ("par".into(), "cfaopc_fft::parallel".into()),
                ("c".into(), "a::b::c".into()),
                ("dd".into(), "a::b::d".into()),
                ("f".into(), "a::b::e::f".into()),
                ("e".into(), "a::b::e".into()),
            ]
        );
    }

    #[test]
    fn test_scope_carries_to_items() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn t() {}
}
";
        let p = parsed(src);
        assert!(!fn_named(&p, "live").in_test_scope);
        assert!(fn_named(&p, "t").in_test_scope);
    }

    #[test]
    fn malformed_input_parses_without_panicking() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "use ;",
            "use a::{b,",
            "mod m {",
            "fn f() { x.(); ::; a::<(); }",
            "impl<T for {}",
        ] {
            let _ = parsed(src);
        }
    }
}
