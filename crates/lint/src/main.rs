//! `cfaopc-lint` command-line interface.
//!
//! ```text
//! cfaopc-lint [--check] [--root DIR] [--json FILE] [--callgraph FILE]
//!             [--baseline FILE] [--hotpaths FILE] [--update-baseline]
//!             [--explain RULE]
//! ```
//!
//! Exit codes: 0 clean, 1 new findings, 2 stale baseline or stale
//! manifest, 3 internal error (I/O or config parse failure).

use std::path::PathBuf;
use std::process::ExitCode;

use cfaopc_lint::rules::{rule_info, CATALOG};
use cfaopc_lint::{run, RunOptions, EXIT_INTERNAL};

struct Cli {
    opts: RunOptions,
    json_out: Option<PathBuf>,
    callgraph_out: Option<PathBuf>,
    explain: Option<String>,
    update_baseline: bool,
}

fn usage() -> &'static str {
    "usage: cfaopc-lint [--check] [--root DIR] [--json FILE] \
     [--callgraph FILE] [--baseline FILE] [--hotpaths FILE] \
     [--update-baseline] [--explain RULE]\n\
     \n\
     Checks the workspace against the contract rules L1-L8 and the\n\
     committed baseline (lint/baseline.json). `--explain L3` (or a rule\n\
     slug) prints a rule's rationale and fix; `--callgraph FILE` writes\n\
     the resolved workspace call graph as JSON. Exit codes: 0 clean,\n\
     1 new findings, 2 stale baseline or stale manifest, 3 internal error."
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: RunOptions {
            root: PathBuf::from("."),
            hotpaths: None,
            baseline: None,
        },
        json_out: None,
        callgraph_out: None,
        explain: None,
        update_baseline: false,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg {
            "--check" => {} // enforcing is the default; kept for CI readability
            "--update-baseline" => cli.update_baseline = true,
            "--root" => cli.opts.root = PathBuf::from(value(&mut i)?),
            "--json" => cli.json_out = Some(PathBuf::from(value(&mut i)?)),
            "--callgraph" => cli.callgraph_out = Some(PathBuf::from(value(&mut i)?)),
            "--baseline" => cli.opts.baseline = Some(PathBuf::from(value(&mut i)?)),
            "--hotpaths" => cli.opts.hotpaths = Some(PathBuf::from(value(&mut i)?)),
            "--explain" => cli.explain = Some(value(&mut i)?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(cli)
}

fn explain(query: &str) -> ExitCode {
    match rule_info(query) {
        Some(r) => {
            println!("{} ({})", r.id, r.name);
            println!("\n  why:     {}", r.rationale);
            println!("\n  example: {}", r.example);
            println!("\n  fix:     {}", r.fix);
            ExitCode::SUCCESS
        }
        None => {
            let known: Vec<String> = CATALOG
                .iter()
                .map(|r| format!("{} ({})", r.id, r.name))
                .collect();
            eprintln!(
                "cfaopc-lint: unknown rule `{query}`; known rules:\n  {}",
                known.join("\n  ")
            );
            exit(EXIT_INTERNAL)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("cfaopc-lint: {msg}\n{}", usage());
            return exit(EXIT_INTERNAL);
        }
    };

    if let Some(query) = &cli.explain {
        return explain(query);
    }

    let report = match run(&cli.opts) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cfaopc-lint: internal error: {err}");
            return exit(EXIT_INTERNAL);
        }
    };

    if let Some(path) = &cli.json_out {
        let text = report.to_json().to_string_pretty();
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("cfaopc-lint: writing {}: {err}", path.display());
            return exit(EXIT_INTERNAL);
        }
    }

    if let Some(path) = &cli.callgraph_out {
        let text = report.callgraph.to_string_pretty();
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("cfaopc-lint: writing {}: {err}", path.display());
            return exit(EXIT_INTERNAL);
        }
    }

    if cli.update_baseline {
        let path = cli
            .opts
            .baseline
            .clone()
            .unwrap_or_else(|| cli.opts.root.join("lint/baseline.json"));
        let updated = report.baseline.updated_from(&report.raw_findings);
        let text = updated.to_json().to_string_pretty();
        if let Err(err) = std::fs::write(&path, text) {
            eprintln!("cfaopc-lint: writing {}: {err}", path.display());
            return exit(EXIT_INTERNAL);
        }
        println!(
            "cfaopc-lint: wrote {} entries to {} (review any UNREVIEWED justifications)",
            updated.entries.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    print!("{}", report.render_text());
    exit(report.exit_code())
}

fn exit(code: i32) -> ExitCode {
    ExitCode::from(code.clamp(0, u8::MAX as i32) as u8)
}
