//! `cfaopc-lint` command-line interface.
//!
//! ```text
//! cfaopc-lint [--check] [--root DIR] [--json FILE]
//!             [--baseline FILE] [--hotpaths FILE] [--update-baseline]
//! ```
//!
//! Exit codes: 0 clean, 1 new findings, 2 stale baseline, 3 internal
//! error (I/O or config parse failure).

use std::path::PathBuf;
use std::process::ExitCode;

use cfaopc_lint::{run, RunOptions, EXIT_INTERNAL};

struct Cli {
    opts: RunOptions,
    json_out: Option<PathBuf>,
    update_baseline: bool,
}

fn usage() -> &'static str {
    "usage: cfaopc-lint [--check] [--root DIR] [--json FILE] \
     [--baseline FILE] [--hotpaths FILE] [--update-baseline]\n\
     \n\
     Checks the workspace against the contract rules L1-L5 and the\n\
     committed baseline (lint/baseline.json). Exit codes: 0 clean,\n\
     1 new findings, 2 stale baseline, 3 internal error."
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: RunOptions {
            root: PathBuf::from("."),
            hotpaths: None,
            baseline: None,
        },
        json_out: None,
        update_baseline: false,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<PathBuf, String> {
            *i += 1;
            args.get(*i)
                .map(PathBuf::from)
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg {
            "--check" => {} // enforcing is the default; kept for CI readability
            "--update-baseline" => cli.update_baseline = true,
            "--root" => cli.opts.root = value(&mut i)?,
            "--json" => cli.json_out = Some(value(&mut i)?),
            "--baseline" => cli.opts.baseline = Some(value(&mut i)?),
            "--hotpaths" => cli.opts.hotpaths = Some(value(&mut i)?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("cfaopc-lint: {msg}\n{}", usage());
            return exit(EXIT_INTERNAL);
        }
    };

    let report = match run(&cli.opts) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cfaopc-lint: internal error: {err}");
            return exit(EXIT_INTERNAL);
        }
    };

    if let Some(path) = &cli.json_out {
        let text = report.to_json().to_string_pretty();
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("cfaopc-lint: writing {}: {err}", path.display());
            return exit(EXIT_INTERNAL);
        }
    }

    if cli.update_baseline {
        let path = cli
            .opts
            .baseline
            .clone()
            .unwrap_or_else(|| cli.opts.root.join("lint/baseline.json"));
        let updated = report.baseline.updated_from(&report.raw_findings);
        let text = updated.to_json().to_string_pretty();
        if let Err(err) = std::fs::write(&path, text) {
            eprintln!("cfaopc-lint: writing {}: {err}", path.display());
            return exit(EXIT_INTERNAL);
        }
        println!(
            "cfaopc-lint: wrote {} entries to {} (review any UNREVIEWED justifications)",
            updated.entries.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    print!("{}", report.render_text());
    exit(report.exit_code())
}

fn exit(code: i32) -> ExitCode {
    ExitCode::from(code.clamp(0, u8::MAX as i32) as u8)
}
