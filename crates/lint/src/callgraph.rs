//! Workspace-wide call graph over the parsed item trees.
//!
//! Resolution is deliberately approximate but *predictably* so:
//!
//! * unqualified calls prefer same-file candidates (innermost module
//!   first), then fall back to every same-named fn in the workspace —
//!   ambiguity over-approximates, so reachability rules stay sound;
//! * qualified calls (`a::b::f(…)`) match each qualifier against the
//!   candidate's crate name (`cfaopc_fft` ↔ `crates/fft`), file stem,
//!   module path and `impl` type; paths whose qualifiers match nothing in
//!   the workspace are treated as external (std) and get no edge;
//! * method calls (`x.f(…)`) have no receiver type information: they
//!   resolve only when the workspace defines exactly one fn with that
//!   name (and the name is not a ubiquitous std-trait method); anything
//!   else is an unknown callee with no edge.
//!
//! The closure computation is a plain BFS with a visited set, so cycles
//! (recursion) terminate, and each reached node remembers its BFS parent
//! so findings can print a call chain.

use std::collections::BTreeMap;

use crate::analyze::SourceFile;
use crate::json::Json;
use crate::parser::{self, CallSite, ParsedFile};

/// One analyzed file plus its parsed item tree.
pub struct FileEntry<'a> {
    /// The lexed/classified source.
    pub source: &'a SourceFile,
    /// The parsed items.
    pub parsed: ParsedFile,
}

/// All analyzed files of one lint run.
pub struct Workspace<'a> {
    /// Files in scan order (sorted by relative path by the caller).
    pub files: Vec<FileEntry<'a>>,
}

impl<'a> Workspace<'a> {
    /// Parses every file into the workspace item tree.
    pub fn new(sources: &'a [SourceFile]) -> Workspace<'a> {
        Workspace {
            files: sources
                .iter()
                .map(|source| FileEntry {
                    source,
                    parsed: parser::parse(source),
                })
                .collect(),
        }
    }

    /// The entry for a workspace-relative path.
    pub fn file(&self, rel: &str) -> Option<&FileEntry<'a>> {
        self.files.iter().find(|f| f.source.rel == rel)
    }
}

/// One fn in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into `Workspace::files`.
    pub file_idx: usize,
    /// Index into that file's `parsed.fns`.
    pub item_idx: usize,
    /// Workspace-relative file path.
    pub file: String,
    /// Crate directory name (empty for the root crate).
    pub crate_name: String,
    /// The fn's name.
    pub name: String,
    /// Enclosing inline module path.
    pub module_path: Vec<String>,
    /// Surrounding `impl` block's `Self` type, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn sits in test scope.
    pub in_test_scope: bool,
}

/// Std-trait method names too ubiquitous to attribute to a workspace fn
/// from a `receiver.name(…)` call, even when the workspace happens to
/// define exactly one fn with the name.
const COMMON_METHODS: &[&str] = &[
    "add",
    "as_mut",
    "as_ref",
    "borrow",
    "borrow_mut",
    "clone",
    "cmp",
    "default",
    "deref",
    "deref_mut",
    "div",
    "drop",
    "eq",
    "fill",
    "fmt",
    "flush",
    "from",
    "get",
    "hash",
    "index",
    "index_mut",
    "insert",
    "into",
    "into_iter",
    "iter",
    "iter_mut",
    "len",
    "map",
    "mul",
    "ne",
    "neg",
    "next",
    "not",
    "partial_cmp",
    "pop",
    "push",
    "read",
    "spawn",
    "sub",
    "to_owned",
    "to_string",
    "try_from",
    "try_into",
    "write",
];

/// The resolved call graph: `edges[i]` lists the callee node indices of
/// node `i`, sorted and deduplicated.
pub struct CallGraph {
    /// All workspace fns, in (file, source) order.
    pub nodes: Vec<FnNode>,
    /// Adjacency lists, aligned with `nodes`.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph for a workspace.
    pub fn build(ws: &Workspace<'_>) -> CallGraph {
        let mut nodes = Vec::new();
        for (file_idx, entry) in ws.files.iter().enumerate() {
            for (item_idx, item) in entry.parsed.fns.iter().enumerate() {
                nodes.push(FnNode {
                    file_idx,
                    item_idx,
                    file: entry.source.rel.clone(),
                    crate_name: entry.source.role.crate_name.clone(),
                    name: item.name.clone(),
                    module_path: item.module_path.clone(),
                    impl_type: item.impl_type.clone(),
                    line: item.line,
                    in_test_scope: item.in_test_scope,
                });
            }
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            by_name.entry(node.name.as_str()).or_default().push(i);
        }
        let mut edges = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            let entry = &ws.files[node.file_idx];
            let item = &entry.parsed.fns[node.item_idx];
            let mut out = Vec::new();
            for call in &item.calls {
                out.extend(resolve(call, i, &nodes, &by_name, entry));
            }
            out.sort_unstable();
            out.dedup();
            out.retain(|&callee| callee != i); // self-recursion is a no-op edge
            edges.push(out);
        }
        CallGraph { nodes, edges }
    }

    /// All nodes for a `(file, fn name)` pair.
    pub fn find(&self, file: &str, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS closure from `seeds`. Cycles terminate via the visited set.
    pub fn closure(&self, seeds: &[usize]) -> Closure {
        let mut reached = vec![false; self.nodes.len()];
        let mut parent = vec![None; self.nodes.len()];
        let mut seed_of = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &s in seeds {
            if s < reached.len() && !reached[s] {
                reached[s] = true;
                seed_of[s] = Some(s);
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if !reached[m] {
                    reached[m] = true;
                    parent[m] = Some(n);
                    seed_of[m] = seed_of[n];
                    queue.push_back(m);
                }
            }
        }
        Closure {
            reached,
            parent,
            seed_of,
        }
    }

    /// The BFS call chain seed → … → `node`, as fn names.
    pub fn chain<'c>(&'c self, closure: &Closure, node: usize) -> Vec<&'c str> {
        let mut names = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            names.push(self.nodes[n].name.as_str());
            cur = closure.parent[n];
        }
        names.reverse();
        names
    }

    /// JSON export for the CI artifact: node table plus `[from, to]`
    /// edge pairs, both in deterministic order.
    pub fn to_json(&self) -> Json {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                Json::Obj(vec![
                    ("file".into(), Json::Str(n.file.clone())),
                    ("fn".into(), Json::Str(n.name.clone())),
                    ("line".into(), Json::int(n.line as usize)),
                    ("test".into(), Json::Bool(n.in_test_scope)),
                ])
            })
            .collect();
        let mut pairs = Vec::new();
        for (from, callees) in self.edges.iter().enumerate() {
            for &to in callees {
                pairs.push(Json::Arr(vec![Json::int(from), Json::int(to)]));
            }
        }
        Json::Obj(vec![
            ("nodes".into(), Json::Arr(nodes)),
            ("edges".into(), Json::Arr(pairs)),
        ])
    }
}

/// Result of a reachability closure.
pub struct Closure {
    /// Whether each node is reachable from any seed.
    pub reached: Vec<bool>,
    /// BFS tree parent of each reached node (`None` for seeds).
    pub parent: Vec<Option<usize>>,
    /// The seed each reached node was first reached from.
    pub seed_of: Vec<Option<usize>>,
}

/// Resolves one call site to candidate callee nodes.
fn resolve(
    call: &CallSite,
    caller: usize,
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    entry: &FileEntry<'_>,
) -> Vec<usize> {
    let Some(last) = call.path.last() else {
        return Vec::new();
    };
    if call.method {
        if COMMON_METHODS.contains(&last.as_str()) {
            return Vec::new();
        }
        // No receiver type: resolve only a workspace-unique name,
        // otherwise the callee is unknown (no edge).
        return match by_name.get(last.as_str()) {
            Some(c) if c.len() == 1 => c.clone(),
            _ => Vec::new(),
        };
    }
    // Expand a leading `use` alias (`use a::b as c; c::f()` → `a::b::f()`).
    let mut path: Vec<&str> = call.path.iter().map(|s| s.as_str()).collect();
    let expanded: Vec<String>;
    if let Some(alias) = entry.parsed.uses.iter().find(|u| u.alias == path[0]) {
        let mut full: Vec<String> = alias.path.clone();
        full.extend(path[1..].iter().map(|s| s.to_string()));
        expanded = full;
        path = expanded.iter().map(|s| s.as_str()).collect();
    }
    let (quals, name) = match path.split_last() {
        Some((name, quals)) => (quals, *name),
        None => return Vec::new(),
    };
    let Some(candidates) = by_name.get(name) else {
        return Vec::new(); // external (std or dependency-free) call
    };
    let caller_node = &nodes[caller];
    if quals.is_empty() {
        // Same file, same module wins; then an ancestor module in the
        // same file (deepest first); then any same-file fn; then every
        // same-named fn in the workspace (conservative ambiguity).
        let same_file: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| nodes[c].file_idx == caller_node.file_idx)
            .collect();
        let exact: Vec<usize> = same_file
            .iter()
            .copied()
            .filter(|&c| nodes[c].module_path == caller_node.module_path)
            .collect();
        if !exact.is_empty() {
            return exact;
        }
        let mut ancestors: Vec<usize> = same_file
            .iter()
            .copied()
            .filter(|&c| caller_node.module_path.starts_with(&nodes[c].module_path))
            .collect();
        if !ancestors.is_empty() {
            let deepest = ancestors.iter().map(|&c| nodes[c].module_path.len()).max();
            ancestors.retain(|&c| Some(nodes[c].module_path.len()) == deepest);
            return ancestors;
        }
        if !same_file.is_empty() {
            return same_file;
        }
        return candidates.clone();
    }
    // Qualified: every qualifier must match something the candidate is
    // known by; otherwise the path points outside the workspace.
    candidates
        .iter()
        .copied()
        .filter(|&c| quals.iter().all(|q| qual_matches(q, c, caller, nodes)))
        .collect()
}

/// Whether one path qualifier is compatible with a candidate callee.
fn qual_matches(qual: &str, candidate: usize, caller: usize, nodes: &[FnNode]) -> bool {
    let cand = &nodes[candidate];
    let caller_node = &nodes[caller];
    match qual {
        "crate" | "self" | "super" => cand.crate_name == caller_node.crate_name,
        "Self" => {
            cand.crate_name == caller_node.crate_name
                && caller_node.impl_type.is_some()
                && cand.impl_type == caller_node.impl_type
        }
        _ => {
            let crate_match = qual == cand.crate_name
                || qual.strip_prefix("cfaopc_") == Some(cand.crate_name.as_str())
                || qual.replace('-', "_") == format!("cfaopc_{}", cand.crate_name);
            let stem = cand
                .file
                .rsplit('/')
                .next()
                .and_then(|f| f.strip_suffix(".rs"))
                .unwrap_or("");
            crate_match
                || qual == stem
                || cand.module_path.iter().any(|m| m == qual)
                || cand.impl_type.as_deref() == Some(qual)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(files: &[(&str, &str)]) -> Vec<SourceFile> {
        files
            .iter()
            .map(|(rel, src)| SourceFile::analyze(rel, src))
            .collect()
    }

    fn callee_names(g: &CallGraph, file: &str, name: &str) -> Vec<String> {
        let callers = g.find(file, name);
        assert_eq!(callers.len(), 1, "ambiguous caller {file}:{name}");
        g.edges[callers[0]]
            .iter()
            .map(|&c| format!("{}:{}", g.nodes[c].file, g.nodes[c].name))
            .collect()
    }

    #[test]
    fn shadowed_names_resolve_to_the_callers_module() {
        let srcs = sources(&[(
            "crates/x/src/lib.rs",
            "mod a {\n    fn helper() {}\n    fn go() { helper(); }\n}\nmod b {\n    fn helper() {}\n}\n",
        )]);
        let ws = Workspace::new(&srcs);
        let g = CallGraph::build(&ws);
        let callers = g.find("crates/x/src/lib.rs", "go");
        assert_eq!(callers.len(), 1);
        let callees = &g.edges[callers[0]];
        assert_eq!(callees.len(), 1);
        assert_eq!(g.nodes[callees[0]].module_path, vec!["a"]);
    }

    #[test]
    fn use_as_alias_resolves_across_files() {
        let srcs = sources(&[
            (
                "crates/x/src/caller.rs",
                "use crate::deep::real_helper as h;\nfn go() { h(); }\n",
            ),
            ("crates/x/src/deep.rs", "pub fn real_helper() {}\n"),
            ("crates/y/src/other.rs", "pub fn unrelated() {}\n"),
        ]);
        let ws = Workspace::new(&srcs);
        let g = CallGraph::build(&ws);
        assert_eq!(
            callee_names(&g, "crates/x/src/caller.rs", "go"),
            vec!["crates/x/src/deep.rs:real_helper"]
        );
    }

    #[test]
    fn trait_method_calls_fall_back_to_unknown_callee() {
        // Two same-named methods on different types: a `.run()` call has
        // no receiver type, so neither may be assumed.
        let srcs = sources(&[(
            "crates/x/src/lib.rs",
            "struct A; struct B;\nimpl A { fn run(&self) {} }\nimpl B { fn run(&self) {} }\nfn go(x: &A) { x.run(); }\n",
        )]);
        let ws = Workspace::new(&srcs);
        let g = CallGraph::build(&ws);
        assert_eq!(
            callee_names(&g, "crates/x/src/lib.rs", "go"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn unique_method_name_resolves() {
        let srcs = sources(&[(
            "crates/x/src/lib.rs",
            "struct Pool;\nimpl Pool { fn take_buffer(&self) {} }\nfn go(p: &Pool) { p.take_buffer(); }\n",
        )]);
        let ws = Workspace::new(&srcs);
        let g = CallGraph::build(&ws);
        assert_eq!(
            callee_names(&g, "crates/x/src/lib.rs", "go"),
            vec!["crates/x/src/lib.rs:take_buffer"]
        );
    }

    #[test]
    fn ubiquitous_trait_methods_never_resolve() {
        let srcs = sources(&[(
            "crates/x/src/lib.rs",
            "struct S;\nimpl Clone for S { fn clone(&self) -> S { S } }\nfn go(s: &S) { s.clone(); }\n",
        )]);
        let ws = Workspace::new(&srcs);
        let g = CallGraph::build(&ws);
        assert_eq!(
            callee_names(&g, "crates/x/src/lib.rs", "go"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn qualified_external_paths_get_no_edge() {
        let srcs = sources(&[(
            "crates/x/src/lib.rs",
            "fn new() {}\nfn go() { std::vec::Vec::<u8>::new(); mem::take(); }\nfn take() {}\n",
        )]);
        let ws = Workspace::new(&srcs);
        let g = CallGraph::build(&ws);
        // `Vec::new` and `mem::take` have qualifiers matching nothing in
        // the workspace, so the same-named local fns are not edges.
        assert_eq!(
            callee_names(&g, "crates/x/src/lib.rs", "go"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn ambiguous_unqualified_calls_over_approximate() {
        let srcs = sources(&[
            ("crates/x/src/a.rs", "pub fn shared() {}\n"),
            ("crates/y/src/b.rs", "pub fn shared() {}\n"),
            ("crates/z/src/c.rs", "pub fn go() { shared(); }\n"),
        ]);
        let ws = Workspace::new(&srcs);
        let g = CallGraph::build(&ws);
        assert_eq!(
            callee_names(&g, "crates/z/src/c.rs", "go"),
            vec!["crates/x/src/a.rs:shared", "crates/y/src/b.rs:shared"]
        );
    }

    #[test]
    fn recursion_terminates_and_reaches() {
        let srcs = sources(&[(
            "crates/x/src/lib.rs",
            "fn a() { b(); }\nfn b() { a(); leaf(); }\nfn leaf() {}\n",
        )]);
        let ws = Workspace::new(&srcs);
        let g = CallGraph::build(&ws);
        let seeds = g.find("crates/x/src/lib.rs", "a");
        let cl = g.closure(&seeds);
        let leaf = g.find("crates/x/src/lib.rs", "leaf")[0];
        assert!(cl.reached[leaf]);
        assert_eq!(g.chain(&cl, leaf), vec!["a", "b", "leaf"]);
    }

    #[test]
    fn crate_qualifiers_match_cfaopc_naming() {
        let srcs = sources(&[
            ("crates/fft/src/parallel.rs", "pub fn par_map() {}\n"),
            (
                "crates/chip/src/harness.rs",
                "use cfaopc_fft::parallel as par;\nfn go() { par::par_map(); cfaopc_fft::parallel::par_map(); }\n",
            ),
        ]);
        let ws = Workspace::new(&srcs);
        let g = CallGraph::build(&ws);
        assert_eq!(
            callee_names(&g, "crates/chip/src/harness.rs", "go"),
            vec!["crates/fft/src/parallel.rs:par_map"]
        );
    }
}
