//! Zero-dependency observability for the CFAOPC stack.
//!
//! Production curvy-mask flows are throughput pipelines: without
//! per-stage timing and counters, a slow (or diverging) run is a black
//! box. This crate provides the three primitives the rest of the
//! workspace threads through its hot paths, all `std`-only:
//!
//! * **Counters** ([`counters`]) — process-wide atomic event counters
//!   (FFTs executed, pool regions opened, tiles rendered vs. skipped,
//!   circles pruned). Incrementing is a single relaxed atomic add, gated
//!   behind the global [`enabled`] flag so the disabled cost is one
//!   relaxed load and a predictable branch.
//! * **Spans** ([`span`]) — hierarchical monotonic timers. Entering a
//!   span records its parent from a thread-local cursor, so nested spans
//!   aggregate into a call tree ([`span_snapshot`]). Span bookkeeping
//!   allocates only the first time a `(parent, name)` pair is seen;
//!   steady-state enter/exit is allocation-free.
//! * **Telemetry sinks** ([`TelemetrySink`]) — per-iteration records
//!   ([`IterationRecord`]) emitted by the optimizers: loss terms,
//!   sparsity, active shots, gradient norms. [`MemorySink`] collects
//!   into a pre-allocated buffer (allocation-free once warm);
//!   [`JsonlSink`] streams JSON lines through a reusable format buffer.
//!
//! Tracing is **opt-in** ([`set_enabled`]) and strictly observational:
//! attaching a sink or enabling counters never changes what the
//! optimizers compute — outputs are bit-identical either way.
//!
//! The numerical-health guards in `cfaopc-ilt`/`cfaopc-core` use
//! [`grad_norms`] to fold the gradient scan they already need for
//! telemetry into their NaN/Inf sentinels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

mod sink;

pub use sink::{IterationRecord, JsonlSink, MemorySink, Stage, TelemetrySink};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables tracing (counters and spans).
///
/// Disabled is the default; in that state counters skip their atomic add
/// and [`span`] returns an inert guard, so the overhead on hot paths is
/// one relaxed load each.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A named process-wide event counter.
///
/// All counters live in [`counters`]; they only advance while tracing is
/// [`enabled`], and increments are relaxed atomic adds (safe from pool
/// worker threads).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's stable snake_case name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events (no-op while tracing is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event (no-op while tracing is disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// The workspace counter inventory.
///
/// | Counter | Incremented by |
/// |---|---|
/// | `fft_2d` | every 2-D FFT execution (parallel or serial) |
/// | `pool_regions` | every parallel region opened on the worker pool |
/// | `tiles_rendered` | composition tiles cleared + rendered |
/// | `tiles_skipped` | composition tiles skipped (untouched twice over) |
/// | `circles_pruned` | circles dropped by the hard-max `q_floor` |
/// | `nonfinite_aborts` | runs terminated by the numerical-health guard |
/// | `compose_render_ns` | wall ns inside composition render regions |
/// | `backward_scan_ns` | wall ns inside fused-backward band scans |
/// | `backward_merge_ns` | wall ns merging backward band partials |
pub mod counters {
    use super::Counter;

    /// 2-D FFT executions (forward + inverse, parallel + serial).
    pub static FFT_2D: Counter = Counter::new("fft_2d");
    /// Parallel regions opened on the persistent worker pool.
    pub static POOL_REGIONS: Counter = Counter::new("pool_regions");
    /// Composition tiles cleared and rendered.
    pub static TILES_RENDERED: Counter = Counter::new("tiles_rendered");
    /// Composition tiles skipped (no circle now or on the previous render).
    pub static TILES_SKIPPED: Counter = Counter::new("tiles_skipped");
    /// Circles pruned from the hard-max passes by the activation floor.
    pub static CIRCLES_PRUNED: Counter = Counter::new("circles_pruned");
    /// Optimizer runs aborted by the NaN/Inf health guard.
    pub static NONFINITE_ABORTS: Counter = Counter::new("nonfinite_aborts");
    /// Nanoseconds spent in composition render regions (wall time around
    /// the dynamic tile-claiming region, accumulated per compose).
    pub static COMPOSE_RENDER_NS: Counter = Counter::new("compose_render_ns");
    /// Nanoseconds spent in the fused backward band-scan regions.
    pub static BACKWARD_SCAN_NS: Counter = Counter::new("backward_scan_ns");
    /// Nanoseconds spent merging backward band partials (ordered
    /// reduction on the calling thread).
    pub static BACKWARD_MERGE_NS: Counter = Counter::new("backward_merge_ns");

    /// Every counter, in inventory order.
    pub fn all() -> [&'static Counter; 9] {
        [
            &FFT_2D,
            &POOL_REGIONS,
            &TILES_RENDERED,
            &TILES_SKIPPED,
            &CIRCLES_PRUNED,
            &NONFINITE_ABORTS,
            &COMPOSE_RENDER_NS,
            &BACKWARD_SCAN_NS,
            &BACKWARD_MERGE_NS,
        ]
    }
}

/// Snapshot of every counter as `(name, value)` pairs.
pub fn counter_snapshot() -> Vec<(&'static str, u64)> {
    counters::all()
        .iter()
        .map(|c| (c.name(), c.get()))
        .collect()
}

// --- spans ------------------------------------------------------------------

const ROOT: usize = usize::MAX;

struct SpanNode {
    name: &'static str,
    parent: usize,
    calls: u64,
    total_ns: u64,
}

static SPANS: Mutex<Vec<SpanNode>> = Mutex::new(Vec::new());

thread_local! {
    /// The innermost open span on this thread (`ROOT` = none).
    static CURRENT: Cell<usize> = const { Cell::new(ROOT) };
}

/// Aggregated timing of one span node in the call tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name as passed to [`span`].
    pub name: &'static str,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Times the span was entered.
    pub calls: u64,
    /// Total time spent inside, nanoseconds (includes children).
    pub total_ns: u64,
}

/// RAII guard returned by [`span`]; records the elapsed time on drop.
#[must_use = "a span measures the scope it is bound to"]
pub struct SpanGuard {
    node: usize,
    prev: usize,
    start: Instant,
}

/// Opens a hierarchical timing span named `name` on this thread.
///
/// While tracing is disabled this returns an inert guard and records
/// nothing. Nested spans attach under the innermost open span of the
/// current thread; the same `(parent, name)` pair aggregates into one
/// node, so steady-state enter/exit performs no allocation — only a
/// mutex-guarded counter update.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            node: ROOT,
            prev: ROOT,
            start: Instant::now(),
        };
    }
    let prev = CURRENT.with(|c| c.get());
    let mut nodes = SPANS.lock().unwrap_or_else(|e| e.into_inner());
    let node = nodes
        .iter()
        .position(|n| n.parent == prev && n.name == name)
        .unwrap_or_else(|| {
            nodes.push(SpanNode {
                name,
                parent: prev,
                calls: 0,
                total_ns: 0,
            });
            nodes.len() - 1
        });
    drop(nodes);
    CURRENT.with(|c| c.set(node));
    SpanGuard {
        node,
        prev,
        start: Instant::now(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.node == ROOT {
            return;
        }
        let elapsed = self.start.elapsed().as_nanos() as u64;
        CURRENT.with(|c| c.set(self.prev));
        let mut nodes = SPANS.lock().unwrap_or_else(|e| e.into_inner());
        let n = &mut nodes[self.node];
        n.calls += 1;
        n.total_ns += elapsed;
    }
}

/// The span call tree in preorder (parents before children).
pub fn span_snapshot() -> Vec<SpanStat> {
    let nodes = SPANS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::with_capacity(nodes.len());
    fn walk(nodes: &[SpanNode], parent: usize, depth: usize, out: &mut Vec<SpanStat>) {
        for (i, n) in nodes.iter().enumerate() {
            if n.parent == parent {
                out.push(SpanStat {
                    name: n.name,
                    depth,
                    calls: n.calls,
                    total_ns: n.total_ns,
                });
                walk(nodes, i, depth + 1, out);
            }
        }
    }
    walk(&nodes, ROOT, 0, &mut out);
    out
}

/// Resets every counter and discards all span data (the enabled flag is
/// untouched). Intended for per-run reporting: reset, run, snapshot.
pub fn reset() {
    for c in counters::all() {
        c.reset();
    }
    SPANS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

// --- numeric helpers --------------------------------------------------------

/// The L2 and L∞ norms of a gradient slice, in one pass.
///
/// The optimizers call this every iteration: the result feeds both the
/// telemetry record and the numerical-health guard (a NaN or Inf entry
/// makes at least one of the returned norms non-finite; an L2 overflow
/// from astronomically large finite entries also trips the guard, which
/// is the right call for a gradient that size).
pub fn grad_norms(grad: &[f64]) -> (f64, f64) {
    let mut sum_sq = 0.0f64;
    let mut linf = 0.0f64;
    for &g in grad {
        sum_sq += g * g;
        let a = g.abs();
        // A NaN entry must poison the max, so take it alongside `>`.
        if a > linf || a.is_nan() {
            linf = a;
        }
    }
    (sum_sq.sqrt(), linf)
}

/// Counters and spans are process-global; tests that reset or assert on
/// them serialize through this lock (shared with the sink tests).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    fn lock() -> MutexGuard<'static, ()> {
        crate::test_lock()
    }

    #[test]
    fn counters_only_advance_while_enabled() {
        let _g = lock();
        reset();
        set_enabled(false);
        counters::FFT_2D.incr();
        assert_eq!(counters::FFT_2D.get(), 0);
        set_enabled(true);
        counters::FFT_2D.incr();
        counters::FFT_2D.add(2);
        assert_eq!(counters::FFT_2D.get(), 3);
        set_enabled(false);
        reset();
        assert_eq!(counters::FFT_2D.get(), 0);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _g = lock();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        {
            let _solo = span("outer");
        }
        set_enabled(false);
        let snap = span_snapshot();
        reset();
        let outer = snap.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.calls, 4);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.calls, 3);
        assert_eq!(inner.depth, 1, "inner must nest under outer");
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = lock();
        reset();
        set_enabled(false);
        {
            let _s = span("ghost");
        }
        assert!(span_snapshot().iter().all(|s| s.name != "ghost"));
    }

    #[test]
    fn grad_norms_basics() {
        let (l2, linf) = grad_norms(&[3.0, -4.0]);
        assert!((l2 - 5.0).abs() < 1e-12);
        assert_eq!(linf, 4.0);
        let (l2, linf) = grad_norms(&[0.0, f64::NAN]);
        assert!(l2.is_nan());
        assert!(linf.is_nan());
        let (l2, linf) = grad_norms(&[f64::INFINITY]);
        assert!(l2.is_infinite());
        assert!(linf.is_infinite());
        assert_eq!(grad_norms(&[]), (0.0, 0.0));
    }
}
