//! Per-iteration telemetry records and the sinks that receive them.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::{counter_snapshot, span_snapshot};

/// Which optimizer stage emitted a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1: pixel-domain ILT (`run_pixel_ilt`).
    PixelIlt,
    /// Stage 2: circle-level ILT (`run_circleopt`).
    CircleOpt,
}

impl Stage {
    /// Stable lowercase identifier used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::PixelIlt => "pixel_ilt",
            Stage::CircleOpt => "circleopt",
        }
    }
}

/// One optimizer iteration's worth of telemetry.
///
/// `Copy`, fixed-size, and built on the stack each iteration — emitting
/// a record never allocates on the producer side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Optimizer stage that produced the record.
    pub stage: Stage,
    /// Zero-based iteration index within the stage.
    pub iteration: usize,
    /// Fidelity (L2) loss term.
    pub loss_l2: f64,
    /// Process-variation-band loss term.
    pub loss_pvb: f64,
    /// Weighted total loss.
    pub loss_total: f64,
    /// Lasso sparsity penalty (0 for the pixel stage).
    pub sparsity: f64,
    /// Active shots: circles with `q` above the activation floor
    /// (pixel stage: pixels above the print threshold).
    pub active: usize,
    /// Gradient L2 norm.
    pub grad_l2: f64,
    /// Gradient L∞ norm.
    pub grad_linf: f64,
}

/// Receiver for per-iteration optimizer telemetry.
///
/// Implementations must not assume records arrive for every iteration —
/// a health-guard abort stops the stream early — and should avoid
/// per-record allocation if attached to hot loops (see [`MemorySink`]).
pub trait TelemetrySink {
    /// Called once per optimizer iteration, after the step's bookkeeping.
    fn record(&mut self, rec: &IterationRecord);
}

/// A no-op [`TelemetrySink`] usable where a sink is required.
impl TelemetrySink for () {
    fn record(&mut self, _rec: &IterationRecord) {}
}

/// Collects records into a pre-allocated `Vec`.
///
/// With [`MemorySink::with_capacity`] sized to the planned iteration
/// count, recording is allocation-free — this is what lets the
/// alloc-guard test run with a sink attached.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<IterationRecord>,
}

impl MemorySink {
    /// Empty sink (grows on demand).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sink pre-sized for `cap` records; recording stays allocation-free
    /// until the capacity is exceeded.
    pub fn with_capacity(cap: usize) -> Self {
        MemorySink {
            records: Vec::with_capacity(cap),
        }
    }

    /// The records received so far, in arrival order.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Drops all collected records, keeping the allocation.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl TelemetrySink for MemorySink {
    fn record(&mut self, rec: &IterationRecord) {
        self.records.push(*rec);
    }
}

/// Streams records as JSON lines (one object per record) to a writer.
///
/// A reusable `String` buffer formats each line, so steady-state
/// recording allocates nothing beyond what the underlying writer does.
/// Non-finite floats serialize as `null` to stay valid JSON.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    buf: String,
}

fn push_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(buf, "{v}");
    } else {
        buf.push_str("null");
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `out`; each record becomes one JSON line.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            buf: String::with_capacity(256),
        }
    }

    /// Writes one `{"kind":"counters",...}` line with the current
    /// counter values and one `{"kind":"span",...}` line per span node
    /// (preorder). Call after a run to append the aggregate picture.
    pub fn write_summary(&mut self) -> io::Result<()> {
        self.buf.clear();
        self.buf.push_str("{\"kind\":\"counters\"");
        for (name, value) in counter_snapshot() {
            let _ = write!(self.buf, ",\"{name}\":{value}");
        }
        self.buf.push_str("}\n");
        for s in span_snapshot() {
            let _ = writeln!(
                self.buf,
                "{{\"kind\":\"span\",\"name\":\"{}\",\"depth\":{},\"calls\":{},\"total_ns\":{}}}",
                s.name, s.depth, s.calls, s.total_ns
            );
        }
        self.out.write_all(self.buf.as_bytes())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TelemetrySink for JsonlSink<W> {
    fn record(&mut self, rec: &IterationRecord) {
        self.buf.clear();
        let _ = write!(
            self.buf,
            "{{\"kind\":\"iter\",\"stage\":\"{}\",\"iteration\":{}",
            rec.stage.as_str(),
            rec.iteration
        );
        for (key, v) in [
            ("loss_l2", rec.loss_l2),
            ("loss_pvb", rec.loss_pvb),
            ("loss_total", rec.loss_total),
            ("sparsity", rec.sparsity),
        ] {
            let _ = write!(self.buf, ",\"{key}\":");
            push_f64(&mut self.buf, v);
        }
        let _ = write!(self.buf, ",\"active\":{}", rec.active);
        self.buf.push_str(",\"grad_l2\":");
        push_f64(&mut self.buf, rec.grad_l2);
        self.buf.push_str(",\"grad_linf\":");
        push_f64(&mut self.buf, rec.grad_linf);
        self.buf.push_str("}\n");
        // Telemetry must never abort an optimization; I/O errors surface
        // at `flush` time instead.
        let _ = self.out.write_all(self.buf.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(iteration: usize) -> IterationRecord {
        IterationRecord {
            stage: Stage::CircleOpt,
            iteration,
            loss_l2: 1.5,
            loss_pvb: 0.25,
            loss_total: 1.75,
            sparsity: 3.0,
            active: 42,
            grad_l2: 0.5,
            grad_linf: 0.125,
        }
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::with_capacity(4);
        sink.record(&rec(0));
        sink.record(&rec(1));
        assert_eq!(sink.records().len(), 2);
        assert_eq!(sink.records()[1].iteration, 1);
        sink.clear();
        assert!(sink.records().is_empty());
    }

    #[test]
    fn jsonl_sink_emits_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(0));
        sink.record(&rec(7));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"stage\":\"circleopt\""));
        assert!(lines[0].contains("\"iteration\":0"));
        assert!(lines[1].contains("\"iteration\":7"));
        assert!(lines[0].contains("\"loss_total\":1.75"));
        assert!(lines[0].contains("\"active\":42"));
    }

    #[test]
    fn non_finite_values_become_null() {
        let mut sink = JsonlSink::new(Vec::new());
        let mut r = rec(0);
        r.loss_total = f64::NAN;
        r.grad_linf = f64::INFINITY;
        sink.record(&r);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"loss_total\":null"));
        assert!(text.contains("\"grad_linf\":null"));
    }

    #[test]
    fn summary_lines_are_emitted() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.write_summary().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("{\"kind\":\"counters\""));
        assert!(text.contains("\"fft_2d\":"));
    }
}
