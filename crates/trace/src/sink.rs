//! Per-iteration telemetry records and the sinks that receive them.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::{counter_snapshot, span_snapshot};

/// Which optimizer stage emitted a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1: pixel-domain ILT (`run_pixel_ilt`).
    PixelIlt,
    /// Stage 2: circle-level ILT (`run_circleopt`).
    CircleOpt,
}

impl Stage {
    /// Stable lowercase identifier used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::PixelIlt => "pixel_ilt",
            Stage::CircleOpt => "circleopt",
        }
    }
}

/// One optimizer iteration's worth of telemetry.
///
/// `Copy`, fixed-size, and built on the stack each iteration — emitting
/// a record never allocates on the producer side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Optimizer stage that produced the record.
    pub stage: Stage,
    /// Zero-based iteration index within the stage.
    pub iteration: usize,
    /// Fidelity (L2) loss term.
    pub loss_l2: f64,
    /// Process-variation-band loss term.
    pub loss_pvb: f64,
    /// Weighted total loss.
    pub loss_total: f64,
    /// Lasso sparsity penalty (0 for the pixel stage).
    pub sparsity: f64,
    /// Active shots: circles with `q` above the activation floor
    /// (pixel stage: pixels above the print threshold).
    pub active: usize,
    /// Gradient L2 norm.
    pub grad_l2: f64,
    /// Gradient L∞ norm.
    pub grad_linf: f64,
}

/// Receiver for per-iteration optimizer telemetry.
///
/// Implementations must not assume records arrive for every iteration —
/// a health-guard abort stops the stream early — and should avoid
/// per-record allocation if attached to hot loops (see [`MemorySink`]).
pub trait TelemetrySink {
    /// Called once per optimizer iteration, after the step's bookkeeping.
    fn record(&mut self, rec: &IterationRecord);
}

/// A no-op [`TelemetrySink`] usable where a sink is required.
impl TelemetrySink for () {
    fn record(&mut self, _rec: &IterationRecord) {}
}

/// Collects records into a pre-allocated `Vec`.
///
/// With [`MemorySink::with_capacity`] sized to the planned iteration
/// count, recording is allocation-free — this is what lets the
/// alloc-guard test run with a sink attached.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<IterationRecord>,
}

impl MemorySink {
    /// Empty sink (grows on demand).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sink pre-sized for `cap` records; recording stays allocation-free
    /// until the capacity is exceeded.
    pub fn with_capacity(cap: usize) -> Self {
        MemorySink {
            records: Vec::with_capacity(cap),
        }
    }

    /// The records received so far, in arrival order.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Drops all collected records, keeping the allocation.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl TelemetrySink for MemorySink {
    fn record(&mut self, rec: &IterationRecord) {
        self.records.push(*rec);
    }
}

/// Streams records as JSON lines (one object per record) to a writer.
///
/// A reusable `String` buffer formats each line, so steady-state
/// recording allocates nothing beyond what the underlying writer does.
/// Non-finite floats serialize as `null` to stay valid JSON.
///
/// Recording never aborts an optimization, but write failures are not
/// lost either: the first `io::Error` is latched, further records are
/// dropped, and the error surfaces from [`JsonlSink::flush`],
/// [`JsonlSink::write_summary`], [`JsonlSink::write_error`] and
/// [`JsonlSink::take_error`]. This is how a long-running service detects
/// that a progress-streaming client has gone away.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    buf: String,
    error: Option<io::Error>,
}

fn push_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(buf, "{v}");
    } else {
        buf.push_str("null");
    }
}

/// Appends `s` to `buf` with JSON string escaping (`"`/`\`, common
/// control characters, `\u00XX` for the rest of C0). Shared by the
/// record and summary paths so no name interpolation can emit an
/// invalid line.
fn push_escaped(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// `io::Error` is not `Clone`; reconstruct a same-kind, same-message
/// error so a latched failure can be reported more than once.
fn copy_error(e: &io::Error) -> io::Error {
    io::Error::new(e.kind(), e.to_string())
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `out`; each record becomes one JSON line.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            buf: String::with_capacity(256),
            error: None,
        }
    }

    /// The first write error seen, if any. The sink stops writing once
    /// an error is latched; callers polling between records (e.g. a
    /// streaming daemon) use this to detect a dead client without
    /// consuming the error.
    pub fn write_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Takes the latched write error, resetting the sink to a writable
    /// state (subsequent records go to the writer again).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Writes one `{"kind":"counters",...}` line with the current
    /// counter values and one `{"kind":"span",...}` line per span node
    /// (preorder). Call after a run to append the aggregate picture.
    ///
    /// Returns the latched record-path error, if one occurred, without
    /// attempting further writes.
    pub fn write_summary(&mut self) -> io::Result<()> {
        if let Some(e) = &self.error {
            return Err(copy_error(e));
        }
        self.buf.clear();
        self.buf.push_str("{\"kind\":\"counters\"");
        for (name, value) in counter_snapshot() {
            self.buf.push_str(",\"");
            push_escaped(&mut self.buf, name);
            let _ = write!(self.buf, "\":{value}");
        }
        self.buf.push_str("}\n");
        for s in span_snapshot() {
            self.buf.push_str("{\"kind\":\"span\",\"name\":\"");
            push_escaped(&mut self.buf, s.name);
            let _ = writeln!(
                self.buf,
                "\",\"depth\":{},\"calls\":{},\"total_ns\":{}}}",
                s.depth, s.calls, s.total_ns
            );
        }
        match self.out.write_all(self.buf.as_bytes()) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.error = Some(copy_error(&e));
                Err(e)
            }
        }
    }

    /// Flushes the underlying writer; returns the latched record-path
    /// error first if one occurred.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = &self.error {
            return Err(copy_error(e));
        }
        match self.out.flush() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.error = Some(copy_error(&e));
                Err(e)
            }
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TelemetrySink for JsonlSink<W> {
    fn record(&mut self, rec: &IterationRecord) {
        // Telemetry must never abort an optimization: the first I/O
        // error is latched (dropping this and later records) and
        // surfaces through `flush`/`write_summary`/`take_error`.
        if self.error.is_some() {
            return;
        }
        self.buf.clear();
        self.buf.push_str("{\"kind\":\"iter\",\"stage\":\"");
        push_escaped(&mut self.buf, rec.stage.as_str());
        let _ = write!(self.buf, "\",\"iteration\":{}", rec.iteration);
        for (key, v) in [
            ("loss_l2", rec.loss_l2),
            ("loss_pvb", rec.loss_pvb),
            ("loss_total", rec.loss_total),
            ("sparsity", rec.sparsity),
        ] {
            let _ = write!(self.buf, ",\"{key}\":");
            push_f64(&mut self.buf, v);
        }
        let _ = write!(self.buf, ",\"active\":{}", rec.active);
        self.buf.push_str(",\"grad_l2\":");
        push_f64(&mut self.buf, rec.grad_l2);
        self.buf.push_str(",\"grad_linf\":");
        push_f64(&mut self.buf, rec.grad_linf);
        self.buf.push_str("}\n");
        if let Err(e) = self.out.write_all(self.buf.as_bytes()) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(iteration: usize) -> IterationRecord {
        IterationRecord {
            stage: Stage::CircleOpt,
            iteration,
            loss_l2: 1.5,
            loss_pvb: 0.25,
            loss_total: 1.75,
            sparsity: 3.0,
            active: 42,
            grad_l2: 0.5,
            grad_linf: 0.125,
        }
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::with_capacity(4);
        sink.record(&rec(0));
        sink.record(&rec(1));
        assert_eq!(sink.records().len(), 2);
        assert_eq!(sink.records()[1].iteration, 1);
        sink.clear();
        assert!(sink.records().is_empty());
    }

    #[test]
    fn jsonl_sink_emits_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(0));
        sink.record(&rec(7));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"stage\":\"circleopt\""));
        assert!(lines[0].contains("\"iteration\":0"));
        assert!(lines[1].contains("\"iteration\":7"));
        assert!(lines[0].contains("\"loss_total\":1.75"));
        assert!(lines[0].contains("\"active\":42"));
    }

    #[test]
    fn non_finite_values_become_null() {
        let mut sink = JsonlSink::new(Vec::new());
        let mut r = rec(0);
        r.loss_total = f64::NAN;
        r.grad_linf = f64::INFINITY;
        sink.record(&r);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"loss_total\":null"));
        assert!(text.contains("\"grad_linf\":null"));
    }

    #[test]
    fn summary_lines_are_emitted() {
        let _g = crate::test_lock();
        let mut sink = JsonlSink::new(Vec::new());
        sink.write_summary().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("{\"kind\":\"counters\""));
        assert!(text.contains("\"fft_2d\":"));
    }

    /// A writer that fails every call after the first `ok_writes`.
    struct FailAfter {
        ok_writes: usize,
        written: Vec<u8>,
        attempts: usize,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.attempts += 1;
            if self.attempts > self.ok_writes {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "client gone"));
            }
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_errors_latch_and_surface() {
        let mut sink = JsonlSink::new(FailAfter {
            ok_writes: 1,
            written: Vec::new(),
            attempts: 0,
        });
        sink.record(&rec(0));
        assert!(sink.write_error().is_none(), "first write succeeds");
        sink.record(&rec(1));
        let err = sink.write_error().expect("second write must latch");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // Latched: later records are dropped without touching the writer,
        // and flush/write_summary report the original failure.
        sink.record(&rec(2));
        assert_eq!(sink.flush().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(
            sink.write_summary().unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        let taken = sink.take_error().expect("take_error returns the error");
        assert_eq!(taken.kind(), io::ErrorKind::BrokenPipe);
        assert!(sink.write_error().is_none(), "take_error clears the latch");
        let out = sink.into_inner();
        assert_eq!(out.attempts, 2, "no writes attempted after the latch");
        let text = String::from_utf8(out.written).unwrap();
        assert_eq!(text.lines().count(), 1, "only the successful record landed");
        assert!(text.contains("\"iteration\":0"));
    }

    #[test]
    fn flush_errors_latch_too() {
        struct BadFlush;
        impl Write for BadFlush {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "nope"))
            }
        }
        let mut sink = JsonlSink::new(BadFlush);
        assert_eq!(sink.flush().unwrap_err().kind(), io::ErrorKind::WouldBlock);
        assert_eq!(
            sink.write_error().map(io::Error::kind),
            Some(io::ErrorKind::WouldBlock)
        );
    }

    #[test]
    fn summary_escapes_counter_and_span_names() {
        let _g = crate::test_lock();
        crate::reset();
        crate::set_enabled(true);
        {
            let _evil = crate::span("evil \"name\"\\with\n\tstuff");
        }
        crate::set_enabled(false);
        let mut sink = JsonlSink::new(Vec::new());
        let result = sink.write_summary();
        crate::reset();
        result.unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("evil"))
            .expect("span line present");
        assert!(
            line.contains("\"name\":\"evil \\\"name\\\"\\\\with\\n\\tstuff\""),
            "escaped span name, got: {line}"
        );
        // Every emitted line must round-trip as JSON-shaped: balanced
        // quotes outside escapes is the property the bug violated.
        let quote_count = line
            .as_bytes()
            .iter()
            .enumerate()
            .filter(|&(i, &b)| b == b'"' && (i == 0 || line.as_bytes()[i - 1] != b'\\'))
            .count();
        assert_eq!(quote_count % 2, 0, "unescaped quote broke the line: {line}");
    }

    #[test]
    fn record_stage_goes_through_escape_helper() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(3));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"stage\":\"circleopt\""));
    }
}
