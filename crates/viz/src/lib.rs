//! Rendering for CFAOPC artifacts.
//!
//! Two output formats, both dependency-free:
//!
//! * **PGM** — raw grayscale dumps of real-valued grids (aerial images,
//!   dense masks) for quick inspection;
//! * **SVG** — layered scenes of target patterns, circular shots and
//!   printed contours, reproducing the look of the paper's Figure 1 and
//!   Figure 6 panels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cfaopc_fracture::CircularMask;
use cfaopc_grid::{boundary_pixels, BitGrid, Grid2D};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Serializes a real-valued grid as a binary PGM (P5), mapping
/// `[min, max]` to `[0, 255]`.
pub fn grid_to_pgm(grid: &Grid2D<f64>) -> Vec<u8> {
    let (w, h) = (grid.width(), grid.height());
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in grid.as_slice() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut out = format!("P5\n{w} {h}\n255\n").into_bytes();
    out.extend(
        grid.as_slice()
            .iter()
            .map(|&v| (255.0 * (v - lo) / span).round() as u8),
    );
    out
}

/// Writes a grid to a PGM file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_pgm(grid: &Grid2D<f64>, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, grid_to_pgm(grid))
}

/// An SVG scene over a pixel grid, built layer by layer.
///
/// # Examples
///
/// ```
/// use cfaopc_fracture::{CircleShot, CircularMask};
/// use cfaopc_grid::{fill_rect, BitGrid, Rect};
/// use cfaopc_viz::SvgScene;
///
/// let mut target = BitGrid::new(64, 64);
/// fill_rect(&mut target, Rect::new(8, 8, 56, 24));
/// let shots = CircularMask::from_shots(vec![CircleShot::new(32, 16, 8)]);
/// let svg = SvgScene::new(64, 64)
///     .mask(&target, "#4477aa", 0.35)
///     .circles(&shots, "#cc3311")
///     .finish();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("circle"));
/// ```
#[derive(Debug, Clone)]
pub struct SvgScene {
    width: usize,
    height: usize,
    body: String,
}

impl SvgScene {
    /// Creates an empty scene over a `width × height` pixel grid.
    pub fn new(width: usize, height: usize) -> Self {
        SvgScene {
            width,
            height,
            body: String::new(),
        }
    }

    /// Adds a binary mask as horizontal run-length rectangles.
    pub fn mask(mut self, mask: &BitGrid, fill: &str, opacity: f64) -> Self {
        let _ = writeln!(self.body, r#"<g fill="{fill}" fill-opacity="{opacity}">"#);
        for y in 0..mask.height() {
            let mut x = 0usize;
            while x < mask.width() {
                if mask.get(x, y) {
                    let start = x;
                    while x < mask.width() && mask.get(x, y) {
                        x += 1;
                    }
                    let _ = writeln!(
                        self.body,
                        r#"<rect x="{start}" y="{y}" width="{}" height="1"/>"#,
                        x - start
                    );
                } else {
                    x += 1;
                }
            }
        }
        self.body.push_str("</g>\n");
        self
    }

    /// Adds circular shots as stroked circles (Figure 1(b) style).
    pub fn circles(mut self, shots: &CircularMask, stroke: &str) -> Self {
        let _ = writeln!(
            self.body,
            r#"<g fill="none" stroke="{stroke}" stroke-width="0.6">"#
        );
        for s in shots.shots() {
            let _ = writeln!(
                self.body,
                r#"<circle cx="{}" cy="{}" r="{}"/>"#,
                s.x, s.y, s.r
            );
        }
        self.body.push_str("</g>\n");
        self
    }

    /// Adds the boundary of a binary image as dots — used for printed
    /// (resist) contours.
    pub fn contour(mut self, image: &BitGrid, fill: &str) -> Self {
        let boundary = boundary_pixels(image);
        let _ = writeln!(self.body, r#"<g fill="{fill}">"#);
        for p in boundary.ones() {
            let _ = writeln!(
                self.body,
                r#"<rect x="{}" y="{}" width="1" height="1"/>"#,
                p.x, p.y
            );
        }
        self.body.push_str("</g>\n");
        self
    }

    /// Finalizes the SVG document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {w} {h}\" \
             width=\"{w}\" height=\"{h}\">\n<rect width=\"{w}\" height=\"{h}\" \
             fill=\"white\"/>\n{body}</svg>\n",
            w = self.width,
            h = self.height,
            body = self.body
        )
    }

    /// Writes the finalized SVG to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_fracture::CircleShot;
    use cfaopc_grid::{fill_rect, Rect};

    #[test]
    fn pgm_header_and_size() {
        let g = Grid2D::from_vec(2, 2, vec![0.0, 0.5, 0.75, 1.0]);
        let pgm = grid_to_pgm(&g);
        assert!(pgm.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(pgm.len(), b"P5\n2 2\n255\n".len() + 4);
        assert_eq!(*pgm.last().unwrap(), 255);
    }

    #[test]
    fn pgm_constant_grid_does_not_divide_by_zero() {
        let g = Grid2D::new(3, 3, 0.7);
        let pgm = grid_to_pgm(&g);
        assert_eq!(pgm.len(), b"P5\n3 3\n255\n".len() + 9);
    }

    #[test]
    fn svg_contains_all_layers() {
        let mut mask = BitGrid::new(32, 32);
        fill_rect(&mut mask, Rect::new(4, 4, 20, 10));
        let shots = CircularMask::from_shots(vec![CircleShot::new(10, 7, 3)]);
        let svg = SvgScene::new(32, 32)
            .mask(&mask, "#123456", 0.5)
            .circles(&shots, "#abcdef")
            .contour(&mask, "#000000")
            .finish();
        assert!(svg.contains("#123456"));
        assert!(svg.contains(r#"<circle cx="10" cy="7" r="3"/>"#));
        assert!(svg.contains("viewBox=\"0 0 32 32\""));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn svg_mask_uses_run_length_rects() {
        let mut mask = BitGrid::new(8, 8);
        fill_rect(&mut mask, Rect::new(0, 0, 8, 1));
        let svg = SvgScene::new(8, 8).mask(&mask, "#fff", 1.0).finish();
        // One run, one rect.
        assert_eq!(svg.matches("<rect").count(), 2); // background + run
    }
}
