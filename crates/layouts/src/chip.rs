//! Multi-tile chip layouts for full-chip decomposition experiments.
//!
//! A [`ChipLayout`] is a `tiles_x × tiles_y` array of 2048 nm tiles with
//! one flat rectangle list in chip nanometre coordinates. Two builders
//! are provided: [`generate_chip`] (seeded random tiles plus features
//! *forced to straddle every tile seam*, so halo stitching is actually
//! exercised) and [`ChipLayout::from_tiles`] (a mosaic of existing
//! single-tile layouts, e.g. the benchmark cases).
//!
//! Seam straddlers are confined to the keep-out band the per-tile
//! generator never enters (`|coord − seam| ≤ straddle_length/2 <
//! margin`), so straddlers and tile shapes stay pairwise disjoint by
//! construction; the unit tests verify it.

use crate::{generate_layout, GeneratorConfig, Layout, TILE_NM};
use cfaopc_grid::{fill_rect, BitGrid, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A chip: `tiles_x × tiles_y` tiles of [`TILE_NM`] nm each, with all
/// rectangles in chip-level nanometre coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipLayout {
    /// Chip name, e.g. `chip3_4x4`.
    pub name: String,
    /// Tile columns.
    pub tiles_x: usize,
    /// Tile rows.
    pub tiles_y: usize,
    /// Non-overlapping rectangles in chip nanometre coordinates.
    pub rects: Vec<Rect>,
}

impl ChipLayout {
    /// Creates a chip layout from rectangles (chip nm coordinates).
    pub fn new(name: impl Into<String>, tiles_x: usize, tiles_y: usize, rects: Vec<Rect>) -> Self {
        ChipLayout {
            name: name.into(),
            tiles_x,
            tiles_y,
            rects,
        }
    }

    /// Builds a chip by tiling `tiles` (cycled) across the grid,
    /// translating each copy to its tile origin.
    pub fn from_tiles(
        name: impl Into<String>,
        tiles_x: usize,
        tiles_y: usize,
        tiles: &[Layout],
    ) -> Self {
        let mut rects = Vec::new();
        if !tiles.is_empty() {
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let tile = &tiles[(ty * tiles_x + tx) % tiles.len()];
                    let (dx, dy) = (tx as i32 * TILE_NM, ty as i32 * TILE_NM);
                    for r in &tile.rects {
                        rects.push(r.translated(dx, dy));
                    }
                }
            }
        }
        ChipLayout::new(name, tiles_x, tiles_y, rects)
    }

    /// Chip width in nanometres (`tiles_x · TILE_NM`).
    pub fn width_nm(&self) -> i32 {
        self.tiles_x as i32 * TILE_NM
    }

    /// Chip height in nanometres (`tiles_y · TILE_NM`).
    pub fn height_nm(&self) -> i32 {
        self.tiles_y as i32 * TILE_NM
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    /// Total pattern area in nm² (rectangles are assumed disjoint; both
    /// builders guarantee it and the unit tests verify).
    pub fn area_nm2(&self) -> i64 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// Rasterizes onto a `(tiles_x·px_per_tile) × (tiles_y·px_per_tile)`
    /// grid, so one pixel spans `TILE_NM / px_per_tile` nm — the same
    /// pitch [`Layout::rasterize`] uses at `size = px_per_tile`.
    pub fn rasterize(&self, px_per_tile: usize) -> BitGrid {
        let w = self.tiles_x * px_per_tile;
        let h = self.tiles_y * px_per_tile;
        let mut mask = BitGrid::new(w, h);
        for r in &self.rects {
            fill_rect(&mut mask, r.scaled(px_per_tile as i32, TILE_NM));
        }
        mask
    }
}

/// Knobs for the seeded chip generator (all lengths in nm).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipGeneratorConfig {
    /// Per-tile random content (see [`GeneratorConfig`]). The tile
    /// margin doubles as the seam keep-out band; `straddle_length / 2`
    /// must stay below it.
    pub tile: GeneratorConfig,
    /// Features forced across each interior seam, per adjacent tile pair.
    pub straddlers_per_seam: usize,
    /// Total straddler length across the seam (half on each side).
    pub straddle_length: i32,
    /// Straddler width range.
    pub straddle_width: (i32, i32),
}

impl Default for ChipGeneratorConfig {
    fn default() -> Self {
        ChipGeneratorConfig {
            tile: GeneratorConfig::default(),
            straddlers_per_seam: 2,
            straddle_length: 360,
            straddle_width: (60, 90),
        }
    }
}

/// SplitMix64-style mix so every tile draws from an independent stream.
fn tile_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ (index.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates a deterministic pseudo-random chip for `seed`.
///
/// Every tile gets independent random content from
/// [`generate_layout`] (translated to its tile origin), then every
/// interior seam — vertical and horizontal — receives
/// `straddlers_per_seam` wires centered on the seam line, one batch per
/// adjacent tile pair, rejection-sampled against each other. Straddlers
/// never touch per-tile shapes because both respect the tile margin
/// band; the straddler half-length is clamped below the margin.
///
/// # Examples
///
/// ```
/// use cfaopc_layouts::{generate_chip, ChipGeneratorConfig, TILE_NM};
///
/// let cfg = ChipGeneratorConfig::default();
/// let chip = generate_chip(3, 4, 4, &cfg);
/// assert_eq!(chip, generate_chip(3, 4, 4, &cfg)); // deterministic
/// // At least one rect crosses the first vertical seam.
/// assert!(chip
///     .rects
///     .iter()
///     .any(|r| r.x0 < TILE_NM && r.x1 > TILE_NM));
/// ```
pub fn generate_chip(
    seed: u64,
    tiles_x: usize,
    tiles_y: usize,
    config: &ChipGeneratorConfig,
) -> ChipLayout {
    let mut rects: Vec<Rect> = Vec::new();
    // Per-tile content, translated into chip coordinates.
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let idx = (ty * tiles_x + tx) as u64;
            let tile = generate_layout(tile_seed(seed, idx), &config.tile);
            let (dx, dy) = (tx as i32 * TILE_NM, ty as i32 * TILE_NM);
            for r in &tile.rects {
                rects.push(r.translated(dx, dy));
            }
        }
    }

    // Seam straddlers, drawn from their own stream so tile content and
    // seam content stay independent.
    let mut rng = StdRng::seed_from_u64(tile_seed(seed, u64::MAX));
    let margin = config.tile.margin;
    let half = (config.straddle_length / 2).min(margin - 1).max(1);
    let clearance = 60;
    let mut straddlers: Vec<Rect> = Vec::new();
    let place = |straddlers: &mut Vec<Rect>,
                 rng: &mut StdRng,
                 seam_rect: &dyn Fn(i32, i32) -> Rect,
                 lo: i32,
                 hi: i32| {
        for _ in 0..config.straddlers_per_seam {
            for _attempt in 0..64 {
                let w = rng.gen_range(config.straddle_width.0..=config.straddle_width.1);
                if hi - w <= lo {
                    break;
                }
                let pos = rng.gen_range(lo..hi - w);
                let candidate = seam_rect(pos, w);
                let padded = Rect::new(
                    candidate.x0 - clearance,
                    candidate.y0 - clearance,
                    candidate.x1 + clearance,
                    candidate.y1 + clearance,
                );
                if straddlers.iter().all(|r| r.intersect(&padded).is_none()) {
                    straddlers.push(candidate);
                    break;
                }
            }
        }
    };

    // Vertical seams: horizontal wires crossing x = sx·TILE_NM, one
    // batch per tile row, y confined to the row's interior band.
    for sx in 1..tiles_x as i32 {
        for ty in 0..tiles_y as i32 {
            let seam = sx * TILE_NM;
            let (lo, hi) = (ty * TILE_NM + margin, (ty + 1) * TILE_NM - margin);
            place(
                &mut straddlers,
                &mut rng,
                &|y, w| Rect::new(seam - half, y, seam + half, y + w),
                lo,
                hi,
            );
        }
    }
    // Horizontal seams: vertical wires crossing y = sy·TILE_NM.
    for sy in 1..tiles_y as i32 {
        for tx in 0..tiles_x as i32 {
            let seam = sy * TILE_NM;
            let (lo, hi) = (tx * TILE_NM + margin, (tx + 1) * TILE_NM - margin);
            place(
                &mut straddlers,
                &mut rng,
                &|x, w| Rect::new(x, seam - half, x + w, seam + half),
                lo,
                hi,
            );
        }
    }
    rects.extend(straddlers);

    ChipLayout::new(
        format!("chip{seed}_{tiles_x}x{tiles_y}"),
        tiles_x,
        tiles_y,
        rects,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_cases;

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let cfg = ChipGeneratorConfig::default();
        assert_eq!(generate_chip(7, 3, 2, &cfg), generate_chip(7, 3, 2, &cfg));
        assert_ne!(
            generate_chip(1, 3, 2, &cfg).rects,
            generate_chip(2, 3, 2, &cfg).rects
        );
    }

    #[test]
    fn every_interior_seam_has_a_straddler() {
        let cfg = ChipGeneratorConfig::default();
        let chip = generate_chip(3, 4, 4, &cfg);
        for sx in 1..4 {
            let seam = sx * TILE_NM;
            assert!(
                chip.rects.iter().any(|r| r.x0 < seam && r.x1 > seam),
                "no straddler across vertical seam {sx}"
            );
        }
        for sy in 1..4 {
            let seam = sy * TILE_NM;
            assert!(
                chip.rects.iter().any(|r| r.y0 < seam && r.y1 > seam),
                "no straddler across horizontal seam {sy}"
            );
        }
    }

    #[test]
    fn chip_rects_are_pairwise_disjoint_and_inside_the_chip() {
        let cfg = ChipGeneratorConfig::default();
        for seed in [0, 3, 11] {
            let chip = generate_chip(seed, 3, 3, &cfg);
            for (i, a) in chip.rects.iter().enumerate() {
                assert!(a.x0 >= 0 && a.y0 >= 0, "seed {seed}: {a:?}");
                assert!(
                    a.x1 <= chip.width_nm() && a.y1 <= chip.height_nm(),
                    "seed {seed}: {a:?}"
                );
                for b in chip.rects.iter().skip(i + 1) {
                    assert!(
                        a.intersect(b).is_none(),
                        "seed {seed}: {a:?} overlaps {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn raster_matches_single_tile_pitch() {
        let chip = ChipLayout::from_tiles("mosaic", 2, 2, &all_cases()[..4]);
        let raster = chip.rasterize(64);
        assert_eq!((raster.width(), raster.height()), (128, 128));
        // Tile (0,0) of the mosaic is case1; its window of the chip
        // raster must equal case1 rasterized alone at the same pitch.
        let solo = all_cases()[0].rasterize(64);
        for y in 0..64 {
            for x in 0..64 {
                assert_eq!(solo.get(x, y), raster.get(x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn mosaic_area_is_sum_of_tiles() {
        let tiles = all_cases();
        let chip = ChipLayout::from_tiles("mosaic", 2, 2, &tiles[..4]);
        let expected: i64 = tiles[..4].iter().map(Layout::area_nm2).sum();
        assert_eq!(chip.area_nm2(), expected);
    }
}
