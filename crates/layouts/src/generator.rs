//! Seeded random layout generation for stress tests beyond the ten
//! benchmark tiles.
//!
//! Produces M1-style tiles: a mix of line arrays (dense pitch), isolated
//! wires, and contact-like blocks, deterministic per seed. Used by the
//! fuzz/stress examples and property tests to exercise the full pipeline
//! on geometry the benchmark set does not cover.

use crate::{Layout, TILE_NM};
use cfaopc_grid::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the random tile generator (all lengths in nm).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of line arrays (each 2–5 parallel wires).
    pub line_arrays: usize,
    /// Number of isolated wires.
    pub isolated_wires: usize,
    /// Number of contact-like blocks.
    pub contacts: usize,
    /// Wire width range.
    pub wire_width: (i32, i32),
    /// Wire length range.
    pub wire_length: (i32, i32),
    /// Array pitch range (edge to edge spacing = pitch − width).
    pub pitch: (i32, i32),
    /// Keep-out margin from the tile edge.
    pub margin: i32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            line_arrays: 2,
            isolated_wires: 2,
            contacts: 2,
            wire_width: (48, 96),
            wire_length: (400, 1100),
            pitch: (140, 260),
            margin: 220,
        }
    }
}

/// Generates a deterministic pseudo-random tile for `seed`.
///
/// Shapes are placed by rejection sampling with a 60 nm clearance; if the
/// tile fills up, later shapes are skipped, so the shape count is an
/// upper bound.
///
/// # Examples
///
/// ```
/// use cfaopc_layouts::{generate_layout, GeneratorConfig};
///
/// let a = generate_layout(7, &GeneratorConfig::default());
/// let b = generate_layout(7, &GeneratorConfig::default());
/// assert_eq!(a, b); // deterministic per seed
/// assert!(a.area_nm2() > 0);
/// ```
pub fn generate_layout(seed: u64, config: &GeneratorConfig) -> Layout {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rects: Vec<Rect> = Vec::new();
    let clearance = 60;

    let try_place = |rects: &mut Vec<Rect>, rng: &mut StdRng, w: i32, h: i32| -> Option<Rect> {
        for _ in 0..64 {
            let x =
                rng.gen_range(config.margin..(TILE_NM - config.margin - w).max(config.margin + 1));
            let y =
                rng.gen_range(config.margin..(TILE_NM - config.margin - h).max(config.margin + 1));
            let candidate = Rect::new(x, y, x + w, y + h);
            let padded = Rect::new(
                x - clearance,
                y - clearance,
                x + w + clearance,
                y + h + clearance,
            );
            if rects.iter().all(|r| r.intersect(&padded).is_none()) {
                rects.push(candidate);
                return Some(candidate);
            }
        }
        None
    };

    // Line arrays.
    for _ in 0..config.line_arrays {
        let horizontal: bool = rng.gen();
        let count = rng.gen_range(2..=5);
        let width = rng.gen_range(config.wire_width.0..=config.wire_width.1);
        let length = rng.gen_range(config.wire_length.0..=config.wire_length.1);
        let pitch = rng.gen_range(config.pitch.0.max(width + 60)..=config.pitch.1.max(width + 61));
        let (w, h) = if horizontal {
            (length, width + (count - 1) * pitch)
        } else {
            (width + (count - 1) * pitch, length)
        };
        if let Some(anchor) = try_place(&mut rects, &mut rng, w, h) {
            // Replace the bounding placeholder with the actual wires.
            rects.pop();
            for i in 0..count {
                let off = i * pitch;
                let wire = if horizontal {
                    Rect::new(
                        anchor.x0,
                        anchor.y0 + off,
                        anchor.x0 + length,
                        anchor.y0 + off + width,
                    )
                } else {
                    Rect::new(
                        anchor.x0 + off,
                        anchor.y0,
                        anchor.x0 + off + width,
                        anchor.y0 + length,
                    )
                };
                rects.push(wire);
            }
        }
    }
    // Isolated wires.
    for _ in 0..config.isolated_wires {
        let horizontal: bool = rng.gen();
        let width = rng.gen_range(config.wire_width.0..=config.wire_width.1);
        let length = rng.gen_range(config.wire_length.0..=config.wire_length.1);
        let (w, h) = if horizontal {
            (length, width)
        } else {
            (width, length)
        };
        try_place(&mut rects, &mut rng, w, h);
    }
    // Contacts.
    for _ in 0..config.contacts {
        let w = rng.gen_range(60..=200);
        let h = rng.gen_range(60..=200);
        try_place(&mut rects, &mut rng, w, h);
    }

    Layout::new(format!("random{seed}"), rects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneratorConfig::default();
        assert_eq!(generate_layout(42, &cfg), generate_layout(42, &cfg));
        assert_ne!(
            generate_layout(1, &cfg).rects,
            generate_layout(2, &cfg).rects
        );
    }

    #[test]
    fn shapes_are_disjoint_and_inside_the_margin() {
        let cfg = GeneratorConfig::default();
        for seed in 0..20 {
            let layout = generate_layout(seed, &cfg);
            assert!(!layout.rects.is_empty(), "seed {seed} produced nothing");
            for (i, a) in layout.rects.iter().enumerate() {
                assert!(a.x0 >= cfg.margin && a.y0 >= cfg.margin, "seed {seed}");
                assert!(
                    a.x1 <= TILE_NM - cfg.margin && a.y1 <= TILE_NM - cfg.margin,
                    "seed {seed}: {a:?}"
                );
                for b in layout.rects.iter().skip(i + 1) {
                    assert!(
                        a.intersect(b).is_none(),
                        "seed {seed}: {a:?} overlaps {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn wire_widths_respect_config() {
        let cfg = GeneratorConfig {
            line_arrays: 0,
            contacts: 0,
            isolated_wires: 4,
            wire_width: (64, 64),
            ..GeneratorConfig::default()
        };
        let layout = generate_layout(9, &cfg);
        for r in &layout.rects {
            let short_side = r.width().min(r.height());
            assert_eq!(short_side, 64);
        }
    }

    #[test]
    fn rasterizes_cleanly() {
        let layout = generate_layout(5, &GeneratorConfig::default());
        let mask = layout.rasterize(256);
        assert!(mask.count_ones() > 0);
    }
}
