//! Benchmark layout tiles for CFAOPC experiments.
//!
//! The paper evaluates on the ICCAD-2013 mask-optimization contest suite:
//! ten 2048 nm × 2048 nm M1 tiles from industrial 32 nm designs. The
//! original GDS clips are not redistributable, so this crate ships **ten
//! deterministic synthetic tiles** whose *total pattern areas match the
//! paper's Table 2 `Area(nm²)` column exactly, case by case*, and whose
//! geometry spans the same regimes (dense line arrays, isolated wires,
//! small blocks/contacts, one large square for case 10).
//!
//! Layouts are lists of axis-aligned rectangles in nanometre coordinates;
//! [`Layout::rasterize`] scales them onto any power-of-two pixel grid.
//! A minimal GLP-like text format is provided for interchange.
//!
//! # Examples
//!
//! ```
//! use cfaopc_layouts::benchmark_case;
//!
//! let case10 = benchmark_case(10).unwrap();
//! assert_eq!(case10.area_nm2(), 102_400);
//! let target = case10.rasterize(256);
//! assert!(target.count_ones() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod generator;

pub use chip::{generate_chip, ChipGeneratorConfig, ChipLayout};
pub use generator::{generate_layout, GeneratorConfig};

use cfaopc_grid::{fill_rect, BitGrid, Rect};
use std::fmt;

/// Pattern areas from the paper's Table 2, indexed by case number 1–10.
pub const PAPER_AREAS_NM2: [i64; 10] = [
    215_344, 169_280, 213_504, 82_560, 281_958, 286_234, 229_149, 128_544, 317_581, 102_400,
];

/// Physical tile edge of every benchmark case, in nanometres.
pub const TILE_NM: i32 = 2048;

/// Error type for layout construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// Case number outside `1..=10`.
    UnknownCase(usize),
    /// A GLP line could not be parsed (line number, content).
    Parse(usize, String),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::UnknownCase(n) => {
                write!(f, "unknown benchmark case {n} (expected 1..=10)")
            }
            LayoutError::Parse(line, text) => write!(f, "cannot parse GLP line {line}: {text:?}"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// A rectilinear layout tile: named, with rectangles in nm coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// Case name, e.g. `case3`.
    pub name: String,
    /// Non-overlapping rectangles in nanometre coordinates on the tile.
    pub rects: Vec<Rect>,
}

impl Layout {
    /// Creates a layout from rectangles (nm coordinates).
    pub fn new(name: impl Into<String>, rects: Vec<Rect>) -> Self {
        Layout {
            name: name.into(),
            rects,
        }
    }

    /// Total pattern area in nm² (rectangles are assumed disjoint —
    /// the shipped benchmarks are, and the unit tests verify it).
    pub fn area_nm2(&self) -> i64 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// Rasterizes onto a `size × size` grid covering the full tile, so one
    /// pixel spans `TILE_NM / size` nm. Coordinates scale by `size/2048`
    /// with truncation; at `size = 2048` the raster area equals
    /// [`Layout::area_nm2`] exactly.
    pub fn rasterize(&self, size: usize) -> BitGrid {
        let mut mask = BitGrid::new(size, size);
        for r in &self.rects {
            fill_rect(&mut mask, r.scaled(size as i32, TILE_NM));
        }
        mask
    }

    /// Serializes to the GLP-like text format:
    /// one `RECT x0 y0 x1 y1` line per rectangle after a header.
    pub fn to_glp(&self) -> String {
        let mut out = format!("BEGIN {}\nTILE {TILE_NM}\n", self.name);
        for r in &self.rects {
            out.push_str(&format!("RECT {} {} {} {}\n", r.x0, r.y0, r.x1, r.y1));
        }
        out.push_str("END\n");
        out
    }

    /// Parses the GLP-like text format produced by [`Layout::to_glp`].
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::Parse`] for malformed lines.
    pub fn from_glp(text: &str) -> Result<Layout, LayoutError> {
        let mut name = String::from("unnamed");
        let mut rects = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line == "END" {
                continue;
            }
            let mut it = line.split_whitespace();
            match it.next() {
                Some("BEGIN") => {
                    name = it.next().unwrap_or("unnamed").to_string();
                }
                Some("TILE") => {}
                Some("RECT") => {
                    let vals: Vec<i32> = it.filter_map(|t| t.parse().ok()).collect();
                    if vals.len() != 4 {
                        return Err(LayoutError::Parse(i + 1, line.to_string()));
                    }
                    rects.push(Rect::new(vals[0], vals[1], vals[2], vals[3]));
                }
                _ => return Err(LayoutError::Parse(i + 1, line.to_string())),
            }
        }
        Ok(Layout { name, rects })
    }
}

/// `(x, y, w, h)` helper for the case tables.
const fn r(x: i32, y: i32, w: i32, h: i32) -> Rect {
    // Rect::new normalizes, but these are already normalized; build
    // directly so the function can be const.
    Rect {
        x0: x,
        y0: y,
        x1: x + w,
        y1: y + h,
    }
}

/// Returns benchmark case `n` (1-based, matching the paper's Table 2).
///
/// # Errors
///
/// Returns [`LayoutError::UnknownCase`] when `n ∉ 1..=10`.
pub fn benchmark_case(n: usize) -> Result<Layout, LayoutError> {
    let rects: Vec<Rect> = match n {
        // Dense horizontal wire pair + routing block + via landing pad.
        1 => vec![
            r(300, 500, 1200, 80),
            r(300, 760, 1200, 80),
            r(300, 1020, 200, 100),
            r(700, 1032, 44, 76),
        ],
        // Vertical wire pair with a horizontal strap below.
        2 => vec![
            r(640, 300, 70, 900),
            r(940, 300, 70, 900),
            r(560, 1420, 541, 80),
        ],
        // Three-line dense array + block (the paper's hardest case).
        3 => vec![
            r(380, 600, 1100, 60),
            r(380, 800, 1100, 60),
            r(380, 1000, 1100, 60),
            r(860, 1240, 152, 102),
        ],
        // Sparse: one isolated wire + stub.
        4 => vec![r(500, 900, 800, 70), r(820, 1140, 332, 80)],
        // Four-line array + side block.
        5 => vec![
            r(420, 480, 1000, 60),
            r(420, 720, 1000, 60),
            r(420, 960, 1000, 60),
            r(420, 1200, 1000, 60),
            r(1550, 700, 162, 259),
        ],
        // Five-line array + two narrow vertical stubs.
        6 => vec![
            r(460, 400, 900, 60),
            r(460, 640, 900, 60),
            r(460, 880, 900, 60),
            r(460, 1120, 900, 60),
            r(460, 1360, 900, 60),
            r(1500, 500, 46, 87),
            r(1560, 900, 44, 278),
        ],
        // Four thin lines (50 nm!) + tall block.
        7 => vec![
            r(440, 560, 1000, 50),
            r(440, 810, 1000, 50),
            r(440, 1060, 1000, 50),
            r(440, 1310, 1000, 50),
            r(1600, 800, 103, 283),
        ],
        // Two wires with a landing pad between them.
        8 => vec![
            r(560, 760, 800, 70),
            r(560, 1100, 800, 70),
            r(940, 920, 176, 94),
        ],
        // Five-line array + square pad + small bar.
        9 => vec![
            r(400, 400, 1000, 60),
            r(400, 620, 1000, 60),
            r(400, 840, 1000, 60),
            r(400, 1060, 1000, 60),
            r(400, 1280, 1000, 60),
            r(1600, 560, 100, 100),
            r(1620, 1000, 57, 133),
        ],
        // One large centered square (matches the real ICCAD-13 case 10).
        10 => vec![r(864, 864, 320, 320)],
        other => return Err(LayoutError::UnknownCase(other)),
    };
    Ok(Layout::new(format!("case{n}"), rects))
}

/// All ten benchmark cases in order.
pub fn all_cases() -> Vec<Layout> {
    (1..=10)
        .map(|n| benchmark_case(n).expect("cases 1..=10 exist"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_match_table2_exactly() {
        for n in 1..=10 {
            let layout = benchmark_case(n).unwrap();
            assert_eq!(
                layout.area_nm2(),
                PAPER_AREAS_NM2[n - 1],
                "case {n} area mismatch"
            );
        }
    }

    #[test]
    fn rects_are_pairwise_disjoint() {
        for layout in all_cases() {
            for (i, a) in layout.rects.iter().enumerate() {
                for b in layout.rects.iter().skip(i + 1) {
                    assert!(
                        a.intersect(b).is_none(),
                        "{}: {a:?} overlaps {b:?}",
                        layout.name
                    );
                }
            }
        }
    }

    #[test]
    fn rects_fit_the_tile_with_litho_margin() {
        for layout in all_cases() {
            for rect in &layout.rects {
                assert!(rect.x0 >= 200 && rect.y0 >= 200, "{}", layout.name);
                assert!(
                    rect.x1 <= TILE_NM - 200 && rect.y1 <= TILE_NM - 200,
                    "{}: {rect:?} too close to the tile edge",
                    layout.name
                );
            }
        }
    }

    #[test]
    fn full_resolution_raster_area_is_exact() {
        for layout in all_cases() {
            let mask = layout.rasterize(2048);
            assert_eq!(
                mask.count_ones() as i64,
                layout.area_nm2(),
                "{}",
                layout.name
            );
        }
    }

    #[test]
    fn downsampled_raster_area_is_close() {
        for layout in all_cases() {
            let mask = layout.rasterize(512);
            let px_area = mask.count_ones() as i64 * 16; // (2048/512)² nm² per px
            let err = (px_area - layout.area_nm2()).abs() as f64 / layout.area_nm2() as f64;
            assert!(err < 0.12, "{}: {:.3} relative error", layout.name, err);
        }
    }

    #[test]
    fn glp_roundtrip() {
        for layout in all_cases() {
            let text = layout.to_glp();
            let back = Layout::from_glp(&text).unwrap();
            assert_eq!(back, layout);
        }
    }

    #[test]
    fn glp_rejects_garbage() {
        assert!(matches!(
            Layout::from_glp("RECT 1 2 3"),
            Err(LayoutError::Parse(1, _))
        ));
        assert!(matches!(
            Layout::from_glp("CIRCLE 1 2 3 4"),
            Err(LayoutError::Parse(1, _))
        ));
    }

    #[test]
    fn unknown_case_is_an_error() {
        assert!(matches!(
            benchmark_case(0),
            Err(LayoutError::UnknownCase(0))
        ));
        assert!(matches!(
            benchmark_case(11),
            Err(LayoutError::UnknownCase(11))
        ));
    }

    #[test]
    fn cases_are_distinct() {
        let cases = all_cases();
        for (i, a) in cases.iter().enumerate() {
            for b in cases.iter().skip(i + 1) {
                assert_ne!(a.rects, b.rects);
            }
        }
    }
}
