//! Proximity-effect correction (PEC) by iterative per-shot dose
//! assignment.
//!
//! Backscatter couples every shot to its neighbours: dense regions
//! over-expose, isolated ones under-expose. The classical fix assigns
//! each shot a dose factor and iterates a fixed point: measure the
//! delivered dose at each shot's center, then scale the shot's dose by
//! `target / delivered`. With the additive double-Gaussian model this
//! converges in a handful of sweeps.

use crate::writer::{DosedShot, WriterModel};
use cfaopc_grid::Point;

/// PEC iteration parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PecConfig {
    /// Fixed-point sweeps.
    pub iterations: usize,
    /// Target delivered dose at shot centers (the clearing dose).
    pub target: f64,
    /// Dose clamp range (writers bound per-flash dose).
    pub dose_range: (f64, f64),
    /// Damping factor in `(0, 1]`; 1 = undamped fixed point.
    pub damping: f64,
}

impl Default for PecConfig {
    fn default() -> Self {
        PecConfig {
            iterations: 5,
            target: 1.0,
            dose_range: (0.3, 3.0),
            damping: 0.8,
        }
    }
}

/// The probe point of a shot: its center (circles) or centroid (rects).
fn probe(shot: &DosedShot) -> Point {
    match shot {
        DosedShot::Circle { shot, .. } => shot.center(),
        DosedShot::Rect { rect, .. } => {
            Point::new((rect.x0 + rect.x1) / 2, (rect.y0 + rect.y1) / 2)
        }
    }
}

/// Result of a PEC run.
#[derive(Debug, Clone)]
pub struct PecResult {
    /// The dose-corrected shots.
    pub shots: Vec<DosedShot>,
    /// RMS deviation of the delivered center doses from the target,
    /// before correction.
    pub rms_error_before: f64,
    /// Same, after correction.
    pub rms_error_after: f64,
}

/// Runs iterative dose correction for `shots` on `writer`.
pub fn correct_proximity(
    writer: &WriterModel,
    shots: &[DosedShot],
    config: &PecConfig,
) -> PecResult {
    let mut current: Vec<DosedShot> = shots.to_vec();
    let rms_error_before = center_rms_error(writer, &current, config.target);
    for _ in 0..config.iterations {
        let delivered = writer.expose(&current);
        current = current
            .iter()
            .map(|s| {
                let p = probe(s);
                let got = delivered.get(p).copied().unwrap_or(config.target).max(1e-6);
                let ideal = s.dose() * config.target / got;
                let damped = s.dose() + config.damping * (ideal - s.dose());
                let clamped = damped.clamp(config.dose_range.0, config.dose_range.1);
                match *s {
                    DosedShot::Circle { shot, .. } => DosedShot::Circle {
                        shot,
                        dose: clamped,
                    },
                    DosedShot::Rect { rect, .. } => DosedShot::Rect {
                        rect,
                        dose: clamped,
                    },
                }
            })
            .collect();
    }
    let rms_error_after = center_rms_error(writer, &current, config.target);
    PecResult {
        shots: current,
        rms_error_before,
        rms_error_after,
    }
}

fn center_rms_error(writer: &WriterModel, shots: &[DosedShot], target: f64) -> f64 {
    if shots.is_empty() {
        return 0.0;
    }
    let delivered = writer.expose(shots);
    let sum_sq: f64 = shots
        .iter()
        .map(|s| {
            let p = probe(s);
            let got = delivered.get(p).copied().unwrap_or(target);
            (got - target) * (got - target)
        })
        .sum();
    (sum_sq / shots.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psf::EbeamPsf;
    use cfaopc_fracture::CircleShot;

    fn writer_with_backscatter() -> WriterModel {
        WriterModel::new(
            128,
            4.0,
            EbeamPsf {
                alpha_nm: 25.0,
                beta_nm: 200.0, // short "backscatter" so it acts on-tile
                eta: 0.6,
            },
        )
        .unwrap()
    }

    fn dense_and_isolated() -> Vec<DosedShot> {
        // A dense cluster plus one isolated shot: backscatter over-doses
        // the cluster relative to the loner.
        let mut shots: Vec<DosedShot> = (0..5)
            .flat_map(|i| {
                (0..5).map(move |j| DosedShot::Circle {
                    shot: CircleShot::new(30 + i * 8, 30 + j * 8, 5),
                    dose: 1.0,
                })
            })
            .collect();
        shots.push(DosedShot::Circle {
            shot: CircleShot::new(100, 100, 5),
            dose: 1.0,
        });
        shots
    }

    #[test]
    fn pec_reduces_center_dose_error() {
        let w = writer_with_backscatter();
        let shots = dense_and_isolated();
        let result = correct_proximity(&w, &shots, &PecConfig::default());
        assert!(
            result.rms_error_after < result.rms_error_before,
            "PEC failed: {} -> {}",
            result.rms_error_before,
            result.rms_error_after
        );
        assert!(result.rms_error_after < 0.35 * result.rms_error_before);
    }

    #[test]
    fn pec_lowers_dense_doses_below_isolated() {
        let w = writer_with_backscatter();
        let shots = dense_and_isolated();
        let result = correct_proximity(&w, &shots, &PecConfig::default());
        let cluster_mean: f64 = result.shots[..25].iter().map(DosedShot::dose).sum::<f64>() / 25.0;
        let isolated = result.shots[25].dose();
        assert!(
            cluster_mean < isolated,
            "cluster {cluster_mean} should be dosed below isolated {isolated}"
        );
    }

    #[test]
    fn doses_respect_the_clamp() {
        let w = writer_with_backscatter();
        let shots = dense_and_isolated();
        let cfg = PecConfig {
            dose_range: (0.8, 1.2),
            ..PecConfig::default()
        };
        let result = correct_proximity(&w, &shots, &cfg);
        for s in &result.shots {
            assert!((0.8..=1.2).contains(&s.dose()));
        }
    }

    #[test]
    fn empty_shot_list_is_a_noop() {
        let w = writer_with_backscatter();
        let result = correct_proximity(&w, &[], &PecConfig::default());
        assert!(result.shots.is_empty());
        assert_eq!(result.rms_error_before, 0.0);
        assert_eq!(result.rms_error_after, 0.0);
    }
}
