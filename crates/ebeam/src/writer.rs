//! The mask-writer exposure model.
//!
//! Shots deposit dose **additively** (overlapping circular shots stack,
//! which is what makes the circular writer's overlap-friendly fracturing
//! physically meaningful); the dose map is blurred by the e-beam PSF and
//! the resist develops where the delivered dose exceeds a threshold.
//! Per-shot dose errors (flash-to-flash current noise) are modeled as
//! seeded multiplicative perturbations — masks with more shots integrate
//! more noise along their boundaries, the mechanism behind "fewer shots →
//! better mask yield".

use crate::psf::EbeamPsf;
use cfaopc_fft::{Complex, Fft2d, FftError};
use cfaopc_fracture::{CircleShot, CircularMask};
use cfaopc_grid::{disk_points, BitGrid, Grid2D, Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One shot with an explicit relative dose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DosedShot {
    /// A circular shot.
    Circle {
        /// Geometry.
        shot: CircleShot,
        /// Relative dose (1.0 = nominal clearing dose).
        dose: f64,
    },
    /// A rectangular (VSB) shot.
    Rect {
        /// Geometry (half-open pixel rect).
        rect: Rect,
        /// Relative dose.
        dose: f64,
    },
}

impl DosedShot {
    /// The shot's relative dose.
    pub fn dose(&self) -> f64 {
        match self {
            DosedShot::Circle { dose, .. } | DosedShot::Rect { dose, .. } => *dose,
        }
    }

    fn with_dose(self, dose: f64) -> DosedShot {
        match self {
            DosedShot::Circle { shot, .. } => DosedShot::Circle { shot, dose },
            DosedShot::Rect { rect, .. } => DosedShot::Rect { rect, dose },
        }
    }
}

/// The writer: grid geometry, PSF and develop threshold.
#[derive(Debug, Clone)]
pub struct WriterModel {
    size: usize,
    pixel_nm: f64,
    psf: EbeamPsf,
    /// Develop threshold as a fraction of the nominal clearing dose.
    pub threshold: f64,
    plan: Fft2d,
    transfer: Vec<f64>,
}

impl WriterModel {
    /// Builds a writer for an `size × size` grid with `pixel_nm` pitch.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] when `size` is not a supported FFT size (a
    /// non-zero power of two) — mirroring `LithoSimulator::new`, which
    /// surfaces the same condition instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if the PSF is physically invalid (see [`EbeamPsf::validate`]).
    pub fn new(size: usize, pixel_nm: f64, psf: EbeamPsf) -> Result<Self, FftError> {
        psf.validate();
        let plan = Fft2d::square(size)?;
        let transfer = psf.transfer_function(size, pixel_nm);
        Ok(WriterModel {
            size,
            pixel_nm,
            psf,
            threshold: 0.5,
            plan,
            transfer,
        })
    }

    /// Grid edge in pixels.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Pixel pitch in nm.
    pub fn pixel_nm(&self) -> f64 {
        self.pixel_nm
    }

    /// The PSF in use.
    pub fn psf(&self) -> &EbeamPsf {
        &self.psf
    }

    /// Converts a circular mask to unit-dose shots.
    pub fn dose_circles(mask: &CircularMask) -> Vec<DosedShot> {
        mask.shots()
            .iter()
            .map(|&shot| DosedShot::Circle { shot, dose: 1.0 })
            .collect()
    }

    /// Converts a rectangle decomposition to unit-dose shots.
    pub fn dose_rects(rects: &[Rect]) -> Vec<DosedShot> {
        rects
            .iter()
            .map(|&rect| DosedShot::Rect { rect, dose: 1.0 })
            .collect()
    }

    /// Raw (pre-blur) deposited dose: every shot adds its dose to the
    /// pixels it covers. Overlaps accumulate.
    pub fn deposit(&self, shots: &[DosedShot]) -> Grid2D<f64> {
        let n = self.size;
        let mut dose = Grid2D::new(n, n, 0.0f64);
        for s in shots {
            match *s {
                DosedShot::Circle { shot, dose: d } => {
                    for p in disk_points(shot.center(), shot.r, n, n) {
                        dose[(p.x as usize, p.y as usize)] += d;
                    }
                }
                DosedShot::Rect { rect, dose: d } => {
                    let x0 = rect.x0.max(0) as usize;
                    let y0 = rect.y0.max(0) as usize;
                    let x1 = (rect.x1.max(0) as usize).min(n);
                    let y1 = (rect.y1.max(0) as usize).min(n);
                    for y in y0..y1 {
                        for x in x0..x1 {
                            dose[(x, y)] += d;
                        }
                    }
                }
            }
        }
        dose
    }

    /// Delivered dose: deposit, then blur with the e-beam PSF (FFT).
    pub fn expose(&self, shots: &[DosedShot]) -> Grid2D<f64> {
        let deposited = self.deposit(shots);
        self.blur(&deposited)
    }

    /// Blurs an arbitrary dose map with the writer's PSF.
    pub fn blur(&self, dose: &Grid2D<f64>) -> Grid2D<f64> {
        let n = self.size;
        let mut buf: Vec<Complex> = dose
            .as_slice()
            .iter()
            .map(|&v| Complex::from_re(v))
            .collect();
        self.plan.forward(&mut buf).expect("plan matches size");
        for (z, &h) in buf.iter_mut().zip(&self.transfer) {
            *z = z.scale(h);
        }
        self.plan.inverse(&mut buf).expect("plan matches size");
        Grid2D::from_vec(n, n, buf.into_iter().map(|z| z.re).collect())
    }

    /// Develops the resist: pixels with delivered dose above threshold.
    pub fn develop(&self, delivered: &Grid2D<f64>) -> BitGrid {
        BitGrid::from_threshold(delivered, self.threshold)
    }

    /// One-call writing simulation: expose and develop.
    pub fn write(&self, shots: &[DosedShot]) -> BitGrid {
        self.develop(&self.expose(shots))
    }

    /// Writing error: symmetric difference between the written pattern
    /// and the intended mask, in pixels.
    pub fn writing_error(&self, shots: &[DosedShot], intended: &BitGrid) -> usize {
        self.write(shots).xor_count(intended)
    }

    /// Applies seeded multiplicative flash-dose noise:
    /// `dose_i ← dose_i · (1 + σ·ξ_i)` with `ξ ~ U(−√3, √3)` (unit
    /// variance), clamped at 0.
    pub fn with_dose_noise(shots: &[DosedShot], sigma: f64, seed: u64) -> Vec<DosedShot> {
        let mut rng = StdRng::seed_from_u64(seed);
        let half_width = 3f64.sqrt();
        shots
            .iter()
            .map(|&s| {
                let xi: f64 = rng.gen_range(-half_width..half_width);
                let factor = (1.0 + sigma * xi).max(0.0);
                s.with_dose(s.dose() * factor)
            })
            .collect()
    }

    /// Write-time estimate: `shots · (flash_us + settle_us)`, in seconds.
    /// The circular writer's shot-count advantage translates linearly
    /// into mask-write time.
    pub fn write_time_s(shot_count: usize, flash_us: f64, settle_us: f64) -> f64 {
        shot_count as f64 * (flash_us + settle_us) * 1e-6
    }
}

/// Rasterization helper: the intended pattern of a set of unit-dose
/// shots (pure union, no physics) — what the fracturing stage believes
/// it is writing.
pub fn intended_pattern(shots: &[DosedShot], size: usize) -> BitGrid {
    let mut mask = BitGrid::new(size, size);
    for s in shots {
        match *s {
            DosedShot::Circle { shot, .. } => {
                cfaopc_grid::fill_circle(&mut mask, Point::new(shot.x, shot.y), shot.r);
            }
            DosedShot::Rect { rect, .. } => {
                cfaopc_grid::fill_rect(&mut mask, rect);
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::fill_rect;

    fn writer() -> WriterModel {
        WriterModel::new(128, 4.0, EbeamPsf::forward_only(25.0)).unwrap()
    }

    #[test]
    fn non_power_of_two_grid_is_an_error_not_a_panic() {
        // Regression: this used to `.expect(...)` and bring the process
        // down; now it surfaces the FFT-size error like LithoSimulator.
        for bad in [0usize, 3, 96, 129] {
            assert!(WriterModel::new(bad, 4.0, EbeamPsf::forward_only(25.0)).is_err());
        }
        assert!(WriterModel::new(64, 4.0, EbeamPsf::forward_only(25.0)).is_ok());
    }

    #[test]
    fn big_rect_delivers_full_dose_inside() {
        let w = writer();
        let shots = vec![DosedShot::Rect {
            rect: Rect::new(20, 20, 108, 108),
            dose: 1.0,
        }];
        let delivered = w.expose(&shots);
        assert!(
            (delivered[(64, 64)] - 1.0).abs() < 1e-6,
            "{}",
            delivered[(64, 64)]
        );
        assert!(delivered[(4, 4)] < 0.05);
        // The edge delivers ~half dose (Gaussian symmetric).
        assert!((delivered[(20, 64)] - 0.5).abs() < 0.1);
    }

    #[test]
    fn written_rect_matches_intended_away_from_corners() {
        let w = writer();
        let rect = Rect::new(30, 30, 98, 98);
        let shots = vec![DosedShot::Rect { rect, dose: 1.0 }];
        let written = w.write(&shots);
        let mut intended = BitGrid::new(128, 128);
        fill_rect(&mut intended, rect);
        // Error concentrates at corners; it must be small relative to area.
        let err = written.xor_count(&intended);
        assert!(err < intended.count_ones() / 10, "error {err}");
    }

    #[test]
    fn blur_rounds_corners() {
        let w = writer();
        let rect = Rect::new(30, 30, 98, 98);
        let written = w.write(&[DosedShot::Rect { rect, dose: 1.0 }]);
        // Corner pixel of the intended rect fails to print (under-dosed).
        assert!(!written.get(30, 30));
        // Deep inside prints.
        assert!(written.get(64, 64));
    }

    #[test]
    fn overlapping_circles_accumulate_dose() {
        let w = writer();
        let shots = vec![
            DosedShot::Circle {
                shot: CircleShot::new(60, 64, 10),
                dose: 1.0,
            },
            DosedShot::Circle {
                shot: CircleShot::new(70, 64, 10),
                dose: 1.0,
            },
        ];
        let raw = w.deposit(&shots);
        assert_eq!(raw[(65, 64)], 2.0, "overlap must stack");
        assert_eq!(raw[(52, 64)], 1.0);
        assert_eq!(raw[(0, 0)], 0.0);
    }

    #[test]
    fn underdosed_shots_fail_to_print() {
        let w = writer();
        let shot = |dose| {
            vec![DosedShot::Circle {
                shot: CircleShot::new(64, 64, 12),
                dose,
            }]
        };
        assert!(w.write(&shot(1.0)).count_ones() > 0);
        assert_eq!(w.write(&shot(0.3)).count_ones(), 0);
    }

    #[test]
    fn dose_noise_is_seeded_and_bounded() {
        let shots = WriterModel::dose_circles(&CircularMask::from_shots(vec![
            CircleShot::new(40, 40, 8),
            CircleShot::new(80, 80, 8),
        ]));
        let a = WriterModel::with_dose_noise(&shots, 0.05, 7);
        let b = WriterModel::with_dose_noise(&shots, 0.05, 7);
        let c = WriterModel::with_dose_noise(&shots, 0.05, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for s in &a {
            assert!((s.dose() - 1.0).abs() <= 0.05 * 3f64.sqrt() + 1e-12);
        }
    }

    #[test]
    fn noisier_doses_increase_writing_error() {
        // Heavily-overlapped circle chain: the clean write is smooth, so
        // flash-dose noise is the dominant error source. Compare mean
        // error across seeds at two noise levels.
        let w = writer();
        let mask = CircularMask::from_shots(
            (0..20)
                .map(|i| CircleShot::new(24 + i * 4, 64, 8))
                .collect(),
        );
        let shots = WriterModel::dose_circles(&mask);
        let intended = intended_pattern(&shots, 128);
        let mean_err = |sigma: f64| -> f64 {
            (0..8)
                .map(|seed| {
                    let noisy = WriterModel::with_dose_noise(&shots, sigma, seed);
                    w.writing_error(&noisy, &intended) as f64
                })
                .sum::<f64>()
                / 8.0
        };
        let quiet = mean_err(0.05);
        let loud = mean_err(0.30);
        assert!(
            loud > quiet,
            "more dose noise must mean more writing error: {quiet} vs {loud}"
        );
    }

    #[test]
    fn write_time_scales_with_shots() {
        assert_eq!(WriterModel::write_time_s(1000, 0.2, 0.3), 5e-4);
        assert!(
            WriterModel::write_time_s(100, 0.2, 0.3) < WriterModel::write_time_s(200, 0.2, 0.3)
        );
    }

    #[test]
    fn intended_pattern_unions_shots() {
        let shots = vec![
            DosedShot::Circle {
                shot: CircleShot::new(20, 20, 5),
                dose: 0.1, // dose irrelevant for intent
            },
            DosedShot::Rect {
                rect: Rect::new(40, 40, 50, 45),
                dose: 1.0,
            },
        ];
        let intent = intended_pattern(&shots, 64);
        assert!(intent.get(20, 20));
        assert!(intent.get(45, 42));
        assert!(!intent.get(60, 60));
    }
}
