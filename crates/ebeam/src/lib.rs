//! E-beam mask-writer simulation for CFAOPC.
//!
//! The paper's motivation chain rests on two mask-writing claims:
//! rectangular-fractured curvilinear masks are "prone to writing errors
//! due to short-range e-beam blur in the 20–40 nm range", and the
//! circular writer's lower shot count cuts write time and improves
//! yield. This crate makes those claims measurable:
//!
//! * [`EbeamPsf`] — the double-Gaussian proximity function (forward blur
//!   `α`, backscatter `β`/`η`), with its analytic transfer function;
//! * [`WriterModel`] — additive per-shot dose deposition (circular and
//!   VSB-rectangular shots), FFT blur, threshold develop, writing-error
//!   and write-time measures, seeded flash-dose noise;
//! * [`correct_proximity`] — iterative per-shot proximity-effect
//!   correction (PEC).
//!
//! # Examples
//!
//! ```
//! use cfaopc_ebeam::{intended_pattern, DosedShot, EbeamPsf, WriterModel};
//! use cfaopc_fracture::{CircleShot, CircularMask};
//!
//! # fn main() -> Result<(), cfaopc_fft::FftError> {
//! let writer = WriterModel::new(128, 4.0, EbeamPsf::forward_only(25.0))?;
//! let mask = CircularMask::from_shots(vec![
//!     CircleShot::new(60, 64, 10),
//!     CircleShot::new(72, 64, 10),
//! ]);
//! let shots = WriterModel::dose_circles(&mask);
//! let written = writer.write(&shots);
//! let intended = intended_pattern(&shots, 128);
//! assert!(written.count_ones() > 0);
//! assert!(writer.writing_error(&shots, &intended) < intended.count_ones());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pec;
mod psf;
mod writer;

pub use pec::{correct_proximity, PecConfig, PecResult};
pub use psf::EbeamPsf;
pub use writer::{intended_pattern, DosedShot, WriterModel};
