//! The e-beam point-spread function.
//!
//! Electron exposure spreads by two mechanisms: **forward scattering**
//! (short range, the 20–40 nm blur the paper blames for VSB writing
//! errors) and **backscattering** from the substrate (micron range,
//! low amplitude). The classic double-Gaussian proximity function is
//!
//! ```text
//! f(r) = 1/(π(1+η)) · [ 1/α² e^{−r²/α²} + η/β² e^{−r²/β²} ]
//! ```
//!
//! with forward range `α`, backscatter range `β` and backscatter ratio
//! `η`. Its Fourier transform is analytic — a weighted sum of Gaussians —
//! so the transfer function is built directly in the frequency domain.

use cfaopc_fft::signed_freq;

/// Double-Gaussian e-beam proximity parameters, in nanometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EbeamPsf {
    /// Forward-scattering range `α` (paper: 20–40 nm short-range blur).
    pub alpha_nm: f64,
    /// Backscattering range `β` (typically microns).
    pub beta_nm: f64,
    /// Backscatter-to-forward deposited-energy ratio `η`.
    pub eta: f64,
}

impl Default for EbeamPsf {
    fn default() -> Self {
        EbeamPsf {
            alpha_nm: 30.0,
            beta_nm: 2000.0,
            eta: 0.5,
        }
    }
}

impl EbeamPsf {
    /// A forward-scattering-only PSF (no backscatter) with range `alpha_nm`.
    pub fn forward_only(alpha_nm: f64) -> Self {
        EbeamPsf {
            alpha_nm,
            beta_nm: 1.0,
            eta: 0.0,
        }
    }

    /// Validates physical ranges.
    ///
    /// # Panics
    ///
    /// Panics when a range is non-positive or `eta` is negative.
    pub fn validate(&self) {
        assert!(self.alpha_nm > 0.0, "forward range must be positive");
        assert!(self.beta_nm > 0.0, "backscatter range must be positive");
        assert!(self.eta >= 0.0, "backscatter ratio must be non-negative");
    }

    /// The transfer function (Fourier transform of the normalized PSF)
    /// sampled on an `n × n` grid with `pixel_nm` pitch, DC at index 0.
    ///
    /// `F(ν) = [e^{−π²α²|ν|²} + η e^{−π²β²|ν|²}] / (1+η)` — real, ≤ 1,
    /// exactly 1 at DC (energy conservation).
    pub fn transfer_function(&self, n: usize, pixel_nm: f64) -> Vec<f64> {
        self.validate();
        let freq_step = 1.0 / (n as f64 * pixel_nm);
        let a2 = std::f64::consts::PI.powi(2) * self.alpha_nm * self.alpha_nm;
        let b2 = std::f64::consts::PI.powi(2) * self.beta_nm * self.beta_nm;
        let norm = 1.0 / (1.0 + self.eta);
        let mut out = vec![0.0f64; n * n];
        for ky in 0..n {
            let fy = signed_freq(ky, n) as f64 * freq_step;
            for kx in 0..n {
                let fx = signed_freq(kx, n) as f64 * freq_step;
                let nu2 = fx * fx + fy * fy;
                out[ky * n + kx] = norm * ((-a2 * nu2).exp() + self.eta * (-b2 * nu2).exp());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_unity() {
        let psf = EbeamPsf::default();
        let tf = psf.transfer_function(32, 4.0);
        assert!((tf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_decays_with_frequency() {
        let psf = EbeamPsf::default();
        let n = 32;
        let tf = psf.transfer_function(n, 4.0);
        // Along the first row, frequency grows to Nyquist at n/2.
        assert!(tf[1] < tf[0]);
        assert!(tf[n / 2] < tf[4]);
        assert!(tf.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
    }

    #[test]
    fn larger_alpha_blurs_more() {
        let n = 32;
        let sharp = EbeamPsf::forward_only(10.0).transfer_function(n, 4.0);
        let soft = EbeamPsf::forward_only(40.0).transfer_function(n, 4.0);
        for k in 1..n / 2 {
            assert!(soft[k] <= sharp[k] + 1e-12, "bin {k}");
        }
    }

    #[test]
    fn eta_zero_removes_backscatter_term() {
        let n = 16;
        let a = EbeamPsf::forward_only(30.0).transfer_function(n, 4.0);
        let b = EbeamPsf {
            alpha_nm: 30.0,
            beta_nm: 2000.0,
            eta: 0.0,
        }
        .transfer_function(n, 4.0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "forward range must be positive")]
    fn rejects_bad_alpha() {
        EbeamPsf {
            alpha_nm: 0.0,
            ..EbeamPsf::default()
        }
        .validate();
    }
}
