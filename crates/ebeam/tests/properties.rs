//! Property-based tests for the e-beam writer model.

use cfaopc_ebeam::{intended_pattern, DosedShot, EbeamPsf, WriterModel};
use cfaopc_fracture::CircleShot;
use cfaopc_grid::Rect;
use proptest::prelude::*;

const N: usize = 64;

fn arb_shots() -> impl Strategy<Value = Vec<DosedShot>> {
    proptest::collection::vec(
        prop_oneof![
            (8i32..56, 8i32..56, 2i32..8, 0.5f64..1.5).prop_map(|(x, y, r, d)| {
                DosedShot::Circle {
                    shot: CircleShot::new(x, y, r),
                    dose: d,
                }
            }),
            (8i32..48, 8i32..48, 2i32..10, 2i32..10, 0.5f64..1.5).prop_map(|(x, y, w, h, d)| {
                DosedShot::Rect {
                    rect: Rect::new(x, y, x + w, y + h),
                    dose: d,
                }
            }),
        ],
        1..6,
    )
}

fn writer() -> WriterModel {
    WriterModel::new(N, 16.0, EbeamPsf::forward_only(30.0)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blur_conserves_total_dose(shots in arb_shots()) {
        let w = writer();
        let raw = w.deposit(&shots);
        let blurred = w.blur(&raw);
        let total_raw: f64 = raw.as_slice().iter().sum();
        let total_blurred: f64 = blurred.as_slice().iter().sum();
        // DC gain of the PSF is exactly 1 (cyclic convolution).
        prop_assert!((total_raw - total_blurred).abs() < 1e-6 * total_raw.max(1.0));
    }

    #[test]
    fn delivered_dose_is_nonnegative_and_finite(shots in arb_shots()) {
        let w = writer();
        let delivered = w.expose(&shots);
        for &v in delivered.as_slice() {
            prop_assert!(v.is_finite());
            // FFT round-off can leave tiny negative residue.
            prop_assert!(v > -1e-5, "negative dose {v}");
        }
    }

    #[test]
    fn doubling_every_dose_grows_the_written_pattern(shots in arb_shots()) {
        let w = writer();
        let written = w.write(&shots);
        let doubled: Vec<DosedShot> = shots
            .iter()
            .map(|s| match *s {
                DosedShot::Circle { shot, dose } => DosedShot::Circle { shot, dose: dose * 2.0 },
                DosedShot::Rect { rect, dose } => DosedShot::Rect { rect, dose: dose * 2.0 },
            })
            .collect();
        let written2 = w.write(&doubled);
        for p in written.ones() {
            prop_assert!(written2.at(p), "doubled dose lost pixel {p}");
        }
    }

    #[test]
    fn writing_is_deterministic(shots in arb_shots()) {
        let w = writer();
        prop_assert_eq!(w.write(&shots), w.write(&shots));
    }

    #[test]
    fn intended_pattern_is_dose_independent(shots in arb_shots()) {
        let halved: Vec<DosedShot> = shots
            .iter()
            .map(|s| match *s {
                DosedShot::Circle { shot, dose } => DosedShot::Circle { shot, dose: dose * 0.5 },
                DosedShot::Rect { rect, dose } => DosedShot::Rect { rect, dose: dose * 0.5 },
            })
            .collect();
        prop_assert_eq!(intended_pattern(&shots, N), intended_pattern(&halved, N));
    }
}
