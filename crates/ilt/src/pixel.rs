//! Pixel-level ILT: gradient descent on a latent pixel field (paper §4.1).
//!
//! The mask is parameterized as `M = σ(θ_m · P)` with an unconstrained
//! latent field `P` (the shifted-sigmoid binarization of MOSAIC/MultiILT);
//! the loss is the relaxed `L2 + L_pvb` of Eq. 6 and its gradient comes
//! from the hand-derived adjoint in `cfaopc-litho`.

use crate::optimizer::{Optimizer, OptimizerKind};
use cfaopc_grid::{dilate, BitGrid, Grid2D, Structuring};
use cfaopc_litho::{
    loss_and_gradient, sigmoid, CancelToken, LithoError, LithoSimulator, LossValues, LossWeights,
    NonFiniteTerm,
};
use cfaopc_trace::{grad_norms, IterationRecord, Stage, TelemetrySink};

/// Where latent pixels are allowed to move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateDomain {
    /// Every pixel optimizes — SRAFs can nucleate anywhere (MOSAIC,
    /// MultiILT style).
    Full,
    /// Only pixels within `halo_nm` of the target may change — masks stay
    /// near the main features and grow no SRAFs (DevelSet-style level-set
    /// evolution keeps the front near the initial shape).
    NearTarget {
        /// Halo radius around the target, nanometres.
        halo_nm: f64,
    },
}

/// Configuration of one pixel-level ILT run.
#[derive(Debug, Clone, PartialEq)]
pub struct PixelIltConfig {
    /// Gradient steps.
    pub iterations: usize,
    /// Optimizer and learning rate.
    pub optimizer: OptimizerKind,
    /// Loss term weights (Eq. 6 uses 1/1).
    pub weights: LossWeights,
    /// Steepness `θ_m` of the mask sigmoid (paper §4.1 follows \[10\]).
    pub mask_steepness: f64,
    /// Magnitude of the latent initialization (`P = ±init_amplitude`).
    pub init_amplitude: f64,
    /// Update domain.
    pub domain: UpdateDomain,
    /// 3×3 box-blur passes applied to the mask gradient before the chain
    /// rule — smoother gradients yield smoother, lower-complexity masks
    /// (the surrogate for the neural regularization of Neural-ILT).
    pub grad_smoothing: usize,
    /// Initialize the latent from the target dilated by this many nm
    /// (0 = the raw target).
    pub init_dilation_nm: f64,
}

impl Default for PixelIltConfig {
    fn default() -> Self {
        PixelIltConfig {
            iterations: 30,
            optimizer: OptimizerKind::adam(0.2),
            weights: LossWeights::default(),
            mask_steepness: 4.0,
            init_amplitude: 1.0,
            domain: UpdateDomain::Full,
            grad_smoothing: 0,
            init_dilation_nm: 0.0,
        }
    }
}

/// Outcome of a pixel-level ILT run.
#[derive(Debug, Clone)]
pub struct IltResult {
    /// Final latent field.
    pub latent: Grid2D<f64>,
    /// Final continuous mask `σ(θ_m P)`.
    pub mask_continuous: Grid2D<f64>,
    /// Final binary mask (continuous mask thresholded at 0.5).
    pub mask_binary: BitGrid,
    /// Relaxed loss after every iteration (index 0 = after the first step).
    pub loss_history: Vec<LossValues>,
}

/// Runs pixel-level ILT for `target` on `sim`.
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] when `target` does not match the
/// simulator grid.
pub fn run_pixel_ilt(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &PixelIltConfig,
) -> Result<IltResult, LithoError> {
    run_pixel_ilt_with_init_traced(sim, target, config, None, None)
}

/// [`run_pixel_ilt`] with a [`TelemetrySink`] receiving one
/// [`IterationRecord`] per gradient step (stage [`Stage::PixelIlt`];
/// `active` counts mask pixels above 0.5).
///
/// Attaching a sink never changes the optimization — the result is
/// bit-identical to the untraced run.
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] on a grid mismatch, or
/// [`LithoError::NonFinite`] when the health guard trips.
pub fn run_pixel_ilt_traced(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &PixelIltConfig,
    sink: &mut dyn TelemetrySink,
) -> Result<IltResult, LithoError> {
    run_pixel_ilt_with_init_traced(sim, target, config, None, Some(sink))
}

/// Runs pixel-level ILT from an explicit latent initialization (used by
/// the multi-resolution engine to warm-start finer levels).
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] when `target` or `init_latent`
/// do not match the simulator grid.
pub fn run_pixel_ilt_with_init(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &PixelIltConfig,
    init_latent: Option<&Grid2D<f64>>,
) -> Result<IltResult, LithoError> {
    run_pixel_ilt_with_init_traced(sim, target, config, init_latent, None)
}

/// The most general pixel-ILT entry point: optional warm-start latent
/// **and** optional telemetry sink. The other `run_pixel_ilt*` functions
/// are thin wrappers over this.
///
/// Every iteration the numerical-health guard checks the loss terms and
/// the latent gradient's L2/L∞ norms; a NaN or Inf aborts the run with
/// [`LithoError::NonFinite`] naming the iteration and offending term
/// (the poisoned record is still delivered to the sink first, for
/// post-mortems).
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] on a grid mismatch, or
/// [`LithoError::NonFinite`] when the health guard trips.
pub fn run_pixel_ilt_with_init_traced(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &PixelIltConfig,
    init_latent: Option<&Grid2D<f64>>,
    sink: Option<&mut (dyn TelemetrySink + '_)>,
) -> Result<IltResult, LithoError> {
    run_pixel_ilt_cancellable(sim, target, config, init_latent, sink, None)
}

/// [`run_pixel_ilt_with_init_traced`] plus cooperative cancellation.
///
/// The token is polled once at the top of every iteration; a cancelled
/// token aborts with [`LithoError::Cancelled`] before any further
/// simulation work, leaving the simulator's shared state (kernels, FFT
/// plans, buffer pools) and the worker pool fully reusable — the same
/// exit discipline as the [`LithoError::NonFinite`] health guard.
///
/// # Errors
///
/// As [`run_pixel_ilt_with_init_traced`], plus [`LithoError::Cancelled`]
/// when `cancel` fires mid-run.
pub fn run_pixel_ilt_cancellable(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &PixelIltConfig,
    init_latent: Option<&Grid2D<f64>>,
    mut sink: Option<&mut (dyn TelemetrySink + '_)>,
    cancel: Option<&CancelToken>,
) -> Result<IltResult, LithoError> {
    let _span = cfaopc_trace::span("ilt.pixel");
    let n = sim.size();
    if target.width() != n || target.height() != n {
        return Err(LithoError::ShapeMismatch {
            expected: (n, n),
            actual: (target.width(), target.height()),
        });
    }
    if let Some(l) = init_latent {
        if l.width() != n || l.height() != n {
            return Err(LithoError::ShapeMismatch {
                expected: (n, n),
                actual: (l.width(), l.height()),
            });
        }
    }
    let target_real = target.to_real();

    // Latent init: explicit warm start, or ±amplitude inside/outside the
    // (possibly dilated) target.
    let mut latent: Vec<f64> = match init_latent {
        Some(l) => l.as_slice().to_vec(),
        None => {
            let init_px = sim.config().nm_to_px(config.init_dilation_nm).round() as i32;
            let seed = if init_px > 0 {
                dilate(target, Structuring::Disk(init_px))
            } else {
                target.clone()
            };
            let amp = config.init_amplitude;
            seed.to_real()
                .as_slice()
                .iter()
                .map(|&v| if v > 0.5 { amp } else { -amp })
                .collect()
        }
    };

    // Domain indicator.
    let domain: Option<Vec<bool>> = match config.domain {
        UpdateDomain::Full => None,
        UpdateDomain::NearTarget { halo_nm } => {
            let halo_px = sim.config().nm_to_px(halo_nm).round().max(1.0) as i32;
            let allowed = dilate(target, Structuring::Disk(halo_px));
            Some(allowed.as_grid().as_slice().to_vec())
        }
    };

    let theta = config.mask_steepness;
    let mut optimizer = Optimizer::new(config.optimizer, latent.len());
    let mut history = Vec::with_capacity(config.iterations);
    let mut grad_p = vec![0.0f64; latent.len()];

    for it in 0..config.iterations {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(LithoError::Cancelled { iteration: it });
        }
        let mask = mask_from_latent(&latent, n, theta);
        let (values, mut grad_m) = loss_and_gradient(sim, &mask, &target_real, config.weights)?;
        history.push(values);
        for _ in 0..config.grad_smoothing {
            grad_m = box_blur3(&grad_m);
        }
        // Chain rule through the sigmoid: dL/dP = dL/dM · θ m (1 − m).
        let mut active = 0usize;
        for i in 0..latent.len() {
            let m = mask.as_slice()[i];
            if m > 0.5 {
                active += 1;
            }
            let mut g = grad_m.as_slice()[i] * theta * m * (1.0 - m);
            if let Some(dom) = &domain {
                if !dom[i] {
                    g = 0.0;
                }
            }
            grad_p[i] = g;
        }
        let (grad_l2, grad_linf) = grad_norms(&grad_p);
        let term = values.non_finite_term().or_else(|| {
            (!grad_l2.is_finite() || !grad_linf.is_finite()).then_some(NonFiniteTerm::Gradient)
        });
        if let Some(s) = sink.as_deref_mut() {
            s.record(&IterationRecord {
                stage: Stage::PixelIlt,
                iteration: it,
                loss_l2: values.l2,
                loss_pvb: values.pvb,
                loss_total: values.total,
                sparsity: 0.0,
                active,
                grad_l2,
                grad_linf,
            });
        }
        if let Some(term) = term {
            cfaopc_trace::counters::NONFINITE_ABORTS.incr();
            return Err(LithoError::NonFinite {
                iteration: it,
                term,
            });
        }
        optimizer.step(&mut latent, &grad_p);
    }

    let mask_continuous = mask_from_latent(&latent, n, theta);
    let mask_binary = BitGrid::from_threshold(&mask_continuous, 0.5);
    Ok(IltResult {
        latent: Grid2D::from_vec(n, n, latent),
        mask_continuous,
        mask_binary,
        loss_history: history,
    })
}

fn mask_from_latent(latent: &[f64], n: usize, theta: f64) -> Grid2D<f64> {
    Grid2D::from_vec(n, n, latent.iter().map(|&p| sigmoid(theta * p)).collect())
}

/// One 3×3 box-blur pass with clamped borders.
pub(crate) fn box_blur3(g: &Grid2D<f64>) -> Grid2D<f64> {
    let (w, h) = (g.width(), g.height());
    let mut out = Grid2D::new(w, h, 0.0);
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let mut acc = 0.0;
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let xx = (x + dx).clamp(0, w as i32 - 1) as usize;
                    let yy = (y + dy).clamp(0, h as i32 - 1) as usize;
                    acc += g[(xx, yy)];
                }
            }
            out[(x as usize, y as usize)] = acc / 9.0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{fill_rect, Rect};
    use cfaopc_litho::LithoConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig::fast_test()).unwrap()
    }

    fn bar_target(n: usize) -> BitGrid {
        let mut t = BitGrid::new(n, n);
        // 64px/2048nm grid: a 96nm x 768nm bar.
        fill_rect(&mut t, Rect::new(30, 20, 33, 44));
        t
    }

    #[test]
    fn loss_decreases_over_iterations() {
        let s = sim();
        let target = bar_target(s.size());
        let cfg = PixelIltConfig {
            iterations: 12,
            ..PixelIltConfig::default()
        };
        let result = run_pixel_ilt(&s, &target, &cfg).unwrap();
        let first = result.loss_history.first().unwrap().total;
        let last = result.loss_history.last().unwrap().total;
        assert!(last < first, "ILT failed to descend: {first} -> {last}");
    }

    #[test]
    fn optimized_mask_beats_raw_target_on_the_objective() {
        // Compare the relaxed L2+PVB objective of the final binary mask
        // against the raw target used as a mask.
        let s = sim();
        let target = bar_target(s.size());
        let cfg = PixelIltConfig {
            iterations: 25,
            ..PixelIltConfig::default()
        };
        let result = run_pixel_ilt(&s, &target, &cfg).unwrap();
        let w = LossWeights::default();
        let opt = cfaopc_litho::loss_only(&s, &result.mask_binary.to_real(), &target.to_real(), w)
            .unwrap()
            .total;
        let raw = cfaopc_litho::loss_only(&s, &target.to_real(), &target.to_real(), w)
            .unwrap()
            .total;
        assert!(opt < raw, "optimized {opt} should beat raw {raw}");
    }

    #[test]
    fn near_target_domain_confines_the_mask() {
        let s = sim();
        let n = s.size();
        let target = bar_target(n);
        let cfg = PixelIltConfig {
            iterations: 10,
            domain: UpdateDomain::NearTarget { halo_nm: 96.0 },
            ..PixelIltConfig::default()
        };
        let result = run_pixel_ilt(&s, &target, &cfg).unwrap();
        let halo_px = s.config().nm_to_px(96.0).round() as i32;
        let allowed = dilate(&target, Structuring::Disk(halo_px));
        for p in result.mask_binary.ones() {
            assert!(allowed.at(p), "mask pixel {p} escaped the domain");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = sim();
        let target = bar_target(s.size());
        let cfg = PixelIltConfig {
            iterations: 6,
            ..PixelIltConfig::default()
        };
        let a = run_pixel_ilt(&s, &target, &cfg).unwrap();
        let b = run_pixel_ilt(&s, &target, &cfg).unwrap();
        assert_eq!(a.mask_binary, b.mask_binary);
        assert_eq!(a.loss_history.len(), b.loss_history.len());
    }

    #[test]
    fn zero_iterations_returns_initialization() {
        let s = sim();
        let target = bar_target(s.size());
        let cfg = PixelIltConfig {
            iterations: 0,
            ..PixelIltConfig::default()
        };
        let result = run_pixel_ilt(&s, &target, &cfg).unwrap();
        assert!(result.loss_history.is_empty());
        assert_eq!(result.mask_binary, target);
    }

    #[test]
    fn init_dilation_grows_initial_mask() {
        let s = sim();
        let target = bar_target(s.size());
        let cfg = PixelIltConfig {
            iterations: 0,
            init_dilation_nm: 64.0,
            ..PixelIltConfig::default()
        };
        let result = run_pixel_ilt(&s, &target, &cfg).unwrap();
        assert!(result.mask_binary.count_ones() > target.count_ones());
    }

    #[test]
    fn box_blur_preserves_mean() {
        let mut g = Grid2D::new(8, 8, 0.0);
        g[(3, 3)] = 9.0;
        let b = box_blur3(&g);
        let sum: f64 = b.as_slice().iter().sum();
        assert!((sum - 9.0).abs() < 1e-9);
        assert!((b[(3, 3)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_wrong_target_shape() {
        let s = sim();
        let target = BitGrid::new(8, 8);
        assert!(run_pixel_ilt(&s, &target, &PixelIltConfig::default()).is_err());
    }

    #[test]
    fn traced_run_is_bit_identical_and_records_every_iteration() {
        let s = sim();
        let target = bar_target(s.size());
        let cfg = PixelIltConfig {
            iterations: 6,
            ..PixelIltConfig::default()
        };
        let plain = run_pixel_ilt(&s, &target, &cfg).unwrap();
        let mut sink = cfaopc_trace::MemorySink::new();
        let traced = run_pixel_ilt_traced(&s, &target, &cfg, &mut sink).unwrap();
        assert_eq!(plain.mask_binary, traced.mask_binary);
        for (a, b) in plain.latent.as_slice().iter().zip(traced.latent.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "sink perturbed the latent");
        }
        let recs = sink.records();
        assert_eq!(recs.len(), cfg.iterations);
        for (it, (r, h)) in recs.iter().zip(&plain.loss_history).enumerate() {
            assert_eq!(r.stage, Stage::PixelIlt);
            assert_eq!(r.iteration, it);
            assert_eq!(r.loss_total.to_bits(), h.total.to_bits());
            assert!(r.active > 0);
            assert!(r.grad_l2.is_finite() && r.grad_linf <= r.grad_l2);
        }
    }

    #[test]
    fn poisoned_weights_abort_with_typed_diagnostic() {
        let s = sim();
        let target = bar_target(s.size());
        let cfg = PixelIltConfig {
            iterations: 8,
            weights: LossWeights {
                l2: f64::NAN,
                pvb: 1.0,
            },
            ..PixelIltConfig::default()
        };
        // The raw l2/pvb terms stay finite; the weighted total is the
        // first poisoned quantity the guard sees.
        match run_pixel_ilt(&s, &target, &cfg) {
            Err(LithoError::NonFinite { iteration, term }) => {
                assert_eq!(iteration, 0);
                assert_eq!(term, NonFiniteTerm::LossTotal);
            }
            other => panic!("expected NonFinite abort, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_record_reaches_the_sink_before_the_abort() {
        let s = sim();
        let target = bar_target(s.size());
        let cfg = PixelIltConfig {
            iterations: 8,
            weights: LossWeights {
                l2: 1.0,
                pvb: f64::INFINITY,
            },
            ..PixelIltConfig::default()
        };
        let mut sink = cfaopc_trace::MemorySink::new();
        let err = run_pixel_ilt_traced(&s, &target, &cfg, &mut sink).unwrap_err();
        assert!(matches!(err, LithoError::NonFinite { iteration: 0, .. }));
        let recs = sink.records();
        assert_eq!(recs.len(), 1, "the poisoned iteration must still record");
        assert!(!recs[0].loss_total.is_finite());
    }
}
