//! Level-set inverse lithography (the DevelSet [4] / GPU-level-set [9]
//! family).
//!
//! The mask is the sub-zero set of a level-set function `φ` (negative
//! inside). Each iteration relaxes the mask as
//! `M = σ(−φ/ε)`, pulls the lithography gradient back onto `φ`
//! (`∂M/∂φ = −(1/ε)·M(1−M)`), steps, and periodically **re-initializes**
//! `φ` to a signed distance function of its own zero level set — the
//! classical stabilization that keeps `|∇φ| ≈ 1`.
//!
//! Because `∂M/∂φ` vanishes away from the interface, the evolution moves
//! the existing front but does not nucleate new regions: level-set masks
//! carry **no SRAFs**, exactly the DevelSet profile the paper's Table 1/2
//! rely on.

use crate::optimizer::{Optimizer, OptimizerKind};
use crate::pixel::IltResult;
use cfaopc_grid::{distance_to, BitGrid, Grid2D};
use cfaopc_litho::{loss_and_gradient, sigmoid, LithoError, LithoSimulator, LossWeights};

/// Level-set ILT configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSetConfig {
    /// Evolution steps.
    pub iterations: usize,
    /// Optimizer over `φ` (Adam by default).
    pub optimizer: OptimizerKind,
    /// Loss weights.
    pub weights: LossWeights,
    /// Interface half-width `ε` in pixels for the relaxed mask.
    pub epsilon: f64,
    /// Re-initialize `φ` to a signed distance function every this many
    /// steps (0 disables re-initialization).
    pub reinit_every: usize,
}

impl Default for LevelSetConfig {
    fn default() -> Self {
        LevelSetConfig {
            iterations: 30,
            optimizer: OptimizerKind::adam(0.4),
            weights: LossWeights::default(),
            epsilon: 1.5,
            reinit_every: 10,
        }
    }
}

/// Signed distance to the boundary of `mask`: negative inside, positive
/// outside, approximately `|∇φ| = 1`.
pub fn signed_distance(mask: &BitGrid) -> Grid2D<f64> {
    let (w, h) = (mask.width(), mask.height());
    let mut complement = BitGrid::new(w, h);
    for y in 0..h {
        for x in 0..w {
            complement.set(x, y, !mask.get(x, y));
        }
    }
    let d_out = distance_to(mask); // 0 inside the mask
    let d_in = distance_to(&complement); // 0 outside the mask
    let mut phi = Grid2D::new(w, h, 0.0f64);
    for i in 0..w * h {
        phi.as_mut_slice()[i] = d_out.as_slice()[i] - d_in.as_slice()[i];
    }
    phi
}

/// Runs level-set ILT from `target`'s own boundary.
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] when `target` does not match the
/// simulator grid.
pub fn run_levelset_ilt(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &LevelSetConfig,
) -> Result<IltResult, LithoError> {
    let n = sim.size();
    if target.width() != n || target.height() != n {
        return Err(LithoError::ShapeMismatch {
            expected: (n, n),
            actual: (target.width(), target.height()),
        });
    }
    let target_real = target.to_real();
    let mut phi = signed_distance(target).into_vec();
    let inv_eps = 1.0 / config.epsilon;
    let mut optimizer = Optimizer::new(config.optimizer, phi.len());
    let mut history = Vec::with_capacity(config.iterations);
    let mut grad_phi = vec![0.0f64; phi.len()];

    for step in 0..config.iterations {
        let mask = Grid2D::from_vec(n, n, phi.iter().map(|&p| sigmoid(-p * inv_eps)).collect());
        let (values, grad_m) = loss_and_gradient(sim, &mask, &target_real, config.weights)?;
        history.push(values);
        for (g, (&m, &gm)) in grad_phi
            .iter_mut()
            .zip(mask.as_slice().iter().zip(grad_m.as_slice()))
        {
            *g = -gm * inv_eps * m * (1.0 - m);
        }
        optimizer.step(&mut phi, &grad_phi);
        if config.reinit_every > 0 && (step + 1) % config.reinit_every == 0 {
            let binary = BitGrid::from_threshold(
                &Grid2D::from_vec(n, n, phi.iter().map(|&p| -p).collect()),
                0.0,
            );
            phi = signed_distance(&binary).into_vec();
            // The optimizer's moments refer to the pre-reinit surface.
            optimizer = Optimizer::new(config.optimizer, phi.len());
        }
    }

    let latent = Grid2D::from_vec(n, n, phi.iter().map(|&p| -p).collect());
    let mask_continuous =
        Grid2D::from_vec(n, n, phi.iter().map(|&p| sigmoid(-p * inv_eps)).collect());
    let mask_binary = BitGrid::from_threshold(&mask_continuous, 0.5);
    Ok(IltResult {
        latent,
        mask_continuous,
        mask_binary,
        loss_history: history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{fill_rect, Point, Rect};
    use cfaopc_litho::LithoConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig {
            size: 128,
            kernel_count: 6,
            ..LithoConfig::default()
        })
        .unwrap()
    }

    fn bar_target(n: usize) -> BitGrid {
        let mut t = BitGrid::new(n, n);
        fill_rect(&mut t, Rect::new(61, 40, 67, 88));
        t
    }

    #[test]
    fn signed_distance_signs_and_magnitude() {
        let mut m = BitGrid::new(32, 32);
        fill_rect(&mut m, Rect::new(8, 8, 24, 24));
        let phi = signed_distance(&m);
        assert!(phi[(16, 16)] < -6.0, "deep inside: {}", phi[(16, 16)]);
        assert!(phi[(0, 0)] > 6.0, "far outside: {}", phi[(0, 0)]);
        // Just inside the boundary.
        assert!((phi[(8, 16)] + 1.0).abs() < 0.5, "{}", phi[(8, 16)]);
    }

    #[test]
    fn zero_level_set_recovers_the_mask() {
        let mut m = BitGrid::new(32, 32);
        fill_rect(&mut m, Rect::new(5, 9, 20, 27));
        let phi = signed_distance(&m);
        let back = BitGrid::from_threshold(&phi.map(|&p| -p), 0.0);
        assert_eq!(back, m);
    }

    #[test]
    fn levelset_descends_the_loss() {
        let s = sim();
        let target = bar_target(s.size());
        let result = run_levelset_ilt(&s, &target, &LevelSetConfig::default()).unwrap();
        let first = result.loss_history.first().unwrap().total;
        let last = result.loss_history.last().unwrap().total;
        assert!(
            last < first,
            "level set failed to descend: {first} -> {last}"
        );
    }

    #[test]
    fn levelset_masks_have_no_srafs() {
        let s = sim();
        let target = bar_target(s.size());
        let result = run_levelset_ilt(&s, &target, &LevelSetConfig::default()).unwrap();
        // Every mask pixel stays near the target front (no remote
        // nucleation).
        let phi_t = signed_distance(&target);
        for p in result.mask_binary.ones() {
            let d = phi_t[(p.x as usize, p.y as usize)];
            assert!(
                d < 12.0,
                "mask pixel {p} nucleated {d:.1} px away from the front"
            );
        }
        assert!(result.mask_binary.count_ones() > 0);
    }

    #[test]
    fn reinit_restores_signed_distance() {
        // After a run with reinit, |φ| near the front stays ~distance-like
        // (bounded), rather than exploding.
        let s = sim();
        let target = bar_target(s.size());
        let cfg = LevelSetConfig {
            iterations: 10,
            reinit_every: 5,
            ..LevelSetConfig::default()
        };
        let result = run_levelset_ilt(&s, &target, &cfg).unwrap();
        // Latent = -φ; near the mask boundary it must be small.
        let boundary = cfaopc_grid::boundary_pixels(&result.mask_binary);
        for p in boundary.ones().into_iter().take(50) {
            let v = result.latent[(p.x as usize, p.y as usize)].abs();
            assert!(v < 5.0, "φ at boundary {p} drifted to {v}");
        }
        let _ = Point::new(0, 0);
    }

    #[test]
    fn deterministic() {
        let s = sim();
        let target = bar_target(s.size());
        let a = run_levelset_ilt(&s, &target, &LevelSetConfig::default()).unwrap();
        let b = run_levelset_ilt(&s, &target, &LevelSetConfig::default()).unwrap();
        assert_eq!(a.mask_binary, b.mask_binary);
    }

    #[test]
    fn rejects_wrong_shape() {
        let s = sim();
        let target = BitGrid::new(16, 16);
        assert!(run_levelset_ilt(&s, &target, &LevelSetConfig::default()).is_err());
    }
}
