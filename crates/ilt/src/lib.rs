//! Pixel-level inverse lithography (ILT) engines.
//!
//! Gradient-based mask optimization over a latent pixel field, the
//! substrate under both halves of the paper:
//!
//! * CircleRule (paper §3) fractures masks produced by these engines;
//! * CircleOpt (paper §4) uses [`IltEngine::Mosaic`] for its pixel-level
//!   initialization stage.
//!
//! See [`run_pixel_ilt`] for the optimizer loop, [`IltEngine`] /
//! [`run_engine`] for the named baseline profiles, and
//! [`Optimizer`]/[`OptimizerKind`] for the shared first-order optimizers
//! (the circle-level stage reuses them).
//!
//! # Examples
//!
//! ```
//! use cfaopc_grid::{fill_rect, BitGrid, Rect};
//! use cfaopc_ilt::{run_pixel_ilt, PixelIltConfig};
//! use cfaopc_litho::{LithoConfig, LithoSimulator};
//!
//! # fn main() -> Result<(), cfaopc_litho::LithoError> {
//! let sim = LithoSimulator::new(LithoConfig::fast_test())?;
//! let mut target = BitGrid::new(64, 64);
//! fill_rect(&mut target, Rect::new(30, 20, 33, 44));
//! let cfg = PixelIltConfig { iterations: 5, ..PixelIltConfig::default() };
//! let result = run_pixel_ilt(&sim, &target, &cfg)?;
//! assert_eq!(result.mask_binary.width(), 64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engines;
mod levelset;
mod optimizer;
mod pixel;

pub use engines::{downsample_majority, run_engine, upsample_nearest, IltEngine};
pub use levelset::{run_levelset_ilt, signed_distance, LevelSetConfig};
pub use optimizer::{Optimizer, OptimizerKind};
pub use pixel::{
    run_pixel_ilt, run_pixel_ilt_cancellable, run_pixel_ilt_traced, run_pixel_ilt_with_init,
    run_pixel_ilt_with_init_traced, IltResult, PixelIltConfig, UpdateDomain,
};
