//! Named pixel-ILT engines standing in for the paper's baselines.
//!
//! The paper post-processes masks from three published pixel-ILT systems
//! (DevelSet [4], Neural-ILT [11], MultiILT [10]) and initializes
//! CircleOpt with MOSAIC [2]. Those systems are GPU/neural stacks; what
//! the paper's experiments depend on is each system's *mask profile*, so
//! this module provides from-scratch engines with the matching profiles:
//!
//! | Engine          | Profile reproduced                                   |
//! |-----------------|------------------------------------------------------|
//! | `Mosaic`        | plain sigmoid ILT, the paper's stage-1 initializer   |
//! | `DevelSetLike`  | level-set-style front evolution close to the target, **no SRAFs** (the paper notes DevelSet masks carry none) |
//! | `NeuralIltLike` | domain-restricted ILT with smoothed gradients (the low-complexity masks a trained network produces) |
//! | `MultiIltLike`  | multi-resolution coarse→fine ILT, full domain, SRAFs — best L2/EPE, highest mask complexity |

use crate::levelset::{run_levelset_ilt, LevelSetConfig};
use crate::optimizer::OptimizerKind;
use crate::pixel::{
    run_pixel_ilt, run_pixel_ilt_with_init, IltResult, PixelIltConfig, UpdateDomain,
};
use cfaopc_grid::{BitGrid, Grid2D};
use cfaopc_litho::{LithoConfig, LithoError, LithoSimulator};

/// The pixel-ILT engine roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IltEngine {
    /// Plain sigmoid-ILT (MOSAIC \[2\]); also CircleOpt's stage-1 engine.
    Mosaic,
    /// DevelSet-style: front evolution confined to the target
    /// neighbourhood, no SRAFs.
    DevelSetLike,
    /// Neural-ILT-style: restricted domain, smoothed gradients.
    NeuralIltLike,
    /// MultiILT-style: multi-resolution, SRAF-rich, highest quality.
    MultiIltLike,
}

impl IltEngine {
    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            IltEngine::Mosaic => "Mosaic",
            IltEngine::DevelSetLike => "DevelSet",
            IltEngine::NeuralIltLike => "NeuralILT",
            IltEngine::MultiIltLike => "MultiILT",
        }
    }

    /// The three baselines the paper fractures with CircleRule (Table 1
    /// and Table 2), in the paper's column order.
    pub const BASELINES: [IltEngine; 3] = [
        IltEngine::DevelSetLike,
        IltEngine::NeuralIltLike,
        IltEngine::MultiIltLike,
    ];

    /// Full-resolution configuration for this engine with `iterations`
    /// steps.
    pub fn config(self, iterations: usize) -> PixelIltConfig {
        match self {
            IltEngine::Mosaic => PixelIltConfig {
                iterations,
                optimizer: OptimizerKind::adam(0.2),
                ..PixelIltConfig::default()
            },
            IltEngine::DevelSetLike => PixelIltConfig {
                iterations,
                optimizer: OptimizerKind::adam(0.25),
                domain: UpdateDomain::NearTarget { halo_nm: 48.0 },
                init_dilation_nm: 16.0,
                grad_smoothing: 1,
                ..PixelIltConfig::default()
            },
            IltEngine::NeuralIltLike => PixelIltConfig {
                iterations,
                optimizer: OptimizerKind::adam(0.2),
                domain: UpdateDomain::NearTarget { halo_nm: 200.0 },
                grad_smoothing: 2,
                ..PixelIltConfig::default()
            },
            IltEngine::MultiIltLike => PixelIltConfig {
                iterations,
                optimizer: OptimizerKind::adam(0.25),
                // SRAFs nucleate in a wide band around the mains — the
                // realistic SRAF placement zone — rather than the whole
                // tile, which at coarse grids grows unmanufacturable
                // far-field webs.
                domain: UpdateDomain::NearTarget { halo_nm: 320.0 },
                grad_smoothing: 1,
                ..PixelIltConfig::default()
            },
        }
    }
}

/// Runs `engine` on `target` with `iterations` full-resolution steps.
///
/// `MultiIltLike` additionally runs `iterations` steps at 1/4 and 1/2
/// resolution first (when those grids are at least 64 px), warm-starting
/// each finer level from the coarser latent.
///
/// # Errors
///
/// Returns [`LithoError`] on shape mismatches or (for the
/// multi-resolution path) invalid derived configurations.
pub fn run_engine(
    sim: &LithoSimulator,
    target: &BitGrid,
    engine: IltEngine,
    iterations: usize,
) -> Result<IltResult, LithoError> {
    match engine {
        IltEngine::MultiIltLike => run_multiresolution(sim, target, iterations),
        IltEngine::DevelSetLike => run_levelset_ilt(
            sim,
            target,
            &LevelSetConfig {
                iterations,
                ..LevelSetConfig::default()
            },
        ),
        other => run_pixel_ilt(sim, target, &other.config(iterations)),
    }
}

fn run_multiresolution(
    sim: &LithoSimulator,
    target: &BitGrid,
    iterations: usize,
) -> Result<IltResult, LithoError> {
    let n = sim.size();
    let mut factors = Vec::new();
    for f in [4usize, 2] {
        if n / f >= 64 {
            factors.push(f);
        }
    }
    let mut warm: Option<Grid2D<f64>> = None;
    for f in factors {
        let coarse_cfg = LithoConfig {
            size: n / f,
            ..sim.config().clone()
        };
        let coarse_sim = LithoSimulator::new(coarse_cfg)?;
        let coarse_target = downsample_majority(target, f)?;
        let cfg = IltEngine::MultiIltLike.config(iterations);
        let result = run_pixel_ilt_with_init(&coarse_sim, &coarse_target, &cfg, warm.as_ref())?;
        warm = Some(upsample_nearest(&result.latent, 2)?);
        // After upsampling from n/4 we are at n/2; after n/2 at n. The
        // loop structure advances one octave per level by construction
        // (4 then 2), so `warm` always matches the next level's size.
    }
    let cfg = IltEngine::MultiIltLike.config(iterations);
    run_pixel_ilt_with_init(sim, target, &cfg, warm.as_ref())
}

/// Downsamples a binary image by `factor` with 50 % majority voting.
///
/// # Errors
///
/// Returns [`LithoError::BadParameter`] when `factor` is zero.
pub fn downsample_majority(mask: &BitGrid, factor: usize) -> Result<BitGrid, LithoError> {
    if factor == 0 {
        return Err(LithoError::BadParameter(
            "downsample factor must be positive".into(),
        ));
    }
    let (w, h) = (mask.width() / factor, mask.height() / factor);
    let mut out = BitGrid::new(w, h);
    let votes_needed = (factor * factor).div_ceil(2);
    for y in 0..h {
        for x in 0..w {
            let mut votes = 0usize;
            for dy in 0..factor {
                for dx in 0..factor {
                    if mask.get(x * factor + dx, y * factor + dy) {
                        votes += 1;
                    }
                }
            }
            out.set(x, y, votes >= votes_needed);
        }
    }
    Ok(out)
}

/// Upsamples a real grid by `factor` with nearest-neighbour replication.
///
/// # Errors
///
/// Returns [`LithoError::BadParameter`] when `factor` is zero.
pub fn upsample_nearest(grid: &Grid2D<f64>, factor: usize) -> Result<Grid2D<f64>, LithoError> {
    if factor == 0 {
        return Err(LithoError::BadParameter(
            "upsample factor must be positive".into(),
        ));
    }
    let (w, h) = (grid.width() * factor, grid.height() * factor);
    let mut out = Grid2D::new(w, h, 0.0);
    for y in 0..h {
        for x in 0..w {
            out[(x, y)] = grid[(x / factor, y / factor)];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{dilate, fill_rect, Rect, Structuring};

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig {
            size: 128,
            kernel_count: 6,
            ..LithoConfig::default()
        })
        .unwrap()
    }

    fn bar_target(n: usize) -> BitGrid {
        let mut t = BitGrid::new(n, n);
        // 128px/2048nm = 16nm/px: a 96nm x 768nm bar.
        fill_rect(&mut t, Rect::new(61, 40, 67, 88));
        t
    }

    #[test]
    fn every_engine_descends_its_objective() {
        let s = sim();
        let target = bar_target(s.size());
        for engine in [
            IltEngine::Mosaic,
            IltEngine::DevelSetLike,
            IltEngine::NeuralIltLike,
            IltEngine::MultiIltLike,
        ] {
            let result = run_engine(&s, &target, engine, 15).unwrap();
            let first = result.loss_history.first().unwrap().total;
            let last = result.loss_history.last().unwrap().total;
            assert!(
                last < first,
                "{} failed to descend: {first} -> {last}",
                engine.name()
            );
            assert!(
                result.mask_binary.count_ones() > 0,
                "{} produced an empty mask",
                engine.name()
            );
        }
    }

    #[test]
    fn develset_like_stays_near_target() {
        // The level-set front moves, but never nucleates remote SRAFs:
        // everything stays within a modest halo of the target.
        let s = sim();
        let target = bar_target(s.size());
        let result = run_engine(&s, &target, IltEngine::DevelSetLike, 12).unwrap();
        let halo_px = s.config().nm_to_px(192.0).round() as i32;
        let allowed = dilate(&target, Structuring::Disk(halo_px));
        for p in result.mask_binary.ones() {
            assert!(allowed.at(p), "DevelSet-like mask grew an SRAF at {p}");
        }
        assert!(result.mask_binary.count_ones() > 0);
    }

    #[test]
    fn engine_names_are_distinct() {
        let names: std::collections::HashSet<&str> = [
            IltEngine::Mosaic,
            IltEngine::DevelSetLike,
            IltEngine::NeuralIltLike,
            IltEngine::MultiIltLike,
        ]
        .iter()
        .map(|e| e.name())
        .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn downsample_majority_blocks() {
        let mut m = BitGrid::new(4, 4);
        fill_rect(&mut m, Rect::new(0, 0, 2, 2)); // one full quadrant
        m.set(2, 2, true); // 1 of 4 votes — below majority
        let d = downsample_majority(&m, 2).unwrap();
        assert!(d.get(0, 0));
        assert!(!d.get(1, 1));
        assert!(!d.get(1, 0));
    }

    #[test]
    fn zero_resample_factor_is_a_typed_error() {
        // Regression for the typed error paths that replaced the old
        // `assert!(factor > 0)` panics.
        let m = BitGrid::new(4, 4);
        let err = downsample_majority(&m, 0).unwrap_err();
        assert!(matches!(err, LithoError::BadParameter(_)), "got {err:?}");
        let g = Grid2D::from_vec(2, 2, vec![0.0; 4]);
        let err = upsample_nearest(&g, 0).unwrap_err();
        assert!(matches!(err, LithoError::BadParameter(_)), "got {err:?}");
    }

    #[test]
    fn upsample_nearest_replicates() {
        let g = Grid2D::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let u = upsample_nearest(&g, 2).unwrap();
        assert_eq!(u.width(), 4);
        assert_eq!(u[(0, 0)], 1.0);
        assert_eq!(u[(1, 1)], 1.0);
        assert_eq!(u[(2, 0)], 2.0);
        assert_eq!(u[(3, 3)], 4.0);
    }

    #[test]
    fn multiresolution_runs_and_returns_full_size() {
        let s = sim();
        let target = bar_target(s.size());
        let result = run_engine(&s, &target, IltEngine::MultiIltLike, 8).unwrap();
        assert_eq!(result.mask_binary.width(), s.size());
        assert!(!result.loss_history.is_empty());
    }
}
