//! First-order optimizers over flat parameter vectors.
//!
//! Both the pixel-level engines (latent mask pixels) and the circle-level
//! optimizer (the `(xᵢ, yᵢ, rᵢ, qᵢ)` tuples) descend hand-computed
//! gradients; this module supplies plain SGD and Adam.

/// Optimizer choice and hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Vanilla gradient descent `p ← p − lr · g`.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Adam (Kingma & Ba) with bias correction.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay (default 0.9).
        beta1: f64,
        /// Second-moment decay (default 0.999).
        beta2: f64,
        /// Denominator fuzz (default 1e-8).
        eps: f64,
    },
}

impl OptimizerKind {
    /// Adam with the standard moment decays at learning rate `lr`.
    pub fn adam(lr: f64) -> Self {
        OptimizerKind::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Plain SGD at learning rate `lr`.
    pub fn sgd(lr: f64) -> Self {
        OptimizerKind::Sgd { lr }
    }
}

/// Stateful optimizer over a parameter vector of fixed length.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Optimizer {
    /// Creates an optimizer for `len` parameters.
    pub fn new(kind: OptimizerKind, len: usize) -> Self {
        let state = matches!(kind, OptimizerKind::Adam { .. });
        Optimizer {
            kind,
            m: if state { vec![0.0; len] } else { Vec::new() },
            v: if state { vec![0.0; len] } else { Vec::new() },
            t: 0,
        }
    }

    /// Number of parameters this optimizer was built for.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// `true` when built for zero parameters.
    pub fn is_empty(&self) -> bool {
        self.m.is_empty() && matches!(self.kind, OptimizerKind::Adam { .. })
    }

    /// Applies one descent step in place.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()`, or (for Adam) differs from
    /// the length given at construction.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        match self.kind {
            OptimizerKind::Sgd { lr } => {
                for (p, g) in params.iter_mut().zip(grads) {
                    *p -= lr * g;
                }
            }
            OptimizerKind::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                assert_eq!(params.len(), self.m.len(), "Adam state length mismatch");
                self.t += 1;
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                for i in 0..params.len() {
                    self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * grads[i];
                    self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * grads[i] * grads[i];
                    let m_hat = self.m[i] / bc1;
                    let v_hat = self.v[i] / bc2;
                    params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &[f64]) -> Vec<f64> {
        // f(p) = Σ (p_i - i)², minimum at p_i = i.
        p.iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * (v - i as f64))
            .collect()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = vec![10.0; 4];
        let mut opt = Optimizer::new(OptimizerKind::sgd(0.25), p.len());
        for _ in 0..100 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        for (i, v) in p.iter().enumerate() {
            assert!((v - i as f64).abs() < 1e-6, "p[{i}] = {v}");
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = vec![-5.0; 4];
        let mut opt = Optimizer::new(OptimizerKind::adam(0.3), p.len());
        for _ in 0..400 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        for (i, v) in p.iter().enumerate() {
            assert!((v - i as f64).abs() < 1e-2, "p[{i}] = {v}");
        }
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step is ±lr.
        let mut p = vec![0.0];
        let mut opt = Optimizer::new(OptimizerKind::adam(0.1), 1);
        opt.step(&mut p, &[123.0]);
        assert!((p[0] + 0.1).abs() < 1e-6, "step was {}", p[0]);
    }

    #[test]
    fn zero_gradient_is_a_fixed_point() {
        let mut p = vec![1.0, 2.0];
        let mut opt = Optimizer::new(OptimizerKind::adam(0.5), 2);
        opt.step(&mut p, &[0.0, 0.0]);
        assert_eq!(p, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut p = vec![0.0; 3];
        let mut opt = Optimizer::new(OptimizerKind::sgd(0.1), 3);
        opt.step(&mut p, &[1.0]);
    }
}
