//! Full-chip multi-tile decomposition with halo stitching.
//!
//! Everything below `cfaopc-chip` optimizes one tile at a time; this
//! crate scales the pipeline to chips of many tiles — the
//! `TileSize`/`Offset`/`ILTSize` filter-window pattern of full-chip ILT
//! flows:
//!
//! 1. **Decompose** — the chip raster is covered by overlapping
//!    simulation windows: each tile owns a `tile_px` square interior and
//!    simulates a `2·tile_px` window around it, a halo of `tile_px/2`
//!    pixels (≥ 1000 nm at every supported pitch — far beyond the
//!    ~λ/NA ≈ 143 nm optical interaction radius).
//! 2. **Optimize** — every window runs the full per-tile pipeline (pixel
//!    ILT → CircleRule and CircleOpt) in parallel on the persistent
//!    worker pool, sharded exactly like `cfaopc_eval` (index-keyed
//!    [`worker_shares`](cfaopc_fft::parallel::worker_shares), so results
//!    are byte-identical to serial at any `CFAOPC_THREADS`).
//! 3. **Merge** — each shot belongs to the tile that owns its centre
//!    pixel; owned shots translate to chip coordinates and concatenate
//!    in row-major tile order into one chip-level CSHOT list, checked
//!    for MRC violations *across seams* (spacing violations whose shots
//!    came from different tiles).
//! 4. **Stitch** — per-window aerial images of the merged mask blend
//!    into chip-level intensity under deterministic partition-of-unity
//!    tent weights; thresholding the blend yields chip prints at all
//!    three process corners, scored with the standard L2/PVB/EPE
//!    metrics.
//!
//! The result (`CHIP_RESULTS.json`) is byte-stable across runs and
//! thread counts and is gated against a committed golden file in CI,
//! like the single-tile eval suites.
//!
//! # Examples
//!
//! ```no_run
//! use cfaopc_chip::{run_chip_suite, ChipSpec};
//!
//! let spec = ChipSpec::named("chip-tiny").unwrap();
//! let report = run_chip_suite(&spec).unwrap();
//! println!("{}", report.markdown_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geometry;
mod harness;
mod report;
mod spec;
mod stitch;

pub use geometry::ChipGeometry;
pub use harness::{
    run_chip_case, run_chip_case_full, run_chip_suite, run_tile, ChipError, ChipOutcome, TileShots,
};
pub use report::{
    compare_chip_reports, ChipMethodOutcome, ChipRecord, ChipReport, TileRecord, SCHEMA,
};
pub use spec::{ChipSource, ChipSpec};
pub use stitch::{
    accumulate_window, axis_weights, extract_window_into, merge_tile_shots, normalize_blend,
};
