//! The full-chip decomposition harness.
//!
//! [`run_chip_suite`] drives every chip of a [`ChipSpec`] through the
//! decomposed pipeline: chip raster → per-tile halo windows → pixel ILT
//! + CircleRule / CircleOpt per window (in parallel on the persistent
//!   pool) → interior-owned shot merge → partition-of-unity aerial blend →
//!   chip-level metrics and cross-seam MRC.
//!
//! # Sharding model
//!
//! Tiles are independent, so the harness parallelizes at the *tile*
//! level, exactly the whole-case sharding `cfaopc_eval` uses: one
//! `par_map` region over the tile list, each tile capping its inner
//! parallel regions at its share from
//! [`worker_shares`]`(workers, min(tiles, workers))`, with shares keyed
//! off the tile index so the schedule is timing-independent.
//!
//! # Determinism
//!
//! `CHIP_RESULTS.json` is reproducible to the byte across runs and
//! across `CFAOPC_THREADS` values:
//!
//! * `par_map` collects per-tile results in index order and every inner
//!   parallel path is bit-identical to its serial execution (asserted by
//!   the fft/litho/core concurrency tests);
//! * shot merging walks tiles in row-major order and keeps each shot
//!   exactly once (its centre's owner emits it);
//! * the seam blend accumulates window intensities serially in the same
//!   row-major tile order, so float non-associativity never reorders —
//!   the weights are exact small integers and the per-pixel weight sum
//!   divides out as a partition of unity;
//! * wall-clock timing is never recorded.

use crate::geometry::ChipGeometry;
use crate::report::{ChipMethodOutcome, ChipRecord, ChipReport, TileRecord};
use crate::spec::ChipSpec;
use crate::stitch::{
    accumulate_window, axis_weights, extract_window_into, merge_tile_shots, normalize_blend,
};
use cfaopc_core::run_circleopt;
use cfaopc_fft::parallel::{par_map, with_worker_limit, worker_count, worker_shares};
use cfaopc_fracture::{check_mrc, circle_rule, CircularMask, MrcRules, MrcViolation};
use cfaopc_grid::{BitGrid, Grid2D};
use cfaopc_ilt::{run_engine, IltEngine};
use cfaopc_layouts::ChipLayout;
use cfaopc_litho::{LithoError, LithoSimulator, ProcessCorner};
use cfaopc_metrics::{epe_violations, l2_error, pvb, EpeConfig};
use std::fmt;

/// Errors from a chip-decomposition run.
#[derive(Debug, Clone, PartialEq)]
pub enum ChipError {
    /// The shared window simulator could not be built.
    Config(LithoError),
    /// A per-tile pipeline or the stitch phase failed (named for
    /// context; `tile` is `"<stitch>"` for blend-phase failures).
    Litho {
        /// The chip that failed.
        chip: String,
        /// The tile (or `"<stitch>"`) that failed.
        tile: String,
        /// The underlying error.
        error: LithoError,
    },
    /// Anything else (report parsing, golden comparison I/O).
    Other(String),
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipError::Config(e) => write!(f, "window configuration: {e}"),
            ChipError::Litho { chip, tile, error } => write!(f, "chip {chip} tile {tile}: {error}"),
            ChipError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ChipError {}

/// Both fractured masks one tile's pipeline produces, in window pixel
/// coordinates.
#[derive(Debug, Clone, Default)]
pub struct TileShots {
    /// MultiILT + CircleRule (the rule-based baseline).
    pub rule: CircularMask,
    /// CircleOpt (the paper's optimization-based method).
    pub opt: CircularMask,
}

/// Runs the per-tile pipeline on one halo window: pixel ILT feeding
/// CircleRule, plus a CircleOpt run, both against `window_target`.
/// Empty windows short-circuit to empty masks — emptiness is a pure
/// function of the inputs, so the shortcut preserves determinism.
///
/// # Errors
///
/// Returns [`LithoError`] when the simulator or an optimizer fails.
pub fn run_tile(
    sim: &LithoSimulator,
    window_target: &BitGrid,
    spec: &ChipSpec,
) -> Result<TileShots, LithoError> {
    if window_target.is_clear() {
        return Ok(TileShots::default());
    }
    let pixel_nm = sim.config().pixel_nm();
    let opt_config = spec.circleopt_config();
    let pixel = run_engine(
        sim,
        window_target,
        IltEngine::MultiIltLike,
        spec.rule_iterations,
    )?;
    let rule = circle_rule(&pixel.mask_binary, &opt_config.rule, pixel_nm);
    let opt = run_circleopt(sim, window_target, &opt_config)?;
    Ok(TileShots {
        rule,
        opt: opt.mask,
    })
}

/// One method's merged chip mask plus the owner index of every shot.
struct MergedMask {
    mask: CircularMask,
    owners: Vec<u32>,
}

fn merge_method(geom: &ChipGeometry, tiles: &[TileShots], rule: bool) -> MergedMask {
    let mut shots = Vec::new();
    let mut owners = Vec::new();
    for (i, t) in tiles.iter().enumerate() {
        let mask = if rule { &t.rule } else { &t.opt };
        merge_tile_shots(geom, i, mask.shots(), &mut shots, &mut owners);
    }
    MergedMask {
        mask: CircularMask::from_shots(shots),
        owners,
    }
}

/// Blends the merged mask's per-window aerial images into chip-level
/// prints at the three process corners, then scores them.
fn stitched_outcome(
    spec: &ChipSpec,
    sim: &LithoSimulator,
    geom: &ChipGeometry,
    chip_target: &BitGrid,
    merged: &MergedMask,
) -> Result<ChipMethodOutcome, LithoError> {
    let (cw, ch) = (geom.chip_width_px(), geom.chip_height_px());
    let win = geom.window_px();
    let pixel_nm = spec.pixel_nm();
    let chip_raster = merged.mask.rasterize(cw, ch);

    // Per-window corner images of the *merged* mask, in parallel with
    // index-keyed shares (results land in tile order).
    let tiles = geom.tile_count();
    let workers = worker_count();
    let concurrent = workers.min(tiles).max(1);
    let shares = worker_shares(workers, concurrent);
    let images = par_map(tiles, |i| {
        with_worker_limit(shares[i % concurrent], || {
            let (tx, ty) = geom.tile_at(i);
            let mut window = BitGrid::new(win, win);
            extract_window_into(&chip_raster, geom.window_origin(tx, ty), &mut window);
            sim.aerial_corners(&window.to_real())
        })
    });

    // Serial partition-of-unity accumulation in row-major tile order.
    let weights = axis_weights(geom);
    let mut prints: Vec<BitGrid> = Vec::with_capacity(3);
    for corner in [
        ProcessCorner::Nominal,
        ProcessCorner::Max,
        ProcessCorner::Min,
    ] {
        let mut acc = vec![0.0; cw * ch];
        let mut wsum = vec![0.0; cw * ch];
        for (i, images) in images.iter().enumerate() {
            let images = match images {
                Ok(images) => images,
                Err(e) => return Err(e.clone()),
            };
            let (tx, ty) = geom.tile_at(i);
            accumulate_window(
                images.get(corner).as_slice(),
                win,
                geom.window_origin(tx, ty),
                &weights,
                &weights,
                cw,
                ch,
                &mut acc,
                &mut wsum,
            );
        }
        normalize_blend(&mut acc, &wsum);
        let blended = Grid2D::from_vec(cw, ch, acc);
        prints.push(BitGrid::from_threshold(&blended, sim.config().threshold));
    }

    // Cross-seam MRC: radius bounds from the CircleRule config (the
    // writer's physical limits), spacing rule between disjoint shot
    // groups; a spacing violation whose shots came from different tiles
    // is a seam artifact by construction.
    let rule_cfg = spec.circleopt_config().rule;
    let (r_min, r_max) = rule_cfg.radius_range_px(pixel_nm);
    let mrc = check_mrc(
        &merged.mask,
        &MrcRules {
            r_min,
            r_max,
            min_spacing: 2.0,
        },
    );
    let cross_seam = mrc
        .violations
        .iter()
        .filter(|v| match v {
            MrcViolation::SpacingTooSmall { a, b, .. } => merged.owners[*a] != merged.owners[*b],
            _ => false,
        })
        .count();

    Ok(ChipMethodOutcome {
        l2: l2_error(&prints[0], chip_target, pixel_nm),
        pvb: pvb(&prints[1], &prints[2], pixel_nm),
        epe: epe_violations(&prints[0], chip_target, &EpeConfig::default(), pixel_nm),
        shots: merged.mask.shot_count(),
        mrc_violations: mrc.violations.len(),
        cross_seam_violations: cross_seam,
    })
}

/// A chip record plus the merged chip-level masks it was scored on —
/// what the CLI serializes to CSHOT shot lists.
#[derive(Debug, Clone)]
pub struct ChipOutcome {
    /// The per-chip report record.
    pub record: ChipRecord,
    /// Merged rule-baseline shots in chip pixel coordinates.
    pub rule_mask: CircularMask,
    /// Merged CircleOpt shots in chip pixel coordinates.
    pub opt_mask: CircularMask,
}

/// Runs one chip through the decomposed pipeline with a shared window
/// simulator, returning the record only; see [`run_chip_case_full`] for
/// the merged masks.
///
/// # Errors
///
/// As [`run_chip_case_full`].
pub fn run_chip_case(
    spec: &ChipSpec,
    sim: &LithoSimulator,
    chip: &ChipLayout,
) -> Result<ChipRecord, ChipError> {
    run_chip_case_full(spec, sim, chip).map(|o| o.record)
}

/// Runs one chip through the decomposed pipeline with a shared window
/// simulator.
///
/// # Errors
///
/// Returns [`ChipError::Litho`] naming the first failing tile (tile
/// selection follows row-major order, so it is deterministic).
pub fn run_chip_case_full(
    spec: &ChipSpec,
    sim: &LithoSimulator,
    chip: &ChipLayout,
) -> Result<ChipOutcome, ChipError> {
    let geom = spec.geometry(chip);
    let target = chip.rasterize(spec.tile_px);
    let win = geom.window_px();

    // Window targets, then the per-tile pipelines on the pool.
    let tiles = geom.tile_count();
    let windows: Vec<BitGrid> = (0..tiles)
        .map(|i| {
            let (tx, ty) = geom.tile_at(i);
            let mut w = BitGrid::new(win, win);
            extract_window_into(&target, geom.window_origin(tx, ty), &mut w);
            w
        })
        .collect();
    let workers = worker_count();
    let concurrent = workers.min(tiles).max(1);
    let shares = worker_shares(workers, concurrent);
    let results = par_map(tiles, |i| {
        with_worker_limit(shares[i % concurrent], || run_tile(sim, &windows[i], spec))
    });
    let mut tile_shots = Vec::with_capacity(tiles);
    for (i, r) in results.into_iter().enumerate() {
        let (tx, ty) = geom.tile_at(i);
        tile_shots.push(r.map_err(|error| ChipError::Litho {
            chip: chip.name.clone(),
            tile: format!("t{tx}x{ty}"),
            error,
        })?);
    }

    let stitch_err = |error: LithoError| ChipError::Litho {
        chip: chip.name.clone(),
        tile: "<stitch>".into(),
        error,
    };
    let rule_merged = merge_method(&geom, &tile_shots, true);
    let opt_merged = merge_method(&geom, &tile_shots, false);
    let rule = stitched_outcome(spec, sim, &geom, &target, &rule_merged).map_err(stitch_err)?;
    let opt = stitched_outcome(spec, sim, &geom, &target, &opt_merged).map_err(stitch_err)?;

    let tile_records = (0..tiles)
        .map(|i| {
            let (tx, ty) = geom.tile_at(i);
            let owned = |owners: &[u32]| owners.iter().filter(|&&o| o == i as u32).count();
            TileRecord {
                name: format!("t{tx}x{ty}"),
                rule_shots: owned(&rule_merged.owners),
                opt_shots: owned(&opt_merged.owners),
            }
        })
        .collect();

    Ok(ChipOutcome {
        record: ChipRecord {
            name: chip.name.clone(),
            tiles_x: chip.tiles_x,
            tiles_y: chip.tiles_y,
            area_nm2: chip.area_nm2(),
            rects: chip.rects.len(),
            rule,
            opt,
            tiles: tile_records,
        },
        rule_mask: rule_merged.mask,
        opt_mask: opt_merged.mask,
    })
}

/// Runs every chip of `spec` and assembles the suite report. Chips run
/// sequentially — each one already shards its tiles across the whole
/// pool.
///
/// # Errors
///
/// Returns [`ChipError::Config`] when the window simulator cannot be
/// built, or the first per-chip error in suite order.
pub fn run_chip_suite(spec: &ChipSpec) -> Result<ChipReport, ChipError> {
    let sim = LithoSimulator::new(spec.litho_config()).map_err(ChipError::Config)?;
    let mut records = Vec::with_capacity(spec.chips.len());
    for source in &spec.chips {
        let chip = source.chip();
        records.push(run_chip_case(spec, &sim, &chip)?);
    }
    let geom = ChipGeometry::new(1, 1, spec.tile_px);
    Ok(ChipReport {
        suite: spec.name.clone(),
        tile_px: spec.tile_px,
        window_px: geom.window_px(),
        halo_px: geom.halo_px(),
        kernel_count: spec.kernel_count,
        chips: records,
    })
}
