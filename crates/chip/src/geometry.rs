//! Tile/halo geometry for full-chip decomposition.
//!
//! A chip raster of `tiles_x × tiles_y` tiles (each `tile_px` pixels
//! square) is covered by overlapping simulation *windows*: tile
//! `(tx, ty)` owns the interior `[tx·T, (tx+1)·T) × [ty·T, (ty+1)·T)`
//! and simulates the window of edge `W = 2T` centred on it — a halo of
//! `H = T/2` pixels on every side. Consecutive windows therefore overlap
//! by `2H = T` pixels per axis, every chip pixel is *owned* by exactly
//! one tile, and is *covered* by at most two windows per axis (its owner
//! and one neighbour); windows keep a power-of-two edge whenever
//! `tile_px` is a power of two, so the FFT stack applies unchanged.

/// Decomposition geometry: the pure integer arithmetic every stitching
/// and merging step agrees on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipGeometry {
    /// Tile columns.
    pub tiles_x: usize,
    /// Tile rows.
    pub tiles_y: usize,
    /// Owned (interior) tile edge in pixels; the simulation window edge
    /// is `2 · tile_px`.
    pub tile_px: usize,
}

impl ChipGeometry {
    /// Creates the geometry. `tile_px` must be even (the halo is half a
    /// tile) and at least 4; both are clamped rather than panicking —
    /// specs validate upstream via the litho configuration.
    pub fn new(tiles_x: usize, tiles_y: usize, tile_px: usize) -> Self {
        ChipGeometry {
            tiles_x: tiles_x.max(1),
            tiles_y: tiles_y.max(1),
            tile_px: (tile_px & !1).max(4),
        }
    }

    /// Simulation window edge in pixels (`2 · tile_px`).
    pub fn window_px(&self) -> usize {
        2 * self.tile_px
    }

    /// Halo width in pixels on each window side (`tile_px / 2`).
    pub fn halo_px(&self) -> usize {
        self.tile_px / 2
    }

    /// Chip raster width in pixels.
    pub fn chip_width_px(&self) -> usize {
        self.tiles_x * self.tile_px
    }

    /// Chip raster height in pixels.
    pub fn chip_height_px(&self) -> usize {
        self.tiles_y * self.tile_px
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    /// `(tx, ty)` for a linear tile index in row-major order — the fixed
    /// iteration order every merge and blend step uses.
    pub fn tile_at(&self, index: usize) -> (usize, usize) {
        (index % self.tiles_x, index / self.tiles_x)
    }

    /// Chip-pixel coordinates of the window's top-left corner (may be
    /// negative: border windows hang over the chip edge and see empty
    /// padding there).
    pub fn window_origin(&self, tx: usize, ty: usize) -> (i32, i32) {
        let h = self.halo_px() as i32;
        (
            (tx * self.tile_px) as i32 - h,
            (ty * self.tile_px) as i32 - h,
        )
    }

    /// Whether tile `(tx, ty)` owns chip pixel `(x, y)`.
    pub fn owns(&self, tx: usize, ty: usize, x: i32, y: i32) -> bool {
        let t = self.tile_px as i32;
        let (ox, oy) = ((tx as i32) * t, (ty as i32) * t);
        x >= ox && x < ox + t && y >= oy && y < oy + t
    }

    /// Blend-validity margin in pixels (`tile_px / 4`, i.e. half the
    /// halo). A window's aerial intensity is only trustworthy at pixels
    /// whose full optical neighbourhood lies inside the window; within
    /// `margin` of the window edge, mask content just outside the window
    /// is missing from the simulation, so those pixels must get zero
    /// blend weight. In nanometres the margin is `(T/4)·(2048/T) =
    /// 512 nm` at every tile size — comfortably beyond the ~λ/NA ≈
    /// 143 nm optical interaction radius.
    pub fn blend_margin_px(&self) -> usize {
        self.tile_px / 4
    }

    /// The symmetric triangular ("tent") blend weight for window
    /// coordinate `u ∈ [0, window_px)`: zero within
    /// [`blend_margin_px`](Self::blend_margin_px) of either window edge
    /// (where the window's intensity is contaminated by the cut), and
    /// `min(u−m+1, W−m−u)` inside the valid span — small integers
    /// exactly representable in `f64`. After dividing by the per-pixel
    /// weight sum (see `stitch::normalize_blend`) the tile weights form
    /// a partition of unity over the chip: every owned pixel keeps
    /// weight ≥ `T/4 + 1` from its owner (the valid span `[m, W−m)`
    /// strictly contains the interior `[T/2, 3T/2)`), the owner's weight
    /// always exceeds any neighbour's, and weights ramp linearly across
    /// the halo overlap.
    pub fn tent_weight(&self, u: usize) -> f64 {
        let w = self.window_px();
        let m = self.blend_margin_px();
        if u < m || u >= w - m {
            return 0.0;
        }
        ((u - m + 1).min(w - m - u)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_and_halo_sizes() {
        let g = ChipGeometry::new(4, 3, 32);
        assert_eq!(g.window_px(), 64);
        assert_eq!(g.halo_px(), 16);
        assert_eq!(g.chip_width_px(), 128);
        assert_eq!(g.chip_height_px(), 96);
        assert_eq!(g.tile_count(), 12);
        assert_eq!(g.tile_at(0), (0, 0));
        assert_eq!(g.tile_at(5), (1, 1));
    }

    #[test]
    fn every_chip_pixel_has_exactly_one_owner() {
        let g = ChipGeometry::new(3, 2, 8);
        for y in 0..g.chip_height_px() as i32 {
            for x in 0..g.chip_width_px() as i32 {
                let owners = (0..g.tile_count())
                    .filter(|&i| {
                        let (tx, ty) = g.tile_at(i);
                        g.owns(tx, ty, x, y)
                    })
                    .count();
                assert_eq!(owners, 1, "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn owner_weight_dominates_any_neighbour() {
        let g = ChipGeometry::new(2, 1, 16);
        // A pixel at interior offset d is seen by its owner at window
        // coordinate d + H and by an overlapping neighbour (if any) in
        // the neighbour's halo, at window coordinate < H or ≥ W − H.
        let h = g.halo_px();
        let w = g.window_px();
        for d in 0..g.tile_px {
            let own = g.tent_weight(d + h);
            let halo_max = g.tent_weight(h - 1).max(g.tent_weight(w - h));
            assert!(own > halo_max, "offset {d}: {own} vs {halo_max}");
        }
    }

    #[test]
    fn weights_vanish_inside_the_validity_margin() {
        let g = ChipGeometry::new(2, 2, 32);
        let (w, m) = (g.window_px(), g.blend_margin_px());
        assert_eq!(m, 8);
        for u in 0..w {
            let weight = g.tent_weight(u);
            if u < m || u >= w - m {
                assert_eq!(weight, 0.0, "contaminated pixel {u} got weight");
            } else {
                assert!(weight >= 1.0, "valid pixel {u} lost coverage");
            }
        }
        // Owned pixels always keep nonzero owner weight: the valid span
        // [m, W−m) strictly contains the interior [T/2, 3T/2).
        for u in g.halo_px()..g.halo_px() + g.tile_px {
            assert!(g.tent_weight(u) > g.blend_margin_px() as f64);
        }
    }

    #[test]
    fn window_origins_hang_over_the_chip_border() {
        let g = ChipGeometry::new(2, 2, 32);
        assert_eq!(g.window_origin(0, 0), (-16, -16));
        assert_eq!(g.window_origin(1, 0), (16, -16));
        assert_eq!(g.window_origin(1, 1), (16, 16));
    }
}
