//! Seam stitching and shot merging — the chip-assembly hot path.
//!
//! Three kernels assemble per-tile results into chip-level artifacts,
//! all driven in the fixed row-major tile order so the outcome is a pure
//! function of the inputs:
//!
//! * [`extract_window_into`] copies a tile's halo window out of the chip
//!   raster (zero-padded outside the chip),
//! * [`accumulate_window`] adds one tile's window intensity into the
//!   chip accumulator under the tent weights,
//! * [`normalize_blend`] divides by the per-pixel weight sum, turning
//!   the tent weights into a partition of unity,
//! * [`merge_tile_shots`] keeps exactly the shots whose centres fall in
//!   the emitting tile's interior, translated to chip coordinates.
//!
//! The first three are listed in `lint/hotpaths.toml`: they run per
//! pixel per tile per process corner and must not allocate — callers own
//! every buffer.

use crate::geometry::ChipGeometry;
use cfaopc_fracture::CircleShot;
use cfaopc_grid::BitGrid;

/// Copies the window at `origin` (chip pixels, possibly negative) out of
/// `chip` into `out`; pixels outside the chip read as empty. `out`
/// carries the window dimensions and is fully overwritten.
pub fn extract_window_into(chip: &BitGrid, origin: (i32, i32), out: &mut BitGrid) {
    let (cw, ch) = (chip.width() as i32, chip.height() as i32);
    for wy in 0..out.height() {
        let cy = origin.1 + wy as i32;
        for wx in 0..out.width() {
            let cx = origin.0 + wx as i32;
            let v = cx >= 0 && cx < cw && cy >= 0 && cy < ch && chip.get(cx as usize, cy as usize);
            out.set(wx, wy, v);
        }
    }
}

/// Accumulates one tile's window intensity into the chip blend:
/// `acc[p] += wx·wy·window[p]`, `wsum[p] += wx·wy` for every window
/// pixel `p` that lands inside the chip. `wx`/`wy` are the per-axis tent
/// weights (length = window edge); `acc`/`wsum` are row-major
/// `chip_w × chip_h` buffers. Accumulation order is the caller's tile
/// order, so the blend is deterministic despite float non-associativity.
#[allow(clippy::too_many_arguments)]
pub fn accumulate_window(
    window: &[f64],
    win_w: usize,
    origin: (i32, i32),
    wx: &[f64],
    wy: &[f64],
    chip_w: usize,
    chip_h: usize,
    acc: &mut [f64],
    wsum: &mut [f64],
) {
    let win_h = window.len().checked_div(win_w).unwrap_or(0);
    for (y, &wy) in wy.iter().enumerate().take(win_h) {
        let cy = origin.1 + y as i32;
        if cy < 0 || cy >= chip_h as i32 {
            continue;
        }
        let row = cy as usize * chip_w;
        let wrow = y * win_w;
        for x in 0..win_w {
            let cx = origin.0 + x as i32;
            if cx < 0 || cx >= chip_w as i32 {
                continue;
            }
            let w = wx[x] * wy;
            let i = row + cx as usize;
            acc[i] += w * window[wrow + x];
            wsum[i] += w;
        }
    }
}

/// Divides the accumulated intensity by the per-pixel weight sum. Every
/// chip pixel is covered by its owner's window with a positive weight,
/// so `wsum > 0` everywhere; the guard only protects degenerate callers.
pub fn normalize_blend(acc: &mut [f64], wsum: &[f64]) {
    for (a, &w) in acc.iter_mut().zip(wsum) {
        if w > 0.0 {
            *a /= w;
        }
    }
}

/// Translates one tile's window-coordinate shots to chip coordinates and
/// appends those the tile *owns* (shot centre in the tile interior) to
/// `shots`, recording the emitting tile's linear index in `owners`.
/// Halo shots are dropped — the neighbouring tile that owns that region
/// emits its own copy — so the merged list has no duplicates and its
/// order is the (tile, shot) emission order.
pub fn merge_tile_shots(
    geom: &ChipGeometry,
    tile_index: usize,
    tile_shots: &[CircleShot],
    shots: &mut Vec<CircleShot>,
    owners: &mut Vec<u32>,
) {
    let (tx, ty) = geom.tile_at(tile_index);
    let origin = geom.window_origin(tx, ty);
    for s in tile_shots {
        let (cx, cy) = (origin.0 + s.x, origin.1 + s.y);
        if geom.owns(tx, ty, cx, cy) {
            shots.push(CircleShot::new(cx, cy, s.r));
            owners.push(tile_index as u32);
        }
    }
}

/// Builds the per-axis tent-weight table for a geometry's window edge.
pub fn axis_weights(geom: &ChipGeometry) -> Vec<f64> {
    (0..geom.window_px()).map(|u| geom.tent_weight(u)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{fill_rect, Rect};

    #[test]
    fn extraction_zero_pads_outside_the_chip() {
        let mut chip = BitGrid::new(8, 8);
        fill_rect(&mut chip, Rect::new(0, 0, 8, 8));
        let mut out = BitGrid::new(4, 4);
        extract_window_into(&chip, (-2, 6), &mut out);
        // Columns 0–1 are left padding; rows 2–3 fall below the chip.
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(out.get(x, y), x >= 2 && y < 2, "({x},{y})");
            }
        }
    }

    #[test]
    fn partition_of_unity_after_normalization() {
        let g = ChipGeometry::new(3, 2, 8);
        let (cw, ch) = (g.chip_width_px(), g.chip_height_px());
        let w = axis_weights(&g);
        let mut acc = vec![0.0; cw * ch];
        let mut wsum = vec![0.0; cw * ch];
        // Blend constant-1 windows: the normalized result must be exactly
        // 1 everywhere iff the weights form a partition of unity.
        let ones = vec![1.0; g.window_px() * g.window_px()];
        for i in 0..g.tile_count() {
            let (tx, ty) = g.tile_at(i);
            accumulate_window(
                &ones,
                g.window_px(),
                g.window_origin(tx, ty),
                &w,
                &w,
                cw,
                ch,
                &mut acc,
                &mut wsum,
            );
        }
        normalize_blend(&mut acc, &wsum);
        for (i, v) in acc.iter().enumerate() {
            assert!((v - 1.0).abs() < 1e-12, "pixel {i}: {v}");
        }
    }

    #[test]
    fn merge_keeps_owned_shots_only_with_chip_coordinates() {
        let g = ChipGeometry::new(2, 1, 16); // window 32, halo 8
        let tile_shots = [
            CircleShot::new(8, 16, 2),  // window centre-left
            CircleShot::new(30, 16, 2), // right halo band
            CircleShot::new(4, 16, 2),  // left halo band
        ];
        // From tile 0 (origin (-8,-8)) only the first shot lands in the
        // tile's own interior x ∈ [0, 16): chip (0, 8). The others map to
        // chip x = 22 (tile 1's land) and x = −4 (off chip).
        let mut shots = Vec::new();
        let mut owners = Vec::new();
        merge_tile_shots(&g, 0, &tile_shots, &mut shots, &mut owners);
        assert_eq!(shots, vec![CircleShot::new(0, 8, 2)]);
        assert_eq!(owners, vec![0]);

        // From tile 1 (origin (8,-8)) the same first shot maps to chip
        // (16, 8) — inside tile 1's interior x ∈ [16, 32); the others map
        // to chip x = 38 (off chip) and x = 12 (tile 0's land).
        shots.clear();
        owners.clear();
        merge_tile_shots(&g, 1, &tile_shots, &mut shots, &mut owners);
        assert_eq!(shots, vec![CircleShot::new(16, 8, 2)]);
        assert_eq!(owners, vec![1]);
    }
}
