//! Chip suite definitions: which chips to run, at what scale.
//!
//! Like `cfaopc_eval::SuiteSpec`, a chip suite is fully self-contained —
//! chip layouts come from seeded generators or the deterministic
//! benchmark mosaic, and every solver knob is pinned here — so two runs
//! of the same suite perform identical work regardless of machine or
//! thread count.

use crate::geometry::ChipGeometry;
use cfaopc_core::CircleOptConfig;
use cfaopc_layouts::{all_cases, generate_chip, ChipGeneratorConfig, ChipLayout, TILE_NM};
use cfaopc_litho::LithoConfig;

/// Where a chip's layout comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipSource {
    /// A seeded chip from `cfaopc_layouts::generate_chip` with the
    /// default chip-generator configuration (seam straddlers included).
    Generated {
        /// Generator seed.
        seed: u64,
        /// Tile columns.
        tiles_x: usize,
        /// Tile rows.
        tiles_y: usize,
    },
    /// The ten benchmark tiles cycled into a mosaic (no straddlers —
    /// exercises the pure-interior path).
    BenchmarkMosaic {
        /// Tile columns.
        tiles_x: usize,
        /// Tile rows.
        tiles_y: usize,
    },
}

impl ChipSource {
    /// Materializes the chip layout.
    pub fn chip(&self) -> ChipLayout {
        match self {
            ChipSource::Generated {
                seed,
                tiles_x,
                tiles_y,
            } => generate_chip(*seed, *tiles_x, *tiles_y, &ChipGeneratorConfig::default()),
            ChipSource::BenchmarkMosaic { tiles_x, tiles_y } => ChipLayout::from_tiles(
                format!("mosaic_{tiles_x}x{tiles_y}"),
                *tiles_x,
                *tiles_y,
                &all_cases(),
            ),
        }
    }
}

/// The full, self-contained definition of one chip-decomposition run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Suite name, recorded in `CHIP_RESULTS.json`.
    pub name: String,
    /// Owned tile edge in pixels; each tile simulates a `2·tile_px`
    /// window (power of two so the FFT stack applies).
    pub tile_px: usize,
    /// SOCS kernels per process corner.
    pub kernel_count: usize,
    /// Pixel-ILT iterations for the CircleRule baseline path.
    pub rule_iterations: usize,
    /// CircleOpt stage-1 (pixel init) iterations.
    pub opt_init_iterations: usize,
    /// CircleOpt stage-2 (circle-level) iterations.
    pub opt_circle_iterations: usize,
    /// The chips, in report order.
    pub chips: Vec<ChipSource>,
}

impl ChipSpec {
    /// Looks a suite up by name. `chip-tiny` is the CI-gated suite: a
    /// seeded 4×4 chip with forced seam straddlers plus a 2×2 benchmark
    /// mosaic, both at 32 px tiles (64 px windows).
    pub fn named(name: &str) -> Option<ChipSpec> {
        match name {
            "chip-tiny" => Some(ChipSpec {
                name: "chip-tiny".into(),
                tile_px: 32,
                kernel_count: 6,
                rule_iterations: 4,
                opt_init_iterations: 2,
                opt_circle_iterations: 4,
                chips: vec![
                    ChipSource::Generated {
                        seed: 3,
                        tiles_x: 4,
                        tiles_y: 4,
                    },
                    ChipSource::BenchmarkMosaic {
                        tiles_x: 2,
                        tiles_y: 2,
                    },
                ],
            }),
            "chip-small" => Some(ChipSpec {
                name: "chip-small".into(),
                tile_px: 64,
                kernel_count: 6,
                rule_iterations: 8,
                opt_init_iterations: 4,
                opt_circle_iterations: 12,
                chips: vec![
                    ChipSource::Generated {
                        seed: 3,
                        tiles_x: 4,
                        tiles_y: 4,
                    },
                    ChipSource::Generated {
                        seed: 11,
                        tiles_x: 6,
                        tiles_y: 4,
                    },
                    ChipSource::BenchmarkMosaic {
                        tiles_x: 3,
                        tiles_y: 3,
                    },
                ],
            }),
            _ => None,
        }
    }

    /// The names of the built-in chip suites, for CLI help.
    pub const NAMES: [&'static str; 2] = ["chip-tiny", "chip-small"];

    /// The decomposition geometry for one chip of this suite.
    pub fn geometry(&self, chip: &ChipLayout) -> ChipGeometry {
        ChipGeometry::new(chip.tiles_x, chip.tiles_y, self.tile_px)
    }

    /// The per-window lithography configuration: the window spans two
    /// tile pitches (`2 · TILE_NM` nm) at the same nm/px as the chip
    /// raster, so window simulations and chip metrics share one pitch.
    pub fn litho_config(&self) -> LithoConfig {
        LithoConfig {
            size: 2 * self.tile_px,
            tile_nm: 2.0 * f64::from(TILE_NM),
            kernel_count: self.kernel_count,
            ..LithoConfig::default()
        }
    }

    /// Chip-raster pixel pitch in nanometres.
    pub fn pixel_nm(&self) -> f64 {
        f64::from(TILE_NM) / self.tile_px as f64
    }

    /// The CircleOpt configuration, with the sparsity weight rescaled to
    /// the grid resolution exactly as `cfaopc_eval::SuiteSpec` does
    /// (`tile_px` pixels span one 2048 nm tile pitch).
    pub fn circleopt_config(&self) -> CircleOptConfig {
        let gamma = 3.0 * (self.tile_px as f64 / 2048.0).powi(2);
        CircleOptConfig {
            init_iterations: self.opt_init_iterations,
            circle_iterations: self.opt_circle_iterations,
            gamma,
            // At chip pitches (TILE_NM / tile_px ≥ 32 nm/px) minimum
            // features span only 1–3 px, so the default 1-px morphological
            // opening of the init mask would erase them and CircleOpt
            // would seed no circles at all. The r_min region filter in
            // CircleRule still enforces writability.
            cleanup_init: false,
            ..CircleOptConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_suites_resolve_and_validate() {
        for name in ChipSpec::NAMES {
            let spec = ChipSpec::named(name).unwrap();
            assert_eq!(spec.name, name);
            assert!(!spec.chips.is_empty());
            spec.litho_config().validate().unwrap();
        }
        assert!(ChipSpec::named("nope").is_none());
    }

    #[test]
    fn tiny_suite_has_a_4x4_generated_chip() {
        let spec = ChipSpec::named("chip-tiny").unwrap();
        assert!(matches!(
            spec.chips[0],
            ChipSource::Generated {
                tiles_x: 4,
                tiles_y: 4,
                ..
            }
        ));
        let chip = spec.chips[0].chip();
        assert_eq!(chip.tile_count(), 16);
        assert!(chip.area_nm2() > 0);
    }

    #[test]
    fn window_pitch_matches_chip_pitch() {
        let spec = ChipSpec::named("chip-tiny").unwrap();
        let cfg = spec.litho_config();
        assert!((cfg.pixel_nm() - spec.pixel_nm()).abs() < 1e-12);
        assert_eq!(cfg.size, 64);
    }
}
