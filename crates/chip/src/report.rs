//! `CHIP_RESULTS.json` serialization and the golden-drift comparison.
//!
//! The on-disk schema (`cfaopc-chip/1`) is one object per suite run:
//!
//! ```json
//! {
//!   "schema": "cfaopc-chip/1",
//!   "suite": "chip-tiny", "tile_px": 32, "window_px": 64,
//!   "halo_px": 16, "kernel_count": 6,
//!   "chips": [
//!     {"chip": "chip3_4x4", "tiles_x": 4, "tiles_y": 4,
//!      "area_nm2": 1234567, "rects": 120,
//!      "rule": {"l2": ..., "pvb": ..., "epe": 3, "shots": 410,
//!               "mrc_violations": 2, "cross_seam_violations": 1},
//!      "opt":  {...},
//!      "tiles": [{"tile": "t0x0", "rule_shots": 31, "opt_shots": 22}, ...]}
//!   ]
//! }
//! ```
//!
//! Every field is a pure function of the suite spec, so the serialized
//! bytes are stable across runs and thread counts; the golden file
//! (`eval/golden_chip.json`) is a blessed copy of this format. Drift
//! checking reuses `cfaopc_eval`'s [`Tolerance`]/[`Drift`] machinery.

use cfaopc_eval::{Drift, Json, Tolerance};
use std::fmt::Write as _;

fn field_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string {key:?}"))
}

fn field_usize(obj: &Json, key: &str) -> Result<usize, String> {
    obj.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("missing or non-integer {key:?}"))
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric {key:?}"))
}

/// Schema tag written to and required from every chip report file.
pub const SCHEMA: &str = "cfaopc-chip/1";

/// Chip-level metrics for one method on one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipMethodOutcome {
    /// Squared L2 of the blended nominal print vs the chip target, nm².
    pub l2: f64,
    /// Process-variation band of the blended corner prints, nm².
    pub pvb: f64,
    /// EPE violation count over the chip grid.
    pub epe: usize,
    /// Merged circular shot count (each shot owned by exactly one tile).
    pub shots: usize,
    /// Total MRC violations of the merged shot list.
    pub mrc_violations: usize,
    /// Spacing violations whose two shots came from different tiles.
    pub cross_seam_violations: usize,
}

/// Owned shot counts for one tile of a chip.
#[derive(Debug, Clone, PartialEq)]
pub struct TileRecord {
    /// Tile name (`t2x1` = column 2, row 1).
    pub name: String,
    /// Shots the tile contributed to the merged rule mask.
    pub rule_shots: usize,
    /// Shots the tile contributed to the merged opt mask.
    pub opt_shots: usize,
}

/// Everything the harness measures for one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipRecord {
    /// Chip name (`chip3_4x4`, `mosaic_2x2`, …).
    pub name: String,
    /// Tile columns.
    pub tiles_x: usize,
    /// Tile rows.
    pub tiles_y: usize,
    /// Total pattern area in nm².
    pub area_nm2: i64,
    /// Rectangle count of the chip layout.
    pub rects: usize,
    /// MultiILT + CircleRule (the rule-based baseline).
    pub rule: ChipMethodOutcome,
    /// CircleOpt (the paper's optimization-based method).
    pub opt: ChipMethodOutcome,
    /// Per-tile owned-shot counts, in row-major tile order.
    pub tiles: Vec<TileRecord>,
}

/// One full chip-suite run: the suite identity plus per-chip records in
/// suite order.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipReport {
    /// Suite name.
    pub suite: String,
    /// Owned tile edge in pixels.
    pub tile_px: usize,
    /// Simulation window edge in pixels.
    pub window_px: usize,
    /// Halo width in pixels.
    pub halo_px: usize,
    /// Kernels per corner.
    pub kernel_count: usize,
    /// Per-chip records, in the suite's chip order.
    pub chips: Vec<ChipRecord>,
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn int(v: usize) -> Json {
    Json::Num(v as f64)
}

fn method_json(m: &ChipMethodOutcome) -> Json {
    Json::Obj(vec![
        ("l2".into(), num(m.l2)),
        ("pvb".into(), num(m.pvb)),
        ("epe".into(), int(m.epe)),
        ("shots".into(), int(m.shots)),
        ("mrc_violations".into(), int(m.mrc_violations)),
        ("cross_seam_violations".into(), int(m.cross_seam_violations)),
    ])
}

impl ChipReport {
    /// The report as a JSON tree (see the module docs for the schema).
    pub fn to_json(&self) -> Json {
        let chips = self
            .chips
            .iter()
            .map(|c| {
                let tiles = c
                    .tiles
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("tile".into(), Json::Str(t.name.clone())),
                            ("rule_shots".into(), int(t.rule_shots)),
                            ("opt_shots".into(), int(t.opt_shots)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("chip".into(), Json::Str(c.name.clone())),
                    ("tiles_x".into(), int(c.tiles_x)),
                    ("tiles_y".into(), int(c.tiles_y)),
                    ("area_nm2".into(), num(c.area_nm2 as f64)),
                    ("rects".into(), int(c.rects)),
                    ("rule".into(), method_json(&c.rule)),
                    ("opt".into(), method_json(&c.opt)),
                    ("tiles".into(), Json::Arr(tiles)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("suite".into(), Json::Str(self.suite.clone())),
            ("tile_px".into(), int(self.tile_px)),
            ("window_px".into(), int(self.window_px)),
            ("halo_px".into(), int(self.halo_px)),
            ("kernel_count".into(), int(self.kernel_count)),
            ("chips".into(), Json::Arr(chips)),
        ])
    }

    /// Serializes to the pretty-printed, byte-stable
    /// `CHIP_RESULTS.json` text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parses a report back from its JSON text (used by `--check` to
    /// load the golden file).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing/mistyped field, or the
    /// JSON syntax error, and rejects unknown schema tags.
    pub fn from_json_str(text: &str) -> Result<ChipReport, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?})"
            ));
        }
        let chips = doc
            .get("chips")
            .and_then(Json::as_array)
            .ok_or("missing \"chips\" array")?
            .iter()
            .map(chip_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChipReport {
            suite: field_str(&doc, "suite")?.to_string(),
            tile_px: field_usize(&doc, "tile_px")?,
            window_px: field_usize(&doc, "window_px")?,
            halo_px: field_usize(&doc, "halo_px")?,
            kernel_count: field_usize(&doc, "kernel_count")?,
            chips,
        })
    }

    /// Renders the chip summary as a markdown table: one row per chip
    /// with both methods' metrics.
    pub fn markdown_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| Chip | Tiles | Area (nm²) | L2 (CR) | PVB (CR) | EPE (CR) | #Shot (CR) | xMRC (CR) \
             | L2 (CO) | PVB (CO) | EPE (CO) | #Shot (CO) | xMRC (CO) |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|---|---|");
        for c in &self.chips {
            let _ = writeln!(
                out,
                "| {} | {}×{} | {} | {:.0} | {:.0} | {} | {} | {} | {:.0} | {:.0} | {} | {} | {} |",
                c.name,
                c.tiles_x,
                c.tiles_y,
                c.area_nm2,
                c.rule.l2,
                c.rule.pvb,
                c.rule.epe,
                c.rule.shots,
                c.rule.cross_seam_violations,
                c.opt.l2,
                c.opt.pvb,
                c.opt.epe,
                c.opt.shots,
                c.opt.cross_seam_violations,
            );
        }
        out
    }
}

fn method_from_json(obj: &Json, which: &str) -> Result<ChipMethodOutcome, String> {
    let m = obj
        .get(which)
        .ok_or_else(|| format!("missing {which:?} object"))?;
    Ok(ChipMethodOutcome {
        l2: field_f64(m, "l2")?,
        pvb: field_f64(m, "pvb")?,
        epe: field_usize(m, "epe")?,
        shots: field_usize(m, "shots")?,
        mrc_violations: field_usize(m, "mrc_violations")?,
        cross_seam_violations: field_usize(m, "cross_seam_violations")?,
    })
}

fn chip_from_json(obj: &Json) -> Result<ChipRecord, String> {
    let name = field_str(obj, "chip")?.to_string();
    let context = |e: String| format!("chip {name:?}: {e}");
    let tiles = obj
        .get("tiles")
        .and_then(Json::as_array)
        .ok_or_else(|| context("missing \"tiles\" array".into()))?
        .iter()
        .map(|t| {
            Ok(TileRecord {
                name: field_str(t, "tile")?.to_string(),
                rule_shots: field_usize(t, "rule_shots")?,
                opt_shots: field_usize(t, "opt_shots")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()
        .map_err(context)?;
    Ok(ChipRecord {
        tiles_x: field_usize(obj, "tiles_x").map_err(context)?,
        tiles_y: field_usize(obj, "tiles_y").map_err(context)?,
        area_nm2: field_f64(obj, "area_nm2").map_err(context)? as i64,
        rects: field_usize(obj, "rects").map_err(context)?,
        rule: method_from_json(obj, "rule").map_err(context)?,
        opt: method_from_json(obj, "opt").map_err(context)?,
        tiles,
        name,
    })
}

fn method_drifts(
    chip: &str,
    method: &str,
    golden: &ChipMethodOutcome,
    got: &ChipMethodOutcome,
    tol: &Tolerance,
    out: &mut Vec<Drift>,
) {
    let metrics: [(&str, f64, f64); 6] = [
        ("l2", golden.l2, got.l2),
        ("pvb", golden.pvb, got.pvb),
        ("epe", golden.epe as f64, got.epe as f64),
        ("shots", golden.shots as f64, got.shots as f64),
        (
            "mrc",
            golden.mrc_violations as f64,
            got.mrc_violations as f64,
        ),
        (
            "xseam",
            golden.cross_seam_violations as f64,
            got.cross_seam_violations as f64,
        ),
    ];
    for (name, golden_v, got_v) in metrics {
        let allowed = tol.allowed(golden_v);
        if (got_v - golden_v).abs() > allowed {
            out.push(Drift {
                case: chip.to_string(),
                method: method.to_string(),
                metric: name.to_string(),
                golden: golden_v,
                got: got_v,
                allowed,
            });
        }
    }
}

fn structural(metric: impl Into<String>, golden: f64, got: f64) -> Drift {
    Drift {
        case: "<report>".into(),
        method: "-".into(),
        metric: metric.into(),
        golden,
        got,
        allowed: 0.0,
    }
}

/// Compares a freshly measured chip report against the golden one; an
/// empty result means "no drift". Structural mismatches (different
/// suite, geometry, or chip list) are reported as drifts too.
pub fn compare_chip_reports(golden: &ChipReport, got: &ChipReport, tol: &Tolerance) -> Vec<Drift> {
    let mut drifts = Vec::new();
    if golden.suite != got.suite {
        drifts.push(structural(
            format!("suite {:?} vs {:?}", golden.suite, got.suite),
            0.0,
            0.0,
        ));
    }
    for (name, g, m) in [
        ("tile_px", golden.tile_px, got.tile_px),
        ("window_px", golden.window_px, got.window_px),
        ("halo_px", golden.halo_px, got.halo_px),
        ("kernel_count", golden.kernel_count, got.kernel_count),
    ] {
        if g != m {
            drifts.push(structural(name, g as f64, m as f64));
        }
    }
    if golden.chips.len() != got.chips.len() {
        drifts.push(structural(
            "chip count",
            golden.chips.len() as f64,
            got.chips.len() as f64,
        ));
        return drifts;
    }
    for (g, m) in golden.chips.iter().zip(&got.chips) {
        if g.name != m.name {
            drifts.push(structural(
                format!("chip {:?} vs {:?}", g.name, m.name),
                0.0,
                0.0,
            ));
            continue;
        }
        method_drifts(&g.name, "rule", &g.rule, &m.rule, tol, &mut drifts);
        method_drifts(&g.name, "opt", &g.opt, &m.opt, tol, &mut drifts);
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_report() -> ChipReport {
        let outcome = |l2, shots| ChipMethodOutcome {
            l2,
            pvb: 2.0 * l2,
            epe: 3,
            shots,
            mrc_violations: 2,
            cross_seam_violations: 1,
        };
        ChipReport {
            suite: "chip-tiny".into(),
            tile_px: 32,
            window_px: 64,
            halo_px: 16,
            kernel_count: 6,
            chips: vec![ChipRecord {
                name: "chip3_4x4".into(),
                tiles_x: 4,
                tiles_y: 4,
                area_nm2: 1_234_567,
                rects: 120,
                rule: outcome(9000.5, 410),
                opt: outcome(7000.25, 300),
                tiles: vec![
                    TileRecord {
                        name: "t0x0".into(),
                        rule_shots: 31,
                        opt_shots: 22,
                    },
                    TileRecord {
                        name: "t1x0".into(),
                        rule_shots: 0,
                        opt_shots: 0,
                    },
                ],
            }],
        }
    }

    #[test]
    fn json_roundtrip_preserves_the_report() {
        let report = sample_report();
        let parsed = ChipReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn serialization_is_byte_stable() {
        let report = sample_report();
        assert_eq!(report.to_json_string(), report.to_json_string());
    }

    #[test]
    fn rejects_wrong_schema_and_malformed_fields() {
        assert!(ChipReport::from_json_str("{}").is_err());
        assert!(ChipReport::from_json_str("{\"schema\":\"cfaopc-eval/1\"}").is_err());
        let text = sample_report()
            .to_json_string()
            .replace("\"epe\": 3", "\"epe\": \"three\"");
        let err = ChipReport::from_json_str(&text).unwrap_err();
        assert!(err.contains("epe"), "unhelpful error: {err}");
    }

    #[test]
    fn identical_reports_have_no_drift() {
        let r = sample_report();
        assert!(compare_chip_reports(&r, &r, &Tolerance::default()).is_empty());
    }

    #[test]
    fn drift_beyond_tolerance_is_reported_per_metric() {
        let golden = sample_report();
        let mut got = sample_report();
        got.chips[0].opt.l2 = 9900.0; // > 2 %
        got.chips[0].rule.cross_seam_violations = 4; // off by 3
        let drifts = compare_chip_reports(&golden, &got, &Tolerance::default());
        assert_eq!(drifts.len(), 2);
        assert_eq!(drifts[0].metric, "xseam");
        assert_eq!(drifts[1].metric, "l2");
    }

    #[test]
    fn structural_mismatches_fail() {
        let golden = sample_report();
        let mut other = sample_report();
        other.tile_px = 64;
        assert!(!compare_chip_reports(&golden, &other, &Tolerance::default()).is_empty());
        let mut renamed = sample_report();
        renamed.chips[0].name = "chipX".into();
        assert!(!compare_chip_reports(&golden, &renamed, &Tolerance::default()).is_empty());
        let mut extra = sample_report();
        extra.chips.push(extra.chips[0].clone());
        assert!(!compare_chip_reports(&golden, &extra, &Tolerance::default()).is_empty());
    }

    #[test]
    fn markdown_has_one_row_per_chip() {
        let table = sample_report().markdown_table();
        let rows: Vec<&str> = table.lines().collect();
        assert_eq!(rows.len(), 3, "header, divider, one chip");
        assert!(rows[2].starts_with("| chip3_4x4 | 4×4 |"));
    }
}
