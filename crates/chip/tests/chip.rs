//! End-to-end seam-correctness and determinism tests for the chip
//! decomposition.
//!
//! Everything runs under one umbrella `#[test]` that forces
//! `CFAOPC_THREADS=4` before the process-wide pool is first touched
//! (the same pattern as `crates/core/tests/forced_pool.rs`), so the
//! parallel claims below are exercised against a real multi-worker pool
//! regardless of the host machine.

use cfaopc_chip::{
    accumulate_window, axis_weights, extract_window_into, merge_tile_shots, normalize_blend,
    run_chip_case_full, run_chip_suite, run_tile, ChipGeometry, ChipSource, ChipSpec,
};
use cfaopc_fft::parallel::{with_worker_limit, worker_count};
use cfaopc_fracture::CircleShot;
use cfaopc_grid::{BitGrid, Rect};
use cfaopc_layouts::{generate_chip, ChipGeneratorConfig, ChipLayout};
use cfaopc_litho::{LithoSimulator, ProcessCorner};

/// A small two-chip-free spec: one seeded 2×2 chip, light iteration
/// budgets — enough to produce real shots on every run mode.
fn small_spec() -> ChipSpec {
    ChipSpec {
        name: "test-2x2".into(),
        tile_px: 32,
        kernel_count: 6,
        rule_iterations: 4,
        opt_init_iterations: 2,
        opt_circle_iterations: 4,
        chips: vec![ChipSource::Generated {
            seed: 5,
            tiles_x: 2,
            tiles_y: 2,
        }],
    }
}

/// A feature fully inside tile (0,0)'s interior *and* invisible to every
/// other tile's window (x, y < 1024 nm), on a 2×2 chip.
fn single_feature_chip() -> ChipLayout {
    ChipLayout::new("single", 2, 2, vec![Rect::new(300, 400, 1000, 560)])
}

#[test]
fn chip_pipeline_under_forced_four_worker_pool() {
    // Must run before anything touches the pool in this process.
    std::env::set_var("CFAOPC_THREADS", "4");
    assert_eq!(worker_count(), 4, "CFAOPC_THREADS must win at pool setup");

    interior_feature_matches_single_tile_run();
    halo_makes_interior_intensity_decomposition_independent();
    chip_report_bytes_identical_across_worker_limits();
}

/// Satellite property (a): a feature fully inside one tile's interior
/// produces bit-identical merged shots to a single-tile (one window,
/// full pool) run, and no other tile contributes anything.
fn interior_feature_matches_single_tile_run() {
    let spec = small_spec();
    let chip = single_feature_chip();
    let sim = LithoSimulator::new(spec.litho_config()).unwrap();
    let geom = spec.geometry(&chip);

    let outcome = run_chip_case_full(&spec, &sim, &chip).unwrap();
    assert!(
        outcome.record.rule.shots > 0 && outcome.record.opt.shots > 0,
        "feature produced no shots: {:?}",
        outcome.record
    );
    for t in &outcome.record.tiles[1..] {
        assert_eq!(
            (t.rule_shots, t.opt_shots),
            (0, 0),
            "tile {} saw a feature it does not own",
            t.name
        );
    }

    // Single-tile reference: the same window target, optimized on the
    // full pool (the chip run capped each tile at its pool share).
    let target = chip.rasterize(spec.tile_px);
    let win = geom.window_px();
    let mut window = BitGrid::new(win, win);
    extract_window_into(&target, geom.window_origin(0, 0), &mut window);
    let reference = run_tile(&sim, &window, &spec).unwrap();

    let merged = |shots: &[CircleShot]| {
        let mut out = Vec::new();
        let mut owners = Vec::new();
        merge_tile_shots(&geom, 0, shots, &mut out, &mut owners);
        out
    };
    assert_eq!(
        outcome.rule_mask.shots(),
        merged(reference.rule.shots()),
        "rule shots differ from the single-tile run"
    );
    assert_eq!(
        outcome.opt_mask.shots(),
        merged(reference.opt.shots()),
        "opt shots differ from the single-tile run"
    );
}

/// Satellite property (b): with the halo (1024 nm) far beyond the
/// optical interaction radius (~λ/NA ≈ 143 nm), the blended interior
/// aerial intensity of a decomposed chip tracks a whole-chip
/// single-window simulation. A 2×2 chip of 32 px tiles spans exactly one
/// 64 px window, so the same simulator provides the reference.
///
/// The band-limited pupil gives the SOCS kernels power-law (sinc-like)
/// tails — the relative intensity leak of a single mask pixel is still
/// ~1e-3 at 512 nm and ~3e-4 at 1024 nm — so coherent cross-terms with
/// out-of-window content bound any finite-halo decomposition to ~1e-2
/// interior error here. The property asserted is therefore two-sided:
/// the stitched error stays within that physical bound, *and* it beats
/// a haloless naive abutment (each tile simulated alone and pasted) by
/// a wide margin — measured ~2.2e-2 vs ~2.1e-1, an order of magnitude.
fn halo_makes_interior_intensity_decomposition_independent() {
    let spec = small_spec();
    let chip = generate_chip(5, 2, 2, &ChipGeneratorConfig::default());
    let geom = ChipGeometry::new(2, 2, spec.tile_px);
    let sim = LithoSimulator::new(spec.litho_config()).unwrap();
    let mask = chip.rasterize(spec.tile_px);
    let (cw, ch) = (geom.chip_width_px(), geom.chip_height_px());

    let reference = sim
        .aerial_image(&mask.to_real(), ProcessCorner::Nominal)
        .unwrap();

    let weights = axis_weights(&geom);
    let mut acc = vec![0.0; cw * ch];
    let mut wsum = vec![0.0; cw * ch];
    let win = geom.window_px();
    for i in 0..geom.tile_count() {
        let (tx, ty) = geom.tile_at(i);
        let origin = geom.window_origin(tx, ty);
        let mut window = BitGrid::new(win, win);
        extract_window_into(&mask, origin, &mut window);
        let aerial = sim
            .aerial_image(&window.to_real(), ProcessCorner::Nominal)
            .unwrap();
        accumulate_window(
            aerial.as_slice(),
            win,
            origin,
            &weights,
            &weights,
            cw,
            ch,
            &mut acc,
            &mut wsum,
        );
    }
    normalize_blend(&mut acc, &wsum);

    // Haloless strawman: each 32-px tile simulated alone, pasted in place.
    let tile_cfg = cfaopc_litho::LithoConfig {
        size: spec.tile_px,
        tile_nm: f64::from(cfaopc_layouts::TILE_NM),
        kernel_count: spec.kernel_count,
        ..cfaopc_litho::LithoConfig::default()
    };
    let tsim = LithoSimulator::new(tile_cfg).unwrap();
    let t = spec.tile_px;
    let mut naive = vec![0.0; cw * ch];
    for i in 0..geom.tile_count() {
        let (tx, ty) = geom.tile_at(i);
        let mut tile = BitGrid::new(t, t);
        extract_window_into(&mask, ((tx * t) as i32, (ty * t) as i32), &mut tile);
        let a = tsim
            .aerial_image(&tile.to_real(), ProcessCorner::Nominal)
            .unwrap();
        for y in 0..t {
            for x in 0..t {
                naive[(ty * t + y) * cw + tx * t + x] = a.as_slice()[y * t + x];
            }
        }
    }

    let guard = 8; // px of chip border excluded (periodic-wrap artifacts)
    let mut max_diff = 0.0f64;
    let mut max_naive = 0.0f64;
    for y in guard..ch - guard {
        for x in guard..cw - guard {
            let r = reference.as_slice()[y * cw + x];
            max_diff = max_diff.max((acc[y * cw + x] - r).abs());
            max_naive = max_naive.max((naive[y * cw + x] - r).abs());
        }
    }
    assert!(
        max_diff < 3e-2,
        "stitched interior intensity outside the physical bound: max |Δ| = {max_diff:.3e}"
    );
    assert!(
        max_diff * 5.0 < max_naive,
        "halo stitching should beat naive abutment by ≥5×: {max_diff:.3e} vs {max_naive:.3e}"
    );
}

/// Satellite property (c): the chip report is byte-identical between a
/// serial run (`with_worker_limit(1)`) and the forced 4-worker pool.
fn chip_report_bytes_identical_across_worker_limits() {
    let spec = small_spec();
    let serial = with_worker_limit(1, || run_chip_suite(&spec)).unwrap();
    let parallel = run_chip_suite(&spec).unwrap();
    assert!(!serial.chips[0].tiles.is_empty(), "suite produced no tiles");
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "CHIP_RESULTS.json differs between 1 and 4 workers"
    );
}
