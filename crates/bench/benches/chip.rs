//! Full-chip decomposition benchmarks: the end-to-end `chip-tiny` suite
//! (what the CI gate runs), one 4×4 decomposed chip case, and the two
//! stitch-phase hot paths in isolation — partition-of-unity blending of
//! precomputed window images and interior-owned shot merging. Run with
//! `cargo bench -p cfaopc-bench --bench chip`.
//!
//! Results are written as a JSON snapshot (default `BENCH_chip.json`,
//! override with `CFAOPC_BENCH_CHIP_OUT`) in the same shape the other
//! bench snapshots use, so `scripts/check_bench.py` gates it against
//! `eval/baselines/BENCH_chip.json` unchanged.

use cfaopc_chip::{
    accumulate_window, axis_weights, extract_window_into, merge_tile_shots, normalize_blend,
    run_chip_case_full, run_chip_suite, run_tile, ChipSpec,
};
use cfaopc_fft::parallel::{pool_thread_count, worker_count};
use cfaopc_grid::BitGrid;
use cfaopc_litho::{LithoSimulator, ProcessCorner};
use std::hint::black_box;
use std::time::Instant;

const WARMUP_ITERS: usize = 2;
const TIMED_ITERS: usize = 7;
/// Sub-20 ms cases are noisy at 7 samples; top them up (same policy as
/// the other bench binaries).
const TIMED_ITERS_FAST: usize = 15;
const FAST_CASE_NS: u128 = 20_000_000; // 20 ms

struct CaseResult {
    name: String,
    iters: usize,
    min_ns: u128,
    median_ns: u128,
    mean_ns: u128,
}

fn run_case<F: FnMut()>(name: String, mut f: F) -> CaseResult {
    for _ in 0..WARMUP_ITERS {
        f();
    }
    let mut samples: Vec<u128> = Vec::with_capacity(TIMED_ITERS_FAST);
    for _ in 0..TIMED_ITERS {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos());
    }
    samples.sort_unstable();
    if samples[samples.len() / 2] < FAST_CASE_NS {
        for _ in TIMED_ITERS..TIMED_ITERS_FAST {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed().as_nanos());
        }
    }
    samples.sort_unstable();
    let min_ns = samples[0];
    let median_ns = samples[samples.len() / 2];
    let mean_ns = samples.iter().sum::<u128>() / samples.len() as u128;
    println!(
        "{:<40} min {:>12.3} ms   median {:>12.3} ms   mean {:>12.3} ms   ({} iters)",
        name,
        min_ns as f64 / 1e6,
        median_ns as f64 / 1e6,
        mean_ns as f64 / 1e6,
        samples.len(),
    );
    CaseResult {
        name,
        iters: samples.len(),
        min_ns,
        median_ns,
        mean_ns,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    println!(
        "cfaopc chip benchmarks: {} workers ({} pool threads)\n",
        worker_count(),
        pool_thread_count(),
    );
    let mut results: Vec<CaseResult> = Vec::new();

    // End to end: the CI-gated suite (2 chips, 20 tiles total).
    let spec = ChipSpec::named("chip-tiny").unwrap();
    results.push(run_case("chip_suite_tiny".into(), || {
        black_box(run_chip_suite(&spec).unwrap());
    }));

    // One decomposed 4×4 chip with a shared simulator (the per-chip
    // steady state inside the suite loop).
    let sim = LithoSimulator::new(spec.litho_config()).unwrap();
    let chip = spec.chips[0].chip();
    results.push(run_case("chip_case_4x4".into(), || {
        black_box(run_chip_case_full(&spec, &sim, &chip).unwrap());
    }));

    // Stitch-phase hot paths in isolation, on precomputed inputs.
    let geom = spec.geometry(&chip);
    let target = chip.rasterize(spec.tile_px);
    let win = geom.window_px();
    let (cw, ch) = (geom.chip_width_px(), geom.chip_height_px());
    let windows: Vec<BitGrid> = (0..geom.tile_count())
        .map(|i| {
            let (tx, ty) = geom.tile_at(i);
            let mut w = BitGrid::new(win, win);
            extract_window_into(&target, geom.window_origin(tx, ty), &mut w);
            w
        })
        .collect();
    let images: Vec<Vec<f64>> = windows
        .iter()
        .map(|w| {
            sim.aerial_image(&w.to_real(), ProcessCorner::Nominal)
                .unwrap()
                .as_slice()
                .to_vec()
        })
        .collect();
    let weights = axis_weights(&geom);
    let mut acc = vec![0.0; cw * ch];
    let mut wsum = vec![0.0; cw * ch];
    results.push(run_case("stitch_blend_4x4".into(), || {
        acc.iter_mut().for_each(|v| *v = 0.0);
        wsum.iter_mut().for_each(|v| *v = 0.0);
        for (i, image) in images.iter().enumerate() {
            let (tx, ty) = geom.tile_at(i);
            accumulate_window(
                image,
                win,
                geom.window_origin(tx, ty),
                &weights,
                &weights,
                cw,
                ch,
                &mut acc,
                &mut wsum,
            );
        }
        normalize_blend(&mut acc, &wsum);
        black_box(&acc);
    }));

    // Shot merge: per-tile pipelines once, then the merge loop alone.
    let tiles: Vec<_> = windows
        .iter()
        .map(|w| run_tile(&sim, w, &spec).unwrap())
        .collect();
    let mut shots = Vec::new();
    let mut owners = Vec::new();
    results.push(run_case("merge_shots_4x4".into(), || {
        shots.clear();
        owners.clear();
        for (i, t) in tiles.iter().enumerate() {
            merge_tile_shots(&geom, i, t.opt.shots(), &mut shots, &mut owners);
        }
        black_box(shots.len());
    }));

    // Snapshot, in the shape `scripts/check_bench.py` expects.
    let path =
        std::env::var("CFAOPC_BENCH_CHIP_OUT").unwrap_or_else(|_| "BENCH_chip.json".to_string());
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"worker_count\": {},\n", worker_count()));
    out.push_str(&format!("  \"pool_threads\": {},\n", pool_thread_count()));
    out.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}{}\n",
            json_escape(&r.name),
            r.iters,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("\nperf snapshot written to {path}"),
        Err(e) => eprintln!("\nfailed to write perf snapshot: {e}"),
    }
}
