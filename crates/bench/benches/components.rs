//! Criterion microbenchmarks of every pipeline stage, sized at the
//! default experiment resolution (256²). Run with `cargo bench`.

use cfaopc_core::{compose, compose_soft, ComposeConfig, SparseCircles};
use cfaopc_ebeam::{EbeamPsf, WriterModel};
use cfaopc_fft::{Complex, Fft2d};
use cfaopc_fracture::{circle_rule, rect_fracture, CircleRuleConfig};
use cfaopc_grid::{skeletonize, Grid2D};
use cfaopc_layouts::benchmark_case;
use cfaopc_litho::{
    loss_and_gradient, LithoConfig, LithoSimulator, LossWeights, ProcessCorner,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const N: usize = 256;

fn sim() -> LithoSimulator {
    LithoSimulator::new(LithoConfig {
        size: N,
        kernel_count: 8,
        ..LithoConfig::default()
    })
    .unwrap()
}

fn bench_fft2d(c: &mut Criterion) {
    let plan = Fft2d::square(N).unwrap();
    let base: Vec<Complex> = (0..N * N)
        .map(|i| Complex::from_re((i % 7) as f64))
        .collect();
    c.bench_function("fft2d_forward_256", |b| {
        b.iter(|| {
            let mut buf = base.clone();
            plan.forward(&mut buf).unwrap();
            black_box(buf[0])
        })
    });
}

fn bench_litho_forward(c: &mut Criterion) {
    let s = sim();
    let target = benchmark_case(3).unwrap().rasterize(N);
    let mask = target.to_real();
    c.bench_function("aerial_image_256_8k", |b| {
        b.iter(|| black_box(s.aerial_image(&mask, ProcessCorner::Nominal).unwrap()))
    });
}

fn bench_litho_gradient(c: &mut Criterion) {
    let s = sim();
    let target = benchmark_case(3).unwrap().rasterize(N);
    let target_real = target.to_real();
    let mask = Grid2D::new(N, N, 0.4);
    c.bench_function("loss_and_gradient_256_3corner", |b| {
        b.iter(|| {
            black_box(
                loss_and_gradient(&s, &mask, &target_real, LossWeights::default()).unwrap(),
            )
        })
    });
}

fn bench_fracture(c: &mut Criterion) {
    let target = benchmark_case(3).unwrap().rasterize(N);
    c.bench_function("skeletonize_case3_256", |b| {
        b.iter(|| black_box(skeletonize(&target)))
    });
    c.bench_function("circle_rule_case3_256", |b| {
        b.iter(|| black_box(circle_rule(&target, &CircleRuleConfig::default(), 8.0)))
    });
    c.bench_function("rect_fracture_case3_256", |b| {
        b.iter(|| black_box(rect_fracture(&target)))
    });
}

fn bench_ebeam(c: &mut Criterion) {
    let target = benchmark_case(3).unwrap().rasterize(N);
    let circles = circle_rule(&target, &CircleRuleConfig::default(), 8.0);
    let writer = WriterModel::new(N, 8.0, EbeamPsf::default());
    let shots = WriterModel::dose_circles(&circles);
    c.bench_function("ebeam_write_case3_256", |b| {
        b.iter(|| black_box(writer.write(&shots)))
    });
}

fn bench_compose(c: &mut Criterion) {
    let target = benchmark_case(3).unwrap().rasterize(N);
    let circles = circle_rule(&target, &CircleRuleConfig::default(), 8.0);
    let sparse = SparseCircles::from_circular_mask(&circles);
    let cfg = ComposeConfig::new(N, 2, 10);
    let grad = Grid2D::new(N, N, 0.01);
    c.bench_function("compose_case3_256", |b| {
        b.iter(|| black_box(compose(&sparse, &cfg)))
    });
    let composite = compose(&sparse, &cfg);
    c.bench_function("compose_backward_case3_256", |b| {
        b.iter(|| black_box(composite.backward(&grad)))
    });
    c.bench_function("compose_soft_case3_256", |b| {
        b.iter(|| black_box(compose_soft(&sparse, &cfg, 20.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fft2d, bench_litho_forward, bench_litho_gradient, bench_fracture, bench_compose, bench_ebeam
}
criterion_main!(benches);
