//! Microbenchmarks of every pipeline stage, sized at the default
//! experiment resolution (256²). Run with `cargo bench -p cfaopc-bench`.
//!
//! Hand-rolled harness (`harness = false`, no external benchmark
//! dependency): each case is warmed up, timed over a fixed number of
//! iterations, and summarized as min / median / mean wall time. The
//! full summary is also written as a JSON perf snapshot (default
//! `BENCH_components.json`, override with `CFAOPC_BENCH_OUT`) so CI can
//! archive it as an artifact and successive runs can be diffed.
//!
//! The snapshot records the worker-pool configuration
//! (`worker_count`, `pool_threads`) and the process thread count
//! before and after the steady-state aerial-image loop, making the
//! "zero new threads per call" property of the persistent pool
//! observable from the artifact alone.

use cfaopc_core::{compose, compose_soft, ComposeConfig, SparseCircles};
use cfaopc_ebeam::{EbeamPsf, WriterModel};
use cfaopc_fft::parallel::{pool_thread_count, worker_count};
use cfaopc_fft::{Complex, Fft2d, Rfft2d};
use cfaopc_fracture::{circle_rule, rect_fracture, CircleRuleConfig};
use cfaopc_grid::{skeletonize, Grid2D};
use cfaopc_layouts::benchmark_case;
use cfaopc_litho::{loss_and_gradient, LithoConfig, LithoSimulator, LossWeights, ProcessCorner};
use std::hint::black_box;
use std::time::Instant;

const N: usize = 256;
const WARMUP_ITERS: usize = 2;
const TIMED_ITERS: usize = 10;

/// Timing summary of one benchmark case, in nanoseconds.
struct CaseResult {
    name: &'static str,
    iters: usize,
    min_ns: u128,
    median_ns: u128,
    mean_ns: u128,
}

fn run_case<F: FnMut()>(name: &'static str, mut f: F) -> CaseResult {
    for _ in 0..WARMUP_ITERS {
        f();
    }
    let mut samples: Vec<u128> = Vec::with_capacity(TIMED_ITERS);
    for _ in 0..TIMED_ITERS {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let min_ns = samples[0];
    let median_ns = samples[samples.len() / 2];
    let mean_ns = samples.iter().sum::<u128>() / samples.len() as u128;
    let result = CaseResult {
        name,
        iters: TIMED_ITERS,
        min_ns,
        median_ns,
        mean_ns,
    };
    println!(
        "{:<32} min {:>12.3} ms   median {:>12.3} ms   mean {:>12.3} ms",
        name,
        min_ns as f64 / 1e6,
        median_ns as f64 / 1e6,
        mean_ns as f64 / 1e6,
    );
    result
}

/// Current thread count of this process, from `/proc/self/status`
/// (Linux only; `None` elsewhere).
fn process_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_snapshot(
    results: &[CaseResult],
    threads_before: Option<usize>,
    threads_after: Option<usize>,
) -> std::io::Result<String> {
    let path =
        std::env::var("CFAOPC_BENCH_OUT").unwrap_or_else(|_| "BENCH_components.json".to_string());
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"grid_size\": {N},\n"));
    out.push_str(&format!("  \"worker_count\": {},\n", worker_count()));
    out.push_str(&format!("  \"pool_threads\": {},\n", pool_thread_count()));
    out.push_str(&format!(
        "  \"threads_before_steady_state\": {},\n",
        threads_before.map_or("null".to_string(), |t| t.to_string())
    ));
    out.push_str(&format!(
        "  \"threads_after_steady_state\": {},\n",
        threads_after.map_or("null".to_string(), |t| t.to_string())
    ));
    out.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}{}\n",
            json_escape(r.name),
            r.iters,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

fn sim() -> LithoSimulator {
    LithoSimulator::new(LithoConfig {
        size: N,
        kernel_count: 8,
        ..LithoConfig::default()
    })
    .unwrap()
}

fn main() {
    let mut results = Vec::new();
    println!(
        "cfaopc component benchmarks: {N}x{N} grid, {} workers ({} pool threads)\n",
        worker_count(),
        pool_thread_count(),
    );

    // FFT.
    let plan = Fft2d::square(N).unwrap();
    let base: Vec<Complex> = (0..N * N)
        .map(|i| Complex::from_re((i % 7) as f64))
        .collect();
    results.push(run_case("fft2d_forward_256", || {
        let mut buf = base.clone();
        plan.forward(&mut buf).unwrap();
        black_box(buf[0]);
    }));

    // Real-input FFT (the mask-spectrum path).
    let rplan = Rfft2d::square(N).unwrap();
    let real_base: Vec<f64> = (0..N * N).map(|i| (i % 7) as f64).collect();
    let mut rfft_out = vec![Complex::ZERO; N * N];
    results.push(run_case("rfft2d_forward_256", || {
        rplan.forward_into(&real_base, &mut rfft_out).unwrap();
        black_box(rfft_out[0]);
    }));
    let rplan512 = Rfft2d::square(2 * N).unwrap();
    let real_base512: Vec<f64> = (0..4 * N * N).map(|i| (i % 7) as f64).collect();
    let mut rfft_out512 = vec![Complex::ZERO; 4 * N * N];
    results.push(run_case("rfft2d_forward_512", || {
        rplan512
            .forward_into(&real_base512, &mut rfft_out512)
            .unwrap();
        black_box(rfft_out512[0]);
    }));
    drop((rfft_out, rfft_out512, real_base512));

    // Litho forward model. The warmup iterations also bring the worker
    // pool and buffer pools to steady state, so the thread count taken
    // here must stay flat across the timed loop.
    let s = sim();
    let target = benchmark_case(3).unwrap().rasterize(N);
    let mask = target.to_real();
    let _ = s.aerial_image(&mask, ProcessCorner::Nominal).unwrap();
    let threads_before = process_thread_count();
    results.push(run_case("aerial_image_256_8k", || {
        black_box(s.aerial_image(&mask, ProcessCorner::Nominal).unwrap());
    }));
    let threads_after = process_thread_count();
    if let (Some(before), Some(after)) = (threads_before, threads_after) {
        assert_eq!(
            before, after,
            "steady-state aerial_image must not spawn threads"
        );
    }

    // Litho gradient (three process corners).
    let target_real = target.to_real();
    let grad_mask = Grid2D::new(N, N, 0.4);
    results.push(run_case("loss_and_gradient_256_3corner", || {
        black_box(loss_and_gradient(&s, &grad_mask, &target_real, LossWeights::default()).unwrap());
    }));

    // The same gradient at 512² (fewer iterations would be nice, but a
    // uniform harness keeps the snapshot schema simple; the case costs
    // ~4× the 256² one).
    {
        let s512 = LithoSimulator::new(LithoConfig {
            size: 2 * N,
            kernel_count: 8,
            ..LithoConfig::default()
        })
        .unwrap();
        let target512 = benchmark_case(3).unwrap().rasterize(2 * N).to_real();
        let grad_mask512 = Grid2D::new(2 * N, 2 * N, 0.4);
        results.push(run_case("loss_and_gradient_512_3corner", || {
            black_box(
                loss_and_gradient(&s512, &grad_mask512, &target512, LossWeights::default())
                    .unwrap(),
            );
        }));
    }

    // Fracturing.
    results.push(run_case("skeletonize_case3_256", || {
        black_box(skeletonize(&target));
    }));
    results.push(run_case("circle_rule_case3_256", || {
        black_box(circle_rule(&target, &CircleRuleConfig::default(), 8.0));
    }));
    results.push(run_case("rect_fracture_case3_256", || {
        black_box(rect_fracture(&target));
    }));

    // E-beam write.
    let circles = circle_rule(&target, &CircleRuleConfig::default(), 8.0);
    let writer = WriterModel::new(N, 8.0, EbeamPsf::default()).unwrap();
    let shots = WriterModel::dose_circles(&circles);
    results.push(run_case("ebeam_write_case3_256", || {
        black_box(writer.write(&shots));
    }));

    // Differentiable composition.
    let sparse = SparseCircles::from_circular_mask(&circles);
    let cfg = ComposeConfig::new(N, 2, 10);
    let grad = Grid2D::new(N, N, 0.01);
    results.push(run_case("compose_case3_256", || {
        black_box(compose(&sparse, &cfg));
    }));
    let composite = compose(&sparse, &cfg);
    results.push(run_case("compose_backward_case3_256", || {
        black_box(composite.backward(&grad));
    }));
    results.push(run_case("compose_soft_case3_256", || {
        black_box(compose_soft(&sparse, &cfg, 20.0));
    }));

    match write_snapshot(&results, threads_before, threads_after) {
        Ok(path) => println!("\nperf snapshot written to {path}"),
        Err(e) => eprintln!("\nfailed to write perf snapshot: {e}"),
    }
}
