//! CircleOpt inner-loop benchmarks: the tiled parallel composition
//! engine against its retained serial reference, plus a full CircleOpt
//! iteration (compose → litho gradient → backward → Adam step) in both
//! the pooled steady-state form and the allocating serial form. Run with
//! `cargo bench -p cfaopc-bench --bench circleopt`.
//!
//! Grid/shot sizes follow the tentpole acceptance matrix: 512² and 1024²
//! with 100 and 1000 circles. Results are written as a JSON snapshot
//! (default `BENCH_circleopt.json`, override with
//! `CFAOPC_BENCH_CIRCLEOPT_OUT`) including explicit serial-vs-tiled
//! speedup ratios and the measured heap behaviour of a steady-state
//! iteration (net bytes — expected 0 — and transient allocation count),
//! via a counting global allocator local to this binary.
//!
//! The full-iteration cases need a lithography simulator; 512² runs by
//! default, the 1024² variant is opt-in via `CFAOPC_BENCH_FULL=1` to
//! keep CI smoke runs fast.
//!
//! After timing, a short tracing-enabled CircleOpt run emits a JSONL
//! telemetry artifact (per-iteration records, counters, span tree) next
//! to the perf snapshot: default `BENCH_circleopt_telemetry.jsonl`,
//! override with `CFAOPC_BENCH_CIRCLEOPT_TRACE_OUT`. The timed cases run
//! with tracing disabled, so the medians measure the untraced hot path.

use cfaopc_core::{
    compose_serial, run_circleopt_traced, CircleOptConfig, CircleParams, ComposeConfig,
    ComposeWorkspace, SparseCircles,
};
use cfaopc_fft::parallel::{pool_thread_count, worker_count};
use cfaopc_grid::{fill_rect, BitGrid, Grid2D, Rect};
use cfaopc_ilt::{Optimizer, OptimizerKind};
use cfaopc_litho::{
    loss_and_gradient, loss_and_gradient_into, LithoConfig, LithoSimulator, LossWeights,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::time::Instant;

const WARMUP_ITERS: usize = 2;
const TIMED_ITERS: usize = 5;

// --- allocation accounting -------------------------------------------------

struct CountingAlloc;

static NET_BYTES: AtomicIsize = AtomicIsize::new(0);
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus relaxed counters; the
// counters have no effect on the allocator contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as isize, Ordering::SeqCst);
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    // SAFETY: forwards `layout` unchanged to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as isize, Ordering::SeqCst);
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    // SAFETY: forwards the pointer/layout pair it was handed to
    // `System.dealloc` without modification.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as isize, Ordering::SeqCst);
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards all arguments unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        NET_BYTES.fetch_add(new_size as isize - layout.size() as isize, Ordering::SeqCst);
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// --- harness ---------------------------------------------------------------

struct CaseResult {
    name: String,
    iters: usize,
    min_ns: u128,
    median_ns: u128,
    mean_ns: u128,
}

fn run_case<F: FnMut()>(name: String, mut f: F) -> CaseResult {
    for _ in 0..WARMUP_ITERS {
        f();
    }
    let mut samples: Vec<u128> = Vec::with_capacity(TIMED_ITERS);
    for _ in 0..TIMED_ITERS {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let min_ns = samples[0];
    let median_ns = samples[samples.len() / 2];
    let mean_ns = samples.iter().sum::<u128>() / samples.len() as u128;
    println!(
        "{:<40} min {:>12.3} ms   median {:>12.3} ms   mean {:>12.3} ms",
        name,
        min_ns as f64 / 1e6,
        median_ns as f64 / 1e6,
        mean_ns as f64 / 1e6,
    );
    CaseResult {
        name,
        iters: TIMED_ITERS,
        min_ns,
        median_ns,
        mean_ns,
    }
}

struct Speedup {
    case: String,
    serial_ns: u128,
    tiled_ns: u128,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// --- deterministic workloads ----------------------------------------------

/// Low-discrepancy circle placement over the grid: fractional parts of
/// multiples of irrational constants, radii cycling 4..16 px, with a few
/// activations below the q-floor so pruning is part of the workload.
fn make_circles(n: usize, count: usize) -> SparseCircles {
    const PHI: f64 = 0.618_033_988_749_894_9;
    const PSI: f64 = 0.754_877_666_246_692_7;
    let span = n as f64 - 16.0;
    SparseCircles {
        circles: (0..count)
            .map(|i| {
                let x = 8.0 + ((i as f64 * PHI) % 1.0) * span;
                let y = 8.0 + ((i as f64 * PSI) % 1.0) * span;
                let r = 4.0 + ((i * 7) % 13) as f64;
                let q = match i % 7 {
                    0 => -0.3,
                    1 => 0.4,
                    _ => 1.0,
                };
                CircleParams { x, y, r, q }
            })
            .collect(),
    }
}

fn compose_cfg(n: usize) -> ComposeConfig {
    ComposeConfig::new(n, 2, 20)
}

fn main() {
    let mut results: Vec<CaseResult> = Vec::new();
    let mut speedups: Vec<Speedup> = Vec::new();
    println!(
        "cfaopc circleopt benchmarks: {} workers ({} pool threads)\n",
        worker_count(),
        pool_thread_count(),
    );

    // Compose + backward: serial reference vs tiled parallel engine.
    for &(n, count) in &[(512usize, 100usize), (512, 1000), (1024, 100), (1024, 1000)] {
        let sparse = make_circles(n, count);
        let cfg = compose_cfg(n);
        let grad = Grid2D::new(n, n, 0.01);

        let serial_compose = run_case(format!("compose_serial_{n}_{count}c"), || {
            black_box(compose_serial(&sparse, &cfg));
        });
        let mut ws = ComposeWorkspace::new();
        let tiled_compose = run_case(format!("compose_tiled_{n}_{count}c"), || {
            ws.compose(&sparse, &cfg);
            black_box(ws.mask());
        });
        speedups.push(Speedup {
            case: format!("compose_{n}_{count}c"),
            serial_ns: serial_compose.median_ns,
            tiled_ns: tiled_compose.median_ns,
        });

        let composite = compose_serial(&sparse, &cfg);
        let serial_backward = run_case(format!("backward_serial_{n}_{count}c"), || {
            black_box(composite.backward_serial(&grad));
        });
        let mut grads = Vec::new();
        let tiled_backward = run_case(format!("backward_parallel_{n}_{count}c"), || {
            ws.backward_into(&grad, &mut grads);
            black_box(grads.len());
        });
        speedups.push(Speedup {
            case: format!("backward_{n}_{count}c"),
            serial_ns: serial_backward.median_ns,
            tiled_ns: tiled_backward.median_ns,
        });

        // The acceptance metric: compose + backward together.
        speedups.push(Speedup {
            case: format!("compose+backward_{n}_{count}c"),
            serial_ns: serial_compose.median_ns + serial_backward.median_ns,
            tiled_ns: tiled_compose.median_ns + tiled_backward.median_ns,
        });
        results.extend([
            serial_compose,
            tiled_compose,
            serial_backward,
            tiled_backward,
        ]);
    }

    // Full CircleOpt iterations: allocating serial form vs pooled
    // steady-state form, plus the steady-state allocation profile.
    let full_sizes: &[usize] = if std::env::var("CFAOPC_BENCH_FULL").is_ok_and(|v| v == "1") {
        &[512, 1024]
    } else {
        &[512]
    };
    let mut steady_net_bytes: Option<isize> = None;
    let mut steady_allocs: Option<usize> = None;
    for &n in full_sizes {
        let count = 400 * n / 512;
        let sim = LithoSimulator::new(LithoConfig {
            size: n,
            kernel_count: 4,
            ..LithoConfig::default()
        })
        .unwrap();
        let mut target = BitGrid::new(n, n);
        let c = n as i32 / 2;
        fill_rect(&mut target, Rect::new(c - 40, c - 120, c + 40, c + 120));
        let target_real = target.to_real();
        let weights = LossWeights::default();
        let cfg = compose_cfg(n);
        let sparse = make_circles(n, count);
        let gamma = 3.0;

        // Serial/allocating: fresh compose, allocating gradient call,
        // allocating backward.
        let mut flat = sparse.to_flat();
        let mut optimizer = Optimizer::new(OptimizerKind::adam(0.1), flat.len());
        let mut circles = sparse.clone();
        let serial = run_case(format!("iteration_serial_{n}_{count}c"), || {
            circles.set_from_flat(&flat);
            let composite = compose_serial(&circles, &cfg);
            let (_loss, grad_mask) =
                loss_and_gradient(&sim, &composite.mask, &target_real, weights).unwrap();
            let mut grads = composite.backward_serial(&grad_mask);
            for (i, p) in circles.circles.iter().enumerate() {
                grads[4 * i + 3] += gamma * p.q.signum() * if p.q == 0.0 { 0.0 } else { 1.0 };
            }
            optimizer.step(&mut flat, &grads);
            black_box(&flat);
        });

        // Pooled steady state: reused workspace and buffers throughout —
        // the exact shape of `run_circleopt_impl`'s inner loop.
        let mut flat = sparse.to_flat();
        let mut optimizer = Optimizer::new(OptimizerKind::adam(0.1), flat.len());
        let mut circles = sparse.clone();
        let mut ws = ComposeWorkspace::new();
        let mut grad_mask = Grid2D::new(n, n, 0.0);
        let mut grads: Vec<f64> = Vec::new();
        let mut pooled_iteration =
            |flat: &mut Vec<f64>, circles: &mut SparseCircles, optimizer: &mut Optimizer| {
                circles.set_from_flat(flat);
                ws.compose(circles, &cfg);
                let _loss =
                    loss_and_gradient_into(&sim, ws.mask(), &target_real, weights, &mut grad_mask)
                        .unwrap();
                ws.backward_into(&grad_mask, &mut grads);
                for (i, p) in circles.circles.iter().enumerate() {
                    grads[4 * i + 3] += gamma * p.q.signum() * if p.q == 0.0 { 0.0 } else { 1.0 };
                }
                optimizer.step(flat, &grads);
            };
        let pooled = run_case(format!("iteration_pooled_{n}_{count}c"), || {
            pooled_iteration(&mut flat, &mut circles, &mut optimizer);
            black_box(&flat);
        });

        // Allocation profile of one steady-state iteration (the harness
        // above already warmed everything up).
        if n == 512 {
            let bytes0 = NET_BYTES.load(Ordering::SeqCst);
            let calls0 = ALLOC_CALLS.load(Ordering::SeqCst);
            pooled_iteration(&mut flat, &mut circles, &mut optimizer);
            steady_net_bytes = Some(NET_BYTES.load(Ordering::SeqCst) - bytes0);
            steady_allocs = Some(ALLOC_CALLS.load(Ordering::SeqCst) - calls0);
            println!(
                "steady-state iteration allocations: net {} bytes, {} transient alloc calls",
                steady_net_bytes.unwrap(),
                steady_allocs.unwrap()
            );
        }

        speedups.push(Speedup {
            case: format!("iteration_{n}_{count}c"),
            serial_ns: serial.median_ns,
            tiled_ns: pooled.median_ns,
        });
        results.extend([serial, pooled]);
    }

    // Snapshot.
    let path = std::env::var("CFAOPC_BENCH_CIRCLEOPT_OUT")
        .unwrap_or_else(|_| "BENCH_circleopt.json".to_string());
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"worker_count\": {},\n", worker_count()));
    out.push_str(&format!("  \"pool_threads\": {},\n", pool_thread_count()));
    out.push_str(&format!(
        "  \"steady_state_net_bytes_per_iteration\": {},\n",
        steady_net_bytes.map_or("null".to_string(), |v| v.to_string())
    ));
    out.push_str(&format!(
        "  \"steady_state_transient_allocs_per_iteration\": {},\n",
        steady_allocs.map_or("null".to_string(), |v| v.to_string())
    ));
    out.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}{}\n",
            json_escape(&r.name),
            r.iters,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    for (i, s) in speedups.iter().enumerate() {
        let ratio = s.serial_ns as f64 / s.tiled_ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"case\": \"{}\", \"serial_median_ns\": {}, \"tiled_median_ns\": {}, \"speedup\": {ratio:.3}}}{}\n",
            json_escape(&s.case),
            s.serial_ns,
            s.tiled_ns,
            if i + 1 == speedups.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("\nperf snapshot written to {path}"),
        Err(e) => eprintln!("\nfailed to write perf snapshot: {e}"),
    }

    write_telemetry_artifact();
}

/// A short tracing-enabled CircleOpt run, recorded as a JSONL telemetry
/// artifact alongside the perf snapshot. Runs *after* every timed case so
/// enabling the trace layer cannot perturb the medians.
fn write_telemetry_artifact() {
    let path = std::env::var("CFAOPC_BENCH_CIRCLEOPT_TRACE_OUT")
        .unwrap_or_else(|_| "BENCH_circleopt_telemetry.jsonl".to_string());
    let n = 256;
    let sim = LithoSimulator::new(LithoConfig {
        size: n,
        kernel_count: 4,
        ..LithoConfig::default()
    })
    .unwrap();
    let mut target = BitGrid::new(n, n);
    let c = n as i32 / 2;
    fill_rect(&mut target, Rect::new(c - 20, c - 60, c + 20, c + 60));
    let config = CircleOptConfig {
        init_iterations: 6,
        circle_iterations: 12,
        ..CircleOptConfig::default()
    };

    cfaopc_trace::reset();
    cfaopc_trace::set_enabled(true);
    let file = match std::fs::File::create(&path) {
        Ok(f) => std::io::BufWriter::new(f),
        Err(e) => {
            eprintln!("failed to create telemetry artifact {path}: {e}");
            return;
        }
    };
    let mut sink = cfaopc_trace::JsonlSink::new(file);
    let run = run_circleopt_traced(&sim, &target, &config, &mut sink);
    let summary = sink.write_summary().and_then(|()| sink.flush());
    cfaopc_trace::set_enabled(false);
    match (run, summary) {
        (Ok(result), Ok(())) => println!(
            "telemetry artifact written to {path} ({} shots traced)",
            result.shot_count()
        ),
        (Err(e), _) => eprintln!("telemetry run failed: {e}"),
        (_, Err(e)) => eprintln!("failed to write telemetry artifact {path}: {e}"),
    }
}
