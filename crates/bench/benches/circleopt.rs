//! CircleOpt inner-loop benchmarks: the tiled parallel composition
//! engine against its retained serial reference, plus a full CircleOpt
//! iteration (compose → litho gradient → backward → Adam step) in both
//! the pooled steady-state form and the allocating serial form. Run with
//! `cargo bench -p cfaopc-bench --bench circleopt`.
//!
//! Grid/shot sizes follow the tentpole acceptance matrix: 512² and 1024²
//! with 100 and 1000 circles. The fused compose+backward path is timed
//! as its own case pair (`fused_serial_*` / `fused_engine_*`) — a single
//! closure running forward then backward — rather than summing the
//! medians of separately timed phases, which fabricates a ratio no run
//! ever achieved. Results are written as a JSON snapshot (default
//! `BENCH_circleopt.json`, override with `CFAOPC_BENCH_CIRCLEOPT_OUT`)
//! including serial-vs-engine speedup ratios computed from both medians
//! (`speedup`) and minima (`speedup_min`, the statistic the CI gate
//! compares), and the measured heap behaviour of a steady-state
//! iteration (net bytes — expected 0 — and transient allocation count),
//! via a counting global allocator local to this binary. Cases whose
//! first-pass median lands under 20 ms are re-sampled up to 15
//! iterations so the median and min stop disagreeing by scheduler noise.
//!
//! The full-iteration cases need a lithography simulator; 512² runs by
//! default, the 1024² variant is opt-in via `CFAOPC_BENCH_FULL=1` to
//! keep CI smoke runs fast. Because the serial/pooled iteration pair
//! differs by only a few percent of a multi-hundred-ms run, its samples
//! are interleaved (A, B, A, B, …) instead of block-sequential so that
//! machine-state drift cannot masquerade as a speedup or regression.
//!
//! After timing, a short tracing-enabled CircleOpt run emits a JSONL
//! telemetry artifact (per-iteration records, counters, span tree) next
//! to the perf snapshot: default `BENCH_circleopt_telemetry.jsonl`,
//! override with `CFAOPC_BENCH_CIRCLEOPT_TRACE_OUT`. The timed cases run
//! with tracing disabled, so the medians measure the untraced hot path.

use cfaopc_core::{
    compose_serial, run_circleopt_traced, CircleOptConfig, CircleParams, ComposeConfig,
    ComposeWorkspace, SparseCircles,
};
use cfaopc_fft::parallel::{pool_thread_count, worker_count};
use cfaopc_grid::{fill_rect, BitGrid, Grid2D, Rect};
use cfaopc_ilt::{Optimizer, OptimizerKind};
use cfaopc_litho::{
    loss_and_gradient, loss_and_gradient_into, LithoConfig, LithoSimulator, LossWeights,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::time::Instant;

const WARMUP_ITERS: usize = 2;
const TIMED_ITERS: usize = 7;
/// Extra samples for fast cases: anything whose first-pass median is
/// under [`FAST_CASE_NS`] is noisy at 5 samples, so the harness tops the
/// sample set up to this many iterations before computing statistics.
const TIMED_ITERS_FAST: usize = 15;
const FAST_CASE_NS: u128 = 20_000_000; // 20 ms

// --- allocation accounting -------------------------------------------------

struct CountingAlloc;

static NET_BYTES: AtomicIsize = AtomicIsize::new(0);
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus relaxed counters; the
// counters have no effect on the allocator contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as isize, Ordering::SeqCst);
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    // SAFETY: forwards `layout` unchanged to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as isize, Ordering::SeqCst);
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    // SAFETY: forwards the pointer/layout pair it was handed to
    // `System.dealloc` without modification.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as isize, Ordering::SeqCst);
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards all arguments unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        NET_BYTES.fetch_add(new_size as isize - layout.size() as isize, Ordering::SeqCst);
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// --- harness ---------------------------------------------------------------

struct CaseResult {
    name: String,
    iters: usize,
    min_ns: u128,
    median_ns: u128,
    mean_ns: u128,
}

fn run_case<F: FnMut()>(name: String, mut f: F) -> CaseResult {
    for _ in 0..WARMUP_ITERS {
        f();
    }
    let mut samples: Vec<u128> = Vec::with_capacity(TIMED_ITERS_FAST);
    for _ in 0..TIMED_ITERS {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos());
    }
    samples.sort_unstable();
    // Sub-20 ms cases are noisy at 5 samples — and the CI gate compares
    // `min_ns` while the table is median-based, so noise can make the
    // two disagree. Top fast cases up with extra samples.
    if samples[samples.len() / 2] < FAST_CASE_NS {
        for _ in TIMED_ITERS..TIMED_ITERS_FAST {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed().as_nanos());
        }
    }
    finish_case(name, samples)
}

fn finish_case(name: String, mut samples: Vec<u128>) -> CaseResult {
    samples.sort_unstable();
    let min_ns = samples[0];
    let median_ns = samples[samples.len() / 2];
    let mean_ns = samples.iter().sum::<u128>() / samples.len() as u128;
    println!(
        "{:<40} min {:>12.3} ms   median {:>12.3} ms   mean {:>12.3} ms   ({} iters)",
        name,
        min_ns as f64 / 1e6,
        median_ns as f64 / 1e6,
        mean_ns as f64 / 1e6,
        samples.len(),
    );
    CaseResult {
        name,
        iters: samples.len(),
        min_ns,
        median_ns,
        mean_ns,
    }
}

/// Times two closures with **interleaved** samples (A, B, A, B, …) so
/// slow machine-state drift — frequency scaling, a noisy co-tenant —
/// lands on both sides of the comparison instead of biasing whichever
/// case happened to run during the bad window. Used for the long
/// full-iteration pairs, where the compared difference is a few percent
/// of a multi-hundred-ms run and block-sequential timing lets drift
/// masquerade as a speedup or a regression.
fn run_interleaved_pair<FA: FnMut(), FB: FnMut()>(
    name_a: String,
    mut fa: FA,
    name_b: String,
    mut fb: FB,
) -> (CaseResult, CaseResult) {
    for _ in 0..WARMUP_ITERS {
        fa();
        fb();
    }
    let mut sa: Vec<u128> = Vec::with_capacity(TIMED_ITERS_FAST);
    let mut sb: Vec<u128> = Vec::with_capacity(TIMED_ITERS_FAST);
    for _ in 0..TIMED_ITERS_FAST {
        let t0 = Instant::now();
        fa();
        sa.push(t0.elapsed().as_nanos());
        let t0 = Instant::now();
        fb();
        sb.push(t0.elapsed().as_nanos());
    }
    (finish_case(name_a, sa), finish_case(name_b, sb))
}

struct Speedup {
    case: String,
    serial_ns: u128,
    tiled_ns: u128,
    serial_min_ns: u128,
    tiled_min_ns: u128,
}

/// A speedup row derived from two *measured* cases — medians for the
/// human-facing table, minimums for the CI gate's noise-resistant view.
fn speedup_of(case: String, serial: &CaseResult, tiled: &CaseResult) -> Speedup {
    Speedup {
        case,
        serial_ns: serial.median_ns,
        tiled_ns: tiled.median_ns,
        serial_min_ns: serial.min_ns,
        tiled_min_ns: tiled.min_ns,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// --- deterministic workloads ----------------------------------------------

/// Low-discrepancy circle placement over the grid: fractional parts of
/// multiples of irrational constants, radii cycling 4..16 px, with a few
/// activations below the q-floor so pruning is part of the workload.
fn make_circles(n: usize, count: usize) -> SparseCircles {
    const PHI: f64 = 0.618_033_988_749_894_9;
    const PSI: f64 = 0.754_877_666_246_692_7;
    let span = n as f64 - 16.0;
    SparseCircles {
        circles: (0..count)
            .map(|i| {
                let x = 8.0 + ((i as f64 * PHI) % 1.0) * span;
                let y = 8.0 + ((i as f64 * PSI) % 1.0) * span;
                let r = 4.0 + ((i * 7) % 13) as f64;
                let q = match i % 7 {
                    0 => -0.3,
                    1 => 0.4,
                    _ => 1.0,
                };
                CircleParams { x, y, r, q }
            })
            .collect(),
    }
}

fn compose_cfg(n: usize) -> ComposeConfig {
    ComposeConfig::new(n, 2, 20)
}

fn main() {
    let mut results: Vec<CaseResult> = Vec::new();
    let mut speedups: Vec<Speedup> = Vec::new();
    println!(
        "cfaopc circleopt benchmarks: {} workers ({} pool threads)\n",
        worker_count(),
        pool_thread_count(),
    );

    // Compose + backward: serial reference vs tiled parallel engine.
    for &(n, count) in &[(512usize, 100usize), (512, 1000), (1024, 100), (1024, 1000)] {
        let sparse = make_circles(n, count);
        let cfg = compose_cfg(n);
        let grad = Grid2D::new(n, n, 0.01);

        let serial_compose = run_case(format!("compose_serial_{n}_{count}c"), || {
            black_box(compose_serial(&sparse, &cfg));
        });
        let mut ws = ComposeWorkspace::new();
        let tiled_compose = run_case(format!("compose_tiled_{n}_{count}c"), || {
            ws.compose(&sparse, &cfg);
            black_box(ws.mask());
        });
        speedups.push(speedup_of(
            format!("compose_{n}_{count}c"),
            &serial_compose,
            &tiled_compose,
        ));

        let composite = compose_serial(&sparse, &cfg);
        let serial_backward = run_case(format!("backward_serial_{n}_{count}c"), || {
            black_box(composite.backward_serial(&grad));
        });
        let mut grads = Vec::new();
        let tiled_backward = run_case(format!("backward_fused_{n}_{count}c"), || {
            ws.backward_into(&grad, &mut grads);
            black_box(grads.len());
        });
        speedups.push(speedup_of(
            format!("backward_{n}_{count}c"),
            &serial_backward,
            &tiled_backward,
        ));

        // The acceptance metric: compose + backward as one *timed* run
        // each — summing the medians of the two separately timed phases
        // misstates the pipeline cost (cache-warm effects), so the fused
        // cases below are measured end to end.
        let fused_serial = run_case(format!("fused_serial_{n}_{count}c"), || {
            let composite = compose_serial(&sparse, &cfg);
            black_box(composite.backward_serial(&grad));
        });
        let fused_engine = run_case(format!("fused_engine_{n}_{count}c"), || {
            ws.compose(&sparse, &cfg);
            ws.backward_into(&grad, &mut grads);
            black_box(grads.len());
        });
        speedups.push(speedup_of(
            format!("compose+backward_{n}_{count}c"),
            &fused_serial,
            &fused_engine,
        ));
        results.extend([
            serial_compose,
            tiled_compose,
            serial_backward,
            tiled_backward,
            fused_serial,
            fused_engine,
        ]);
    }

    // Full CircleOpt iterations: allocating serial form vs pooled
    // steady-state form, plus the steady-state allocation profile.
    let full_sizes: &[usize] = if std::env::var("CFAOPC_BENCH_FULL").is_ok_and(|v| v == "1") {
        &[512, 1024]
    } else {
        &[512]
    };
    let mut steady_net_bytes: Option<isize> = None;
    let mut steady_allocs: Option<usize> = None;
    for &n in full_sizes {
        // 1000 circles at 512² (scaled with grid edge): the tentpole's
        // acceptance workload, where composition is a meaningful slice
        // of the iteration rather than measurement noise.
        let count = 1000 * n / 512;
        let sim = LithoSimulator::new(LithoConfig {
            size: n,
            kernel_count: 4,
            ..LithoConfig::default()
        })
        .unwrap();
        let mut target = BitGrid::new(n, n);
        let c = n as i32 / 2;
        fill_rect(&mut target, Rect::new(c - 40, c - 120, c + 40, c + 120));
        let target_real = target.to_real();
        let weights = LossWeights::default();
        let cfg = compose_cfg(n);
        let sparse = make_circles(n, count);
        let gamma = 3.0;

        // Serial/allocating: fresh compose, allocating gradient call,
        // allocating backward.
        let mut flat_s = sparse.to_flat();
        let mut optimizer_s = Optimizer::new(OptimizerKind::adam(0.1), flat_s.len());
        let mut circles_s = sparse.clone();

        // Pooled steady state: reused workspace and buffers throughout —
        // the exact shape of `run_circleopt_impl`'s inner loop.
        let mut flat = sparse.to_flat();
        let mut optimizer = Optimizer::new(OptimizerKind::adam(0.1), flat.len());
        let mut circles = sparse.clone();
        let mut ws = ComposeWorkspace::new();
        let mut grad_mask = Grid2D::new(n, n, 0.0);
        let mut grads: Vec<f64> = Vec::new();
        let mut pooled_iteration =
            |flat: &mut Vec<f64>, circles: &mut SparseCircles, optimizer: &mut Optimizer| {
                circles.set_from_flat(flat);
                ws.compose(circles, &cfg);
                let _loss =
                    loss_and_gradient_into(&sim, ws.mask(), &target_real, weights, &mut grad_mask)
                        .unwrap();
                ws.backward_into(&grad_mask, &mut grads);
                for (i, p) in circles.circles.iter().enumerate() {
                    grads[4 * i + 3] += gamma * p.q.signum() * if p.q == 0.0 { 0.0 } else { 1.0 };
                }
                optimizer.step(flat, &grads);
            };

        // The two variants differ by a few percent of a multi-hundred-ms
        // iteration, so they are sampled interleaved (see
        // `run_interleaved_pair`) rather than block-sequentially.
        let (serial, pooled) = run_interleaved_pair(
            format!("iteration_serial_{n}_{count}c"),
            || {
                circles_s.set_from_flat(&flat_s);
                let composite = compose_serial(&circles_s, &cfg);
                let (_loss, grad_mask) =
                    loss_and_gradient(&sim, &composite.mask, &target_real, weights).unwrap();
                let mut grads = composite.backward_serial(&grad_mask);
                for (i, p) in circles_s.circles.iter().enumerate() {
                    grads[4 * i + 3] += gamma * p.q.signum() * if p.q == 0.0 { 0.0 } else { 1.0 };
                }
                optimizer_s.step(&mut flat_s, &grads);
                black_box(&flat_s);
            },
            format!("iteration_pooled_{n}_{count}c"),
            || {
                pooled_iteration(&mut flat, &mut circles, &mut optimizer);
                black_box(&flat);
            },
        );

        // Allocation profile of one steady-state iteration (the harness
        // above already warmed everything up).
        if n == 512 {
            let bytes0 = NET_BYTES.load(Ordering::SeqCst);
            let calls0 = ALLOC_CALLS.load(Ordering::SeqCst);
            pooled_iteration(&mut flat, &mut circles, &mut optimizer);
            steady_net_bytes = Some(NET_BYTES.load(Ordering::SeqCst) - bytes0);
            steady_allocs = Some(ALLOC_CALLS.load(Ordering::SeqCst) - calls0);
            println!(
                "steady-state iteration allocations: net {} bytes, {} transient alloc calls",
                steady_net_bytes.unwrap(),
                steady_allocs.unwrap()
            );
        }

        speedups.push(speedup_of(
            format!("iteration_{n}_{count}c"),
            &serial,
            &pooled,
        ));
        results.extend([serial, pooled]);
    }

    // Snapshot.
    let path = std::env::var("CFAOPC_BENCH_CIRCLEOPT_OUT")
        .unwrap_or_else(|_| "BENCH_circleopt.json".to_string());
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"worker_count\": {},\n", worker_count()));
    out.push_str(&format!("  \"pool_threads\": {},\n", pool_thread_count()));
    out.push_str(&format!(
        "  \"steady_state_net_bytes_per_iteration\": {},\n",
        steady_net_bytes.map_or("null".to_string(), |v| v.to_string())
    ));
    out.push_str(&format!(
        "  \"steady_state_transient_allocs_per_iteration\": {},\n",
        steady_allocs.map_or("null".to_string(), |v| v.to_string())
    ));
    out.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}{}\n",
            json_escape(&r.name),
            r.iters,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    for (i, s) in speedups.iter().enumerate() {
        let ratio = s.serial_ns as f64 / s.tiled_ns.max(1) as f64;
        let ratio_min = s.serial_min_ns as f64 / s.tiled_min_ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"case\": \"{}\", \"serial_median_ns\": {}, \"tiled_median_ns\": {}, \"speedup\": {ratio:.3}, \"serial_min_ns\": {}, \"tiled_min_ns\": {}, \"speedup_min\": {ratio_min:.3}}}{}\n",
            json_escape(&s.case),
            s.serial_ns,
            s.tiled_ns,
            s.serial_min_ns,
            s.tiled_min_ns,
            if i + 1 == speedups.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("\nperf snapshot written to {path}"),
        Err(e) => eprintln!("\nfailed to write perf snapshot: {e}"),
    }

    write_telemetry_artifact();
}

/// A short tracing-enabled CircleOpt run, recorded as a JSONL telemetry
/// artifact alongside the perf snapshot. Runs *after* every timed case so
/// enabling the trace layer cannot perturb the medians.
fn write_telemetry_artifact() {
    let path = std::env::var("CFAOPC_BENCH_CIRCLEOPT_TRACE_OUT")
        .unwrap_or_else(|_| "BENCH_circleopt_telemetry.jsonl".to_string());
    let n = 256;
    let sim = LithoSimulator::new(LithoConfig {
        size: n,
        kernel_count: 4,
        ..LithoConfig::default()
    })
    .unwrap();
    let mut target = BitGrid::new(n, n);
    let c = n as i32 / 2;
    fill_rect(&mut target, Rect::new(c - 20, c - 60, c + 20, c + 60));
    let config = CircleOptConfig {
        init_iterations: 6,
        circle_iterations: 12,
        ..CircleOptConfig::default()
    };

    cfaopc_trace::reset();
    cfaopc_trace::set_enabled(true);
    let file = match std::fs::File::create(&path) {
        Ok(f) => std::io::BufWriter::new(f),
        Err(e) => {
            eprintln!("failed to create telemetry artifact {path}: {e}");
            return;
        }
    };
    let mut sink = cfaopc_trace::JsonlSink::new(file);
    let run = run_circleopt_traced(&sim, &target, &config, &mut sink);
    let summary = sink.write_summary().and_then(|()| sink.flush());
    cfaopc_trace::set_enabled(false);
    match (run, summary) {
        (Ok(result), Ok(())) => println!(
            "telemetry artifact written to {path} ({} shots traced)",
            result.shot_count()
        ),
        (Err(e), _) => eprintln!("telemetry run failed: {e}"),
        (_, Err(e)) => eprintln!("failed to write telemetry artifact {path}: {e}"),
    }
}
