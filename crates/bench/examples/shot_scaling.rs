//! Demonstrates why the circular writer wins: VSB rectangle counts grow
//! linearly with raster resolution (one shot per curved boundary row),
//! while circular shot counts are resolution-invariant. Extrapolating the
//! doubling to the writer's native 1 nm grid reproduces the paper's
//! Figure 1 ratio (~6x fewer shots for curvilinear masks).
//!
//! ```sh
//! cargo run --release -p cfaopc-bench --example shot_scaling
//! ```

use cfaopc_fracture::*;
use cfaopc_grid::*;
use cfaopc_ilt::*;
use cfaopc_litho::*;

fn main() {
    for size in [256usize, 512, 1024] {
        let cfg = LithoConfig {
            size,
            kernel_count: 6,
            ..LithoConfig::default()
        };
        let px = cfg.pixel_nm();
        let sim = LithoSimulator::new(cfg).unwrap();
        let target = cfaopc_layouts::benchmark_case(4).unwrap().rasterize(size);
        let t0 = std::time::Instant::now();
        let r = run_engine(&sim, &target, IltEngine::DevelSetLike, 20).unwrap();
        let opened = open(&r.mask_binary, Structuring::Disk(1));
        let (rmin, _) = CircleRuleConfig::default().radius_range_px(px);
        let mask = remove_small_regions(&opened, disk_area(rmin), Connectivity::Eight);
        let rects = rect_shot_count(&mask);
        let circles = circle_rule(&mask, &CircleRuleConfig::default(), px).shot_count();
        println!(
            "size {size} ({px} nm/px): rects {rects}, circles {circles}, ratio {:.2} [{:?}]",
            rects as f64 / circles as f64,
            t0.elapsed()
        );
    }
}
