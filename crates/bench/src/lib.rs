//! Shared experiment harness for the table/figure binaries.
//!
//! Every binary (`table1`, `table2`, `table3`, `fig1`, `fig6`, `fig7`)
//! builds an [`Experiment`] from the environment and reuses the same
//! evaluation plumbing, so the numbers across tables are consistent.
//!
//! Environment knobs:
//!
//! * `CFAOPC_SIZE`  — grid edge in pixels (default 256; the paper's
//!   native scale is 2048 = 1 nm/px; 512 is a good fidelity/speed
//!   compromise),
//! * `CFAOPC_CASES` — comma-separated case subset (default all ten),
//! * `CFAOPC_ITERS` — pixel-ILT iterations per engine (default 30),
//! * `CFAOPC_KERNELS` — SOCS kernels per corner (default 8).
//!
//! Artifacts (CSV/SVG/PGM) are written under `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cfaopc_core::{run_circleopt, CircleOptConfig, CircleOptResult};
use cfaopc_fracture::{circle_rule, rect_shot_count, CircleRuleConfig, CircularMask};
use cfaopc_grid::{
    disk_area, open, remove_small_regions, upsample_bilinear, BitGrid, Connectivity, Structuring,
};
use cfaopc_ilt::{run_engine, IltEngine};
use cfaopc_layouts::{all_cases, benchmark_case, Layout};
use cfaopc_litho::{LithoConfig, LithoSimulator};
use cfaopc_metrics::{evaluate_mask, EpeConfig, MaskMetrics, MetricTable};
use std::path::{Path, PathBuf};

/// The shared experiment context.
pub struct Experiment {
    /// Lithography simulator at the experiment resolution.
    pub sim: LithoSimulator,
    /// Benchmark tiles to run.
    pub cases: Vec<Layout>,
    /// EPE measurement parameters.
    pub epe: EpeConfig,
    /// Pixel-ILT iterations for the baseline engines.
    pub ilt_iterations: usize,
    /// Artifact output directory.
    pub out_dir: PathBuf,
}

impl Experiment {
    /// Builds the context from `CFAOPC_*` environment variables.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (bad grid size, unknown case).
    pub fn from_env() -> Self {
        let size = env_usize("CFAOPC_SIZE", 256);
        let kernels = env_usize("CFAOPC_KERNELS", 8);
        let ilt_iterations = env_usize("CFAOPC_ITERS", 30);
        let config = LithoConfig {
            size,
            kernel_count: kernels,
            ..LithoConfig::default()
        };
        let sim = LithoSimulator::new(config).expect("valid litho configuration");
        let cases = match std::env::var("CFAOPC_CASES") {
            Ok(list) => list
                .split(',')
                .map(|t| {
                    benchmark_case(t.trim().parse().expect("case number")).expect("case in 1..=10")
                })
                .collect(),
            Err(_) => all_cases(),
        };
        let out_dir = PathBuf::from("target/experiments");
        std::fs::create_dir_all(&out_dir).expect("create target/experiments");
        Experiment {
            sim,
            cases,
            epe: EpeConfig::default(),
            ilt_iterations,
            out_dir,
        }
    }

    /// Grid edge in pixels.
    pub fn size(&self) -> usize {
        self.sim.size()
    }

    /// Pixel pitch in nm.
    pub fn pixel_nm(&self) -> f64 {
        self.sim.config().pixel_nm()
    }

    /// Rasterizes a layout at the experiment resolution.
    pub fn target(&self, layout: &Layout) -> BitGrid {
        layout.rasterize(self.size())
    }

    /// Runs a pixel-ILT engine and applies mask-writability hygiene
    /// before fracturing: a 1-px morphological opening, then removal of
    /// connected regions smaller than the minimum writable circular shot
    /// (`R_min` = 12 nm) — such features cannot be manufactured on the
    /// circular writer and only inflate fracture counts. The paper's
    /// 1 nm/px masks are implicitly clean at our coarser pitch.
    pub fn pixel_mask(&self, engine: IltEngine, target: &BitGrid) -> BitGrid {
        let result =
            run_engine(&self.sim, target, engine, self.ilt_iterations).expect("engine run");
        let opened = open(&result.mask_binary, Structuring::Disk(1));
        let (r_min, _) = CircleRuleConfig::default().radius_range_px(self.pixel_nm());
        remove_small_regions(&opened, disk_area(r_min), Connectivity::Eight)
    }

    /// Evaluates a rasterized mask and attaches a shot count.
    pub fn eval(&self, mask: &BitGrid, target: &BitGrid, shots: usize) -> MaskMetrics {
        let mut m = evaluate_mask(&self.sim, mask, target, &self.epe).expect("evaluation");
        m.shots = shots;
        m
    }

    /// Pixel mask → VSB metrics. The rectangle shot count is measured at
    /// the mask writer's native 1 nm/px resolution (see
    /// [`Experiment::native_rect_shots`]); L2/PVB/EPE are measured at the
    /// experiment resolution.
    pub fn eval_vsb(&self, pixel_mask: &BitGrid, target: &BitGrid) -> MaskMetrics {
        self.eval(pixel_mask, target, self.native_rect_shots(pixel_mask))
    }

    /// VSB rectangle count at the writer's native 1 nm/px grid.
    ///
    /// Rectangle counts scale with boundary-row counts, i.e. with
    /// resolution, so fracturing the coarse raster directly would
    /// understate VSB cost by `2048/size`. The coarse mask is bilinearly
    /// upsampled (reconstructing the smooth curvilinear boundary) and
    /// re-thresholded at 1 nm before rectangle decomposition. Circular
    /// shot counts need no such correction — they are resolution-
    /// invariant (one shot per circle regardless of the grid).
    pub fn native_rect_shots(&self, pixel_mask: &BitGrid) -> usize {
        let factor = (2048 / self.size()).max(1);
        if factor == 1 {
            return rect_shot_count(pixel_mask);
        }
        let fine = upsample_bilinear(&pixel_mask.to_real(), factor);
        rect_shot_count(&BitGrid::from_threshold(&fine, 0.5))
    }

    /// Pixel mask → CircleRule metrics and the fractured mask.
    pub fn eval_circle_rule(
        &self,
        pixel_mask: &BitGrid,
        target: &BitGrid,
        rule: &CircleRuleConfig,
    ) -> (MaskMetrics, CircularMask) {
        let circles = circle_rule(pixel_mask, rule, self.pixel_nm());
        let raster = circles.rasterize(self.size(), self.size());
        let metrics = self.eval(&raster, target, circles.shot_count());
        (metrics, circles)
    }

    /// CircleOpt configuration tuned for the experiment resolution.
    ///
    /// The paper's `γ = 3` is calibrated at 1 nm/px (2048²); the
    /// per-activation lithography gradient scales with the circle's
    /// pixel area, so the sparsity weight is rescaled by
    /// `(size/2048)²` to keep the Lasso/fidelity balance
    /// resolution-independent.
    pub fn circleopt_config(&self) -> CircleOptConfig {
        let scale = (self.size() as f64 / 2048.0).powi(2);
        CircleOptConfig {
            init_iterations: self.ilt_iterations.div_ceil(2),
            circle_iterations: self.ilt_iterations + 10,
            gamma: 3.0 * scale,
            ..CircleOptConfig::default()
        }
    }

    /// Runs CircleOpt and evaluates it.
    pub fn eval_circleopt(
        &self,
        target: &BitGrid,
        config: &CircleOptConfig,
    ) -> (MaskMetrics, CircleOptResult) {
        let result = run_circleopt(&self.sim, target, config).expect("circleopt run");
        let metrics = self.eval(&result.mask_raster, target, result.shot_count());
        (metrics, result)
    }

    /// Writes a table's CSV artifact and prints it.
    pub fn emit(&self, file_stem: &str, table: &MetricTable) {
        print!("{table}");
        let path = self.out_dir.join(format!("{file_stem}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        println!("-> {}\n", path.display());
    }

    /// Artifact path helper.
    pub fn artifact(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, exp: &Experiment) {
    println!(
        "### {what} — {0}x{0} px ({1} nm/px), {2} kernels/corner, {3} ILT iters, {4} cases",
        exp.size(),
        exp.pixel_nm(),
        exp.sim
            .kernel_set(cfaopc_litho::ProcessCorner::Nominal)
            .kernels()
            .len(),
        exp.ilt_iterations,
        exp.cases.len()
    );
    println!("### paper-native scale: CFAOPC_SIZE=2048 (1 nm/px); defaults favour wall-clock\n");
}

/// Convenience: does `path` exist already (artifacts reused across bins)?
pub fn exists(path: &Path) -> bool {
    path.exists()
}
