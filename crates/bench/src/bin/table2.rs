//! **Table 2**: per-case mask printability and complexity for the three
//! `engine+CircleRule` combinations and CircleOpt.
//!
//! Expected shape (paper): CircleOpt has the best L2/EPE of the circle
//! methods and ~20 % fewer shots than MultiILT+CircleRule;
//! DevelSet+CircleRule has the fewest shots (no SRAFs) but the worst L2.

use cfaopc_bench::{banner, Experiment};
use cfaopc_fracture::CircleRuleConfig;
use cfaopc_ilt::IltEngine;
use cfaopc_metrics::{MetricRow, MetricTable};

fn main() {
    let exp = Experiment::from_env();
    banner("Table 2: CircleRule vs CircleOpt, per case", &exp);
    let rule = CircleRuleConfig::default();

    let mut tables: Vec<MetricTable> = IltEngine::BASELINES
        .iter()
        .map(|e| MetricTable::new(format!("{}+CircleRule", e.name())))
        .collect();
    let mut opt_table = MetricTable::new("CircleOpt");

    for layout in &exp.cases {
        let target = exp.target(layout);
        for (engine, table) in IltEngine::BASELINES.iter().zip(&mut tables) {
            let pixel = exp.pixel_mask(*engine, &target);
            let (metrics, _) = exp.eval_circle_rule(&pixel, &target, &rule);
            table.push(MetricRow::new(&layout.name, metrics));
        }
        let (metrics, _) = exp.eval_circleopt(&target, &exp.circleopt_config());
        opt_table.push(MetricRow::new(&layout.name, metrics));
        eprintln!("[table2] {} done", layout.name);
    }

    for (engine, table) in IltEngine::BASELINES.iter().zip(&tables) {
        exp.emit(&format!("table2_{}_circlerule", engine.name()), table);
    }
    exp.emit("table2_circleopt", &opt_table);

    let mut summary = MetricTable::new("Table 2 (averages)");
    for (engine, table) in IltEngine::BASELINES.iter().zip(&tables) {
        summary.push(MetricRow::new(
            format!("{}+CircleRule", engine.name()),
            table.average(),
        ));
    }
    summary.push(MetricRow::new("CircleOpt", opt_table.average()));
    exp.emit("table2_summary", &summary);
}
