//! **Table 3**: ablation of the circular sparsity regularizer (Eq. 17).
//!
//! Expected shape (paper): `γ = 3` trims ~12 % of the shots for a
//! marginal L2/PVB cost and flat-to-better EPE versus `γ = 0`.

use cfaopc_bench::{banner, Experiment};
use cfaopc_core::CircleOptConfig;
use cfaopc_metrics::{MetricRow, MetricTable};

fn main() {
    let exp = Experiment::from_env();
    banner("Table 3: sparsity-regularizer ablation", &exp);

    let base = exp.circleopt_config();
    let variants: [(&str, CircleOptConfig); 2] = [
        (
            "CircleOpt w/o Sparsity",
            CircleOptConfig {
                gamma: 0.0,
                ..base.clone()
            },
        ),
        ("CircleOpt", base),
    ];

    let mut per_case: Vec<MetricTable> = variants
        .iter()
        .map(|(name, _)| MetricTable::new(*name))
        .collect();
    for layout in &exp.cases {
        let target = exp.target(layout);
        for ((_, cfg), table) in variants.iter().zip(&mut per_case) {
            let (metrics, _) = exp.eval_circleopt(&target, cfg);
            table.push(MetricRow::new(&layout.name, metrics));
        }
        eprintln!("[table3] {} done", layout.name);
    }

    let mut summary = MetricTable::new("Table 3 (averages)");
    for ((name, _), table) in variants.iter().zip(&per_case) {
        exp.emit(
            &format!("table3_{}", name.to_lowercase().replace([' ', '/'], "_")),
            table,
        );
        summary.push(MetricRow::new(*name, table.average()));
    }
    exp.emit("table3_summary", &summary);

    let (_, _, _, shots_without) = per_case[0].average_f();
    let (_, _, _, shots_with) = per_case[1].average_f();
    if shots_without > 0.0 {
        println!(
            "shot-count reduction from the sparsity regularizer: {:.1}% (paper: ~12%)",
            100.0 * (shots_without - shots_with) / shots_without
        );
    }
}
