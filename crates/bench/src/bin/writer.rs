//! **Writer fidelity** (supporting the paper's §1 motivation): simulate
//! actually *writing* the fractured masks on an e-beam machine with
//! 20–40 nm forward blur and flash-dose noise, and compare
//!
//! * rectangular (VSB) fracturing of a pixel-ILT mask, vs
//! * CircleRule circular fracturing of the same mask,
//!
//! on writing error (written vs intended pattern) and write time. The
//! paper asserts rectangular fracturing of curvilinear masks is "prone
//! to writing errors due to short-range e-beam blur"; this binary
//! measures that, including the shot-count → dose-noise coupling.

use cfaopc_bench::{banner, Experiment};
use cfaopc_ebeam::{correct_proximity, intended_pattern, EbeamPsf, PecConfig, WriterModel};
use cfaopc_fracture::{circle_rule, rect_fracture, CircleRuleConfig};
use cfaopc_ilt::IltEngine;

fn main() {
    let exp = Experiment::from_env();
    banner("Writer fidelity: VSB rectangles vs circular shots", &exp);
    let n = exp.size();
    let px = exp.pixel_nm();
    // Photomasks are written at 4x magnification: the writer sees
    // mask-scale geometry, 4x the wafer-scale pitch of the simulation.
    let writer = WriterModel::new(n, px * 4.0, EbeamPsf::forward_only(30.0))
        .expect("experiment grid sizes are powers of two");
    let noise_sigma = 0.08;

    let mut csv =
        String::from("case,fracturing,shots,write_time_ms,clean_error_px,noisy_error_px\n");
    println!(
        "{:<8} {:>12} {:>7} {:>12} {:>12} {:>12}",
        "case", "fracturing", "#shots", "t_write(ms)", "err_clean", "err_noisy"
    );
    for layout in &exp.cases {
        let target = exp.target(layout);
        let pixel = exp.pixel_mask(IltEngine::MultiIltLike, &target);

        let rect_shots = WriterModel::dose_rects(&rect_fracture(&pixel));
        let circles = circle_rule(&pixel, &CircleRuleConfig::default(), px);
        let circle_shots = WriterModel::dose_circles(&circles);

        for (name, shots) in [("rect", rect_shots), ("circle", circle_shots)] {
            let intended = intended_pattern(&shots, n);
            // PEC first — both writers get the same correction budget.
            let corrected = correct_proximity(&writer, &shots, &PecConfig::default()).shots;
            let clean = writer.writing_error(&corrected, &intended);
            let noisy: usize = (0..4)
                .map(|seed| {
                    let noisy_shots = WriterModel::with_dose_noise(&corrected, noise_sigma, seed);
                    writer.writing_error(&noisy_shots, &intended)
                })
                .sum::<usize>()
                / 4;
            let t_ms = WriterModel::write_time_s(shots.len(), 0.2, 0.3) * 1e3;
            println!(
                "{:<8} {:>12} {:>7} {:>12.2} {:>12} {:>12}",
                layout.name,
                name,
                shots.len(),
                t_ms,
                clean,
                noisy
            );
            csv.push_str(&format!(
                "{},{},{},{:.3},{},{}\n",
                layout.name,
                name,
                shots.len(),
                t_ms,
                clean,
                noisy
            ));
        }
    }
    std::fs::write(exp.artifact("writer_fidelity.csv"), csv).expect("write csv");
    println!(
        "\nExpected shape: circles need far fewer shots (lower write time) and\n\
         accumulate less flash-dose noise along the pattern boundary."
    );
    println!("-> {}", exp.artifact("writer_fidelity.csv").display());
}
