//! **Table 1**: CircleRule vs SOTA pixel-based OPC methods — averaged
//! L2 / PVB / EPE / #Shot over the benchmark, for each pixel engine raw
//! (VSB rectangle shots) and with CircleRule (circular shots).
//!
//! Expected shape (paper): circular fracturing cuts the shot count by
//! 2–6×; L2/EPE degrade (the circles only *fit* the pixel mask); PVB is
//! comparable or better.

use cfaopc_bench::{banner, Experiment};
use cfaopc_fracture::CircleRuleConfig;
use cfaopc_ilt::IltEngine;
use cfaopc_metrics::{MetricRow, MetricTable};

fn main() {
    let exp = Experiment::from_env();
    banner("Table 1: CircleRule vs pixel-based OPC", &exp);
    let rule = CircleRuleConfig::default();

    let mut summary = MetricTable::new("Table 1 (averages per method)");
    for engine in IltEngine::BASELINES {
        let mut raw = MetricTable::new(format!("{} raw", engine.name()));
        let mut fractured = MetricTable::new(format!("{}+CircleRule", engine.name()));
        for layout in &exp.cases {
            let target = exp.target(layout);
            let pixel = exp.pixel_mask(engine, &target);
            raw.push(MetricRow::new(&layout.name, exp.eval_vsb(&pixel, &target)));
            let (metrics, _) = exp.eval_circle_rule(&pixel, &target, &rule);
            fractured.push(MetricRow::new(&layout.name, metrics));
        }
        summary.push(MetricRow::new(engine.name(), raw.average()));
        summary.push(MetricRow::new(
            format!("{}+CircleRule", engine.name()),
            fractured.average(),
        ));
        exp.emit(&format!("table1_{}_raw", engine.name()), &raw);
        exp.emit(&format!("table1_{}_circlerule", engine.name()), &fractured);
    }
    exp.emit("table1_summary", &summary);
}
