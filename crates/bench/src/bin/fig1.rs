//! **Figure 1**: fracturing pattern comparison — the same curvilinear
//! mask written as non-overlapping VSB rectangles vs overlapping
//! variable-radius circles, with SVG renders of both.

use cfaopc_bench::{banner, Experiment};
use cfaopc_fracture::{circle_rule, rect_fracture, CircleRuleConfig, CircularMask};
use cfaopc_grid::{fill_rect, BitGrid};
use cfaopc_ilt::IltEngine;
use cfaopc_viz::SvgScene;

fn main() {
    let exp = Experiment::from_env();
    banner("Figure 1: rectangular vs circular fracturing", &exp);
    let n = exp.size();

    // A genuinely curvilinear mask: pixel ILT on the isolated-square
    // case grows rounded mains and SRAFs.
    let layout = cfaopc_layouts::benchmark_case(10).expect("case10");
    let target = exp.target(&layout);
    let curvy = exp.pixel_mask(IltEngine::MultiIltLike, &target);

    // (a) Rectangular fracturing.
    let rects = rect_fracture(&curvy);
    let mut rect_svg = SvgScene::new(n, n).mask(&curvy, "#bbbbbb", 0.6);
    {
        // Draw each rectangle outline to show the shot decomposition.
        let mut outlines = BitGrid::new(n, n);
        for r in &rects {
            for x in r.x0..r.x1 {
                outlines.set_at(cfaopc_grid::Point::new(x, r.y0), true);
                outlines.set_at(cfaopc_grid::Point::new(x, r.y1 - 1), true);
            }
            for y in r.y0..r.y1 {
                outlines.set_at(cfaopc_grid::Point::new(r.x0, y), true);
                outlines.set_at(cfaopc_grid::Point::new(r.x1 - 1, y), true);
            }
        }
        rect_svg = rect_svg.mask(&outlines, "#cc3311", 0.9);
    }
    rect_svg
        .save(exp.artifact("fig1a_rect_fracturing.svg"))
        .expect("write fig1a");

    // (b) Circular fracturing.
    let circles: CircularMask = circle_rule(&curvy, &CircleRuleConfig::default(), exp.pixel_nm());
    SvgScene::new(n, n)
        .mask(&curvy, "#bbbbbb", 0.6)
        .circles(&circles, "#cc3311")
        .save(exp.artifact("fig1b_circle_fracturing.svg"))
        .expect("write fig1b");

    let native_rects = exp.native_rect_shots(&curvy);
    println!("curvilinear mask: {} px", curvy.count_ones());
    println!(
        "(a) rectangular fracturing: {} shots at {} nm/px, {} at the writer's 1 nm grid",
        rects.len(),
        exp.pixel_nm(),
        native_rects
    );
    println!(
        "(b) circular fracturing:    {} shots (resolution-invariant)",
        circles.shot_count()
    );
    println!(
        "reduction: {:.1}x fewer shots with circles (native-resolution VSB)",
        native_rects as f64 / circles.shot_count().max(1) as f64
    );

    // Trivial synthetic sanity case as well: one rectangle.
    let mut rect_mask = BitGrid::new(n, n);
    fill_rect(&mut rect_mask, cfaopc_grid::Rect::new(10, 10, 50, 30));
    assert_eq!(rect_fracture(&rect_mask).len(), 1);

    let csv = format!(
        "fracturing,shots\nrectangular_at_{}nm,{}\nrectangular_native_1nm,{}\ncircular,{}\n",
        exp.pixel_nm(),
        rects.len(),
        native_rects,
        circles.shot_count()
    );
    std::fs::write(exp.artifact("fig1.csv"), csv).expect("write fig1.csv");
    println!("-> {}", exp.artifact("fig1.csv").display());
}
