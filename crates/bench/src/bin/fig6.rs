//! **Figure 6**: visualization of CircleOpt masks — target pattern,
//! circular mask, and printed image triptychs, one SVG per case, plus
//! aerial-image PGM dumps.

use cfaopc_bench::{banner, Experiment};
use cfaopc_litho::ProcessCorner;
use cfaopc_viz::{save_pgm, SvgScene};

fn main() {
    let exp = Experiment::from_env();
    banner("Figure 6: CircleOpt mask visualization", &exp);
    let n = exp.size();
    let cfg = exp.circleopt_config();

    for layout in &exp.cases {
        let target = exp.target(layout);
        let (metrics, result) = exp.eval_circleopt(&target, &cfg);
        let printed = exp
            .sim
            .print(&result.mask_raster, ProcessCorner::Nominal)
            .expect("print");

        let svg_path = exp.artifact(&format!("fig6_{}.svg", layout.name));
        SvgScene::new(n, n)
            .mask(&target, "#4477aa", 0.35)
            .circles(&result.mask, "#cc3311")
            .contour(&printed, "#228833")
            .save(&svg_path)
            .expect("write svg");

        let aerial = exp
            .sim
            .aerial_image(&result.mask_raster.to_real(), ProcessCorner::Nominal)
            .expect("aerial");
        let pgm_path = exp.artifact(&format!("fig6_{}_aerial.pgm", layout.name));
        save_pgm(&aerial, &pgm_path).expect("write pgm");

        println!(
            "{}: {} shots, L2 {:.0}, PVB {:.0}, EPE {} -> {}",
            layout.name,
            metrics.shots,
            metrics.l2,
            metrics.pvb,
            metrics.epe,
            svg_path.display()
        );
    }
}
