//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Gradient window `U`** (Eq. 16): windowed vs full-plane gradient
//!    aggregation — same gradients, very different cost.
//! 2. **STE clipping gates** (Eq. 9): with vs without — without them the
//!    continuous radii drift outside the writer's `[R_min, R_max]`.
//! 3. **Max vs softmax composition** (Eq. 11): argmax routing vs smooth
//!    blending.
//! 4. **CircleRule radius policy**: last-radius-covering (default) vs
//!    the literal pseudocode first-below-threshold.
//!
//! Runs on one benchmark case (override with `CFAOPC_CASES`).

use cfaopc_bench::{banner, Experiment};
use cfaopc_core::{compose, CircleOptConfig, ComposeConfig, Composition, SparseCircles};
use cfaopc_fracture::{circle_rule, CircleRuleConfig};
use cfaopc_grid::Grid2D;
use std::time::Instant;

fn main() {
    let exp = Experiment::from_env();
    banner("Ablations", &exp);
    let layout = exp.cases.first().expect("at least one case").clone();
    let target = exp.target(&layout);
    let n = exp.size();
    let pixel_nm = exp.pixel_nm();
    println!("--- running all ablations on {} ---\n", layout.name);

    // ------------------------------------------------------------------
    // 1. Gradient window U: windowed vs full-plane aggregation.
    // ------------------------------------------------------------------
    let pixel = exp.pixel_mask(cfaopc_ilt::IltEngine::Mosaic, &target);
    let circles = SparseCircles::from_circular_mask(&circle_rule(
        &pixel,
        &CircleRuleConfig::default(),
        pixel_nm,
    ));
    let rule = CircleRuleConfig::default();
    let (r_min, r_max) = rule.radius_range_px(pixel_nm);
    let grad_field = Grid2D::from_vec(
        n,
        n,
        (0..n * n)
            .map(|i| ((i as f64) * 0.37).sin() * 0.01)
            .collect(),
    );

    let windowed_cfg = ComposeConfig::new(n, r_min, r_max);
    let full_cfg = ComposeConfig {
        window_margin: n as i32, // the window now spans the whole plane
        ..windowed_cfg
    };
    let t0 = Instant::now();
    let windowed = compose(&circles, &windowed_cfg).backward(&grad_field);
    let t_windowed = t0.elapsed();
    let t0 = Instant::now();
    let full = compose(&circles, &full_cfg).backward(&grad_field);
    let t_full = t0.elapsed();
    let max_diff = windowed
        .iter()
        .zip(&full)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let max_mag = full.iter().map(|g| g.abs()).fold(0.0f64, f64::max);
    println!("[1] gradient window U ({} circles):", circles.len());
    println!(
        "    windowed backward: {t_windowed:?}, full-plane: {t_full:?} ({:.1}x slower)",
        t_full.as_secs_f64() / t_windowed.as_secs_f64().max(1e-9)
    );
    println!("    max |Δgrad| = {max_diff:.3e} (max |grad| = {max_mag:.3e})\n");

    // ------------------------------------------------------------------
    // 2. STE clipping gates on vs off.
    // ------------------------------------------------------------------
    let base = CircleOptConfig {
        init_iterations: 10,
        circle_iterations: 30,
        ..exp.circleopt_config()
    };
    for (label, gates) in [("with STE gates", true), ("without STE gates", false)] {
        let cfg = CircleOptConfig {
            ste_gates: gates,
            ..base.clone()
        };
        let (metrics, result) = exp.eval_circleopt(&target, &cfg);
        let out_of_range = result
            .circles
            .circles
            .iter()
            .filter(|c| c.q > cfg.q_threshold)
            .filter(|c| c.r < r_min as f64 - 0.5 || c.r > r_max as f64 + 0.5)
            .count();
        println!(
            "[2] {label}: L2 {:.0}, PVB {:.0}, EPE {}, #Shot {}, continuous radii out of \
             [{r_min},{r_max}]: {out_of_range}",
            metrics.l2, metrics.pvb, metrics.epe, metrics.shots
        );
    }
    println!();

    // ------------------------------------------------------------------
    // 3. Max vs softmax composition.
    // ------------------------------------------------------------------
    for (label, composition) in [
        ("max composition (paper)", Composition::Max),
        (
            "softmax composition β=20",
            Composition::Softmax { beta: 20.0 },
        ),
    ] {
        let cfg = CircleOptConfig {
            composition,
            ..base.clone()
        };
        let t0 = Instant::now();
        let (metrics, _) = exp.eval_circleopt(&target, &cfg);
        println!(
            "[3] {label}: L2 {:.0}, PVB {:.0}, EPE {}, #Shot {} ({:?})",
            metrics.l2,
            metrics.pvb,
            metrics.epe,
            metrics.shots,
            t0.elapsed()
        );
    }
    println!();

    // ------------------------------------------------------------------
    // 4. CircleRule radius policy.
    // ------------------------------------------------------------------
    for (label, literal) in [
        ("last r with cover ≥ I (default)", false),
        ("first r below I (literal)", true),
    ] {
        let rule = CircleRuleConfig {
            first_below_threshold: literal,
            ..CircleRuleConfig::default()
        };
        let (metrics, mask) = exp.eval_circle_rule(&pixel, &target, &rule);
        let avg_r =
            mask.shots().iter().map(|s| s.r as f64).sum::<f64>() / mask.shot_count().max(1) as f64;
        println!(
            "[4] {label}: L2 {:.0}, PVB {:.0}, EPE {}, #Shot {}, mean radius {avg_r:.2} px",
            metrics.l2, metrics.pvb, metrics.epe, metrics.shots
        );
    }
}
