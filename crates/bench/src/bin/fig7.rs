//! **Figure 7**: ablation on the sample distance `m ∈ {28, 32, 36}` nm —
//! (a) shot count, (b) L2+PVB, (c) EPE, for CircleRule (on MultiILT-like
//! masks) and CircleOpt, with the raw MultiILT VSB shot count as the
//! reference line in (a).
//!
//! Expected shape (paper): shot count falls as `m` grows; mask quality
//! degrades as `m` grows; CircleOpt is flatter (less sensitive) than
//! CircleRule on every panel.

use cfaopc_bench::{banner, Experiment};
use cfaopc_core::CircleOptConfig;
use cfaopc_fracture::CircleRuleConfig;
use cfaopc_ilt::IltEngine;
use cfaopc_metrics::{MetricRow, MetricTable};

fn main() {
    // The m ∈ {28, 32, 36} nm sweep needs at least 4 nm pixels to
    // resolve distinct sample distances (at 8 nm/px all three round to
    // the same pixel count); default this binary to 512² unless the
    // operator overrides.
    if std::env::var("CFAOPC_SIZE").is_err() {
        std::env::set_var("CFAOPC_SIZE", "512");
    }
    let exp = Experiment::from_env();
    banner("Figure 7: sample-distance ablation", &exp);
    let sweep = [28.0, 32.0, 36.0];

    // Pixel masks are independent of m — compute once per case.
    let prepared: Vec<_> = exp
        .cases
        .iter()
        .map(|layout| {
            let target = exp.target(layout);
            let pixel = exp.pixel_mask(IltEngine::MultiIltLike, &target);
            eprintln!("[fig7] {} pixel mask ready", layout.name);
            (layout.name.clone(), target, pixel)
        })
        .collect();
    let multiilt_shots: f64 = prepared
        .iter()
        .map(|(_, _, pixel)| exp.native_rect_shots(pixel) as f64)
        .sum::<f64>()
        / prepared.len() as f64;

    let mut csv = String::from("m_nm,method,shots,l2_plus_pvb_nm2,epe\n");
    for &m_nm in &sweep {
        let rule = CircleRuleConfig {
            sample_distance_nm: m_nm,
            ..CircleRuleConfig::default()
        };
        let mut rule_table = MetricTable::new(format!("CircleRule m={m_nm}"));
        let mut opt_table = MetricTable::new(format!("CircleOpt m={m_nm}"));
        for (name, target, pixel) in &prepared {
            let (metrics, _) = exp.eval_circle_rule(pixel, target, &rule);
            rule_table.push(MetricRow::new(name, metrics));
            let cfg = CircleOptConfig {
                rule,
                ..exp.circleopt_config()
            };
            let (metrics, _) = exp.eval_circleopt(target, &cfg);
            opt_table.push(MetricRow::new(name, metrics));
        }
        for (method, table) in [("CircleRule", &rule_table), ("CircleOpt", &opt_table)] {
            let (l2, pvb, epe, shots) = table.average_f();
            println!(
                "m={m_nm:>4}  {method:<10}  #Shot {shots:>7.1}  L2+PVB {:>10.0}  EPE {epe:>5.1}",
                l2 + pvb
            );
            csv.push_str(&format!(
                "{m_nm},{method},{shots:.1},{:.1},{epe:.1}\n",
                l2 + pvb
            ));
        }
        exp.emit(&format!("fig7_rule_m{m_nm}"), &rule_table);
        exp.emit(&format!("fig7_opt_m{m_nm}"), &opt_table);
    }
    csv.push_str(&format!(",MultiILT(VSB ref),{multiilt_shots:.1},,\n"));
    println!("MultiILT VSB reference shot count (Fig. 7a dashed line): {multiilt_shots:.1}");
    std::fs::write(exp.artifact("fig7.csv"), csv).expect("write fig7.csv");
    println!("-> {}", exp.artifact("fig7.csv").display());
}
