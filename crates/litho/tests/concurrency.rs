//! Thread-count invariance of the litho forward model.
//!
//! The kernel loop in `aerial_from_spectrum` merges per-kernel partial
//! intensities through an ordered turnstile, so the floating-point
//! summation order — and therefore every output bit — must not depend
//! on how many workers execute it. A single umbrella test pins
//! `CFAOPC_THREADS=4` before the pool exists, then compares the pooled
//! run against a forced fully-serial run of the same process.

use cfaopc_fft::parallel::{with_worker_limit, worker_count};
use cfaopc_grid::{fill_rect, BitGrid, Grid2D, Point, Rect};
use cfaopc_litho::{
    bossung_surface, loss_and_gradient, CdAxis, CdProbe, LithoConfig, LithoSimulator, LossWeights,
    ProcessCorner,
};

fn test_mask(n: usize) -> Grid2D<f64> {
    let values = (0..n * n)
        .map(|i| {
            let (x, y) = (i % n, i / n);
            // A few rectangles plus a smooth ramp: nontrivial spectrum.
            let solid = (x > n / 4 && x < n / 2 && y > n / 8 && y < n - n / 4) as u8 as f64;
            solid.max(0.3 * ((x * y) as f64 / (n * n) as f64))
        })
        .collect();
    Grid2D::from_vec(n, n, values)
}

#[test]
fn aerial_images_are_bit_identical_serial_vs_parallel() {
    std::env::set_var("CFAOPC_THREADS", "4");
    assert_eq!(worker_count(), 4, "CFAOPC_THREADS must win at pool setup");

    let sim = LithoSimulator::new(LithoConfig::fast_test()).unwrap();
    let mask = test_mask(sim.size());

    for corner in ProcessCorner::ALL {
        let parallel = sim.aerial_image(&mask, corner).unwrap();
        let serial = with_worker_limit(1, || sim.aerial_image(&mask, corner).unwrap());
        let pbits: Vec<u64> = parallel.as_slice().iter().map(|v| v.to_bits()).collect();
        let sbits: Vec<u64> = serial.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            pbits, sbits,
            "aerial image at {corner:?} depends on thread count"
        );
    }

    // The corner bundle goes through the same accumulator; check it too.
    let parallel = sim.aerial_corners(&mask).unwrap();
    let serial = with_worker_limit(1, || sim.aerial_corners(&mask).unwrap());
    for corner in ProcessCorner::ALL {
        let pbits: Vec<u64> = parallel
            .get(corner)
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let sbits: Vec<u64> = serial
            .get(corner)
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            pbits, sbits,
            "corner bundle at {corner:?} depends on thread count"
        );
    }
}

#[test]
fn loss_and_gradient_is_bit_identical_serial_vs_parallel() {
    // The batched multi-corner forward/adjoint regions merge through an
    // ordered turnstile (intensity) and a task-ordered serial reduction
    // (spectral gradient): no output bit may depend on worker count.
    std::env::set_var("CFAOPC_THREADS", "4");
    assert_eq!(worker_count(), 4, "CFAOPC_THREADS must win at pool setup");

    let sim = LithoSimulator::new(LithoConfig::fast_test()).unwrap();
    let n = sim.size();
    let mask = test_mask(n);
    let mut target = BitGrid::new(n, n);
    fill_rect(
        &mut target,
        Rect::new(
            n as i32 / 4,
            n as i32 / 4,
            3 * n as i32 / 4,
            3 * n as i32 / 4,
        ),
    );
    let target = target.to_real();

    for weights in [
        LossWeights::default(),
        LossWeights { l2: 1.0, pvb: 0.0 },
        LossWeights { l2: 0.0, pvb: 2.0 },
    ] {
        let (pv, pg) = loss_and_gradient(&sim, &mask, &target, weights).unwrap();
        let (sv, sg) = with_worker_limit(1, || {
            loss_and_gradient(&sim, &mask, &target, weights).unwrap()
        });
        assert_eq!(pv.total.to_bits(), sv.total.to_bits());
        assert_eq!(pv.l2.to_bits(), sv.l2.to_bits());
        assert_eq!(pv.pvb.to_bits(), sv.pvb.to_bits());
        let pbits: Vec<u64> = pg.as_slice().iter().map(|v| v.to_bits()).collect();
        let sbits: Vec<u64> = sg.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            pbits, sbits,
            "gradient with weights {weights:?} depends on thread count"
        );
    }
}

#[test]
fn bossung_surface_is_bit_identical_serial_vs_parallel() {
    std::env::set_var("CFAOPC_THREADS", "4");
    assert_eq!(worker_count(), 4, "CFAOPC_THREADS must win at pool setup");

    let sim = LithoSimulator::new(LithoConfig::fast_test()).unwrap();
    let n = sim.size();
    let mut mask = BitGrid::new(n, n);
    fill_rect(
        &mut mask,
        Rect::new(n as i32 / 4, 3, 3 * n as i32 / 4, n as i32 - 3),
    );
    let probe = CdProbe {
        at: Point::new(n as i32 / 2, n as i32 / 2),
        axis: CdAxis::Horizontal,
    };
    let defocus = [0.0, 50.0, 100.0];
    let doses = [0.96, 1.0, 1.04];

    let parallel = bossung_surface(&sim, &mask, &probe, &defocus, &doses).unwrap();
    let serial = with_worker_limit(1, || {
        bossung_surface(&sim, &mask, &probe, &defocus, &doses).unwrap()
    });
    assert_eq!(parallel.points.len(), serial.points.len());
    for (p, s) in parallel.points.iter().zip(&serial.points) {
        assert_eq!(
            p.cd_nm.map(f64::to_bits),
            s.cd_nm.map(f64::to_bits),
            "CD at defocus {} dose {} depends on thread count",
            p.defocus_nm,
            p.dose
        );
    }

    // The condensed metric must agree exactly as well.
    let cd_target = (n as f64 / 2.0) * sim.config().pixel_nm();
    let pw = parallel.window_fraction(cd_target, 0.25);
    let sw = serial.window_fraction(cd_target, 0.25);
    assert_eq!(pw.to_bits(), sw.to_bits());
}
