//! Property-based tests for the lithography model.

use cfaopc_grid::{fill_rect, BitGrid, Grid2D, Rect};
use cfaopc_litho::{
    loss_and_gradient, loss_only, LithoConfig, LithoSimulator, LossWeights, ProcessCorner,
};
use proptest::prelude::*;

fn sim() -> LithoSimulator {
    LithoSimulator::new(LithoConfig {
        size: 32,
        kernel_count: 4,
        ..LithoConfig::default()
    })
    .unwrap()
}

fn arb_mask() -> impl Strategy<Value = Grid2D<f64>> {
    proptest::collection::vec(0.0f64..1.0, 32 * 32).prop_map(|v| Grid2D::from_vec(32, 32, v))
}

fn arb_rects() -> impl Strategy<Value = BitGrid> {
    proptest::collection::vec((2i32..28, 2i32..28, 2i32..8, 2i32..8), 1..4).prop_map(|v| {
        let mut t = BitGrid::new(32, 32);
        for (x, y, w, h) in v {
            fill_rect(&mut t, Rect::new(x, y, x + w, y + h));
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aerial_intensity_is_nonnegative_and_finite(mask in arb_mask()) {
        let s = sim();
        for corner in ProcessCorner::ALL {
            let aerial = s.aerial_image(&mask, corner).unwrap();
            for &v in aerial.as_slice() {
                prop_assert!(v >= 0.0 && v.is_finite());
            }
        }
    }

    #[test]
    fn dose_scales_intensity_linearly(mask in arb_mask()) {
        // Max and Min corners share the nominal pupil at zero defocus
        // only when defocus is 0; build such a config explicitly.
        let s = LithoSimulator::new(LithoConfig {
            size: 32,
            kernel_count: 4,
            defocus_nm: 0.0,
            ..LithoConfig::default()
        })
        .unwrap();
        let nom = s.aerial_image(&mask, ProcessCorner::Nominal).unwrap();
        let max = s.aerial_image(&mask, ProcessCorner::Max).unwrap();
        let min = s.aerial_image(&mask, ProcessCorner::Min).unwrap();
        for i in 0..32 * 32 {
            prop_assert!((max.as_slice()[i] - 1.02 * nom.as_slice()[i]).abs() < 1e-9);
            prop_assert!((min.as_slice()[i] - 0.98 * nom.as_slice()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn loss_is_nonnegative_and_consistent(mask in arb_mask(), target in arb_rects()) {
        let s = sim();
        let t = target.to_real();
        let v = loss_only(&s, &mask, &t, LossWeights::default()).unwrap();
        prop_assert!(v.l2 >= 0.0 && v.pvb >= 0.0);
        prop_assert!((v.total - (v.l2 + v.pvb)).abs() < 1e-9);
        let (v2, grad) = loss_and_gradient(&s, &mask, &t, LossWeights::default()).unwrap();
        prop_assert!((v.total - v2.total).abs() < 1e-9);
        for &g in grad.as_slice() {
            prop_assert!(g.is_finite());
        }
    }

    #[test]
    fn small_descent_step_never_increases_loss_much(target in arb_rects()) {
        let s = sim();
        let t = target.to_real();
        let mask = t.clone();
        let w = LossWeights::default();
        let (before, grad) = loss_and_gradient(&s, &mask, &t, w).unwrap();
        let norm = grad.as_slice().iter().map(|g| g * g).sum::<f64>().sqrt();
        prop_assume!(norm > 1e-9);
        let step = 1e-3 / norm;
        let stepped = Grid2D::from_vec(
            32,
            32,
            mask.as_slice()
                .iter()
                .zip(grad.as_slice())
                .map(|(&m, &g)| m - step * g)
                .collect(),
        );
        let after = loss_only(&s, &stepped, &t, w).unwrap();
        prop_assert!(after.total <= before.total + 1e-9,
            "tiny descent step increased loss: {} -> {}", before.total, after.total);
    }

    #[test]
    fn unit_energy_floor_is_bit_identical_to_default(mask in arb_mask(), target in arb_rects()) {
        // `kernel_energy_floor = 1.0` (spelled explicitly) must be
        // indistinguishable — bit for bit — from the default exact
        // configuration, in both the loss and the gradient.
        let exact = sim();
        let floored = LithoSimulator::new(LithoConfig {
            size: 32,
            kernel_count: 4,
            kernel_energy_floor: 1.0,
            ..LithoConfig::default()
        })
        .unwrap();
        let t = target.to_real();
        let w = LossWeights::default();
        let (va, ga) = loss_and_gradient(&exact, &mask, &t, w).unwrap();
        let (vb, gb) = loss_and_gradient(&floored, &mask, &t, w).unwrap();
        prop_assert_eq!(va.total.to_bits(), vb.total.to_bits());
        prop_assert_eq!(va.l2.to_bits(), vb.l2.to_bits());
        prop_assert_eq!(va.pvb.to_bits(), vb.pvb.to_bits());
        for (a, b) in ga.as_slice().iter().zip(gb.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_energy_floor_approximates_the_exact_loss(mask in arb_mask(), target in arb_rects()) {
        // Dropping the low-weight SOCS tail perturbs the intensity by at
        // most the discarded energy fraction; the loss must stay close
        // and finite, and truncation must never *add* kernels.
        let exact = sim();
        let truncated = LithoSimulator::new(LithoConfig {
            size: 32,
            kernel_count: 4,
            kernel_energy_floor: 0.95,
            ..LithoConfig::default()
        })
        .unwrap();
        let t = target.to_real();
        let w = LossWeights::default();
        let ve = loss_only(&exact, &mask, &t, w).unwrap();
        let (vt, gt) = loss_and_gradient(&truncated, &mask, &t, w).unwrap();
        prop_assert!(vt.total.is_finite() && vt.total >= 0.0);
        for &g in gt.as_slice() {
            prop_assert!(g.is_finite());
        }
        // Relative agreement: loose bound, the point is "same model,
        // slightly less energy", not equality.
        let denom = ve.total.max(1.0);
        prop_assert!((vt.total - ve.total).abs() / denom < 0.25,
            "truncated loss strayed: {} vs {}", vt.total, ve.total);
    }

    #[test]
    fn empty_and_open_masks_are_extremes(target in arb_rects()) {
        // The all-dark mask prints nothing; the open frame prints
        // everything; any target loss lies between the two extremes'
        // pixel counts.
        let s = sim();
        let empty = s.print(&BitGrid::new(32, 32), ProcessCorner::Nominal).unwrap();
        prop_assert!(empty.is_clear());
        let mut open_mask = BitGrid::new(32, 32);
        fill_rect(&mut open_mask, Rect::new(0, 0, 32, 32));
        let open_print = s.print(&open_mask, ProcessCorner::Nominal).unwrap();
        prop_assert_eq!(open_print.count_ones(), 32 * 32);
        let _ = target; // target participates only to randomize the run
    }
}
