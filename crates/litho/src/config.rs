//! Optical and resist model configuration.

use cfaopc_fft::FftError;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cooperative cancellation handle for the optimizer entry points.
///
/// Clones share one flag; any clone may [`cancel`](CancelToken::cancel)
/// (e.g. a daemon's client handler or timeout watchdog) and the
/// optimizer observes it at the top of each iteration, returning
/// [`LithoError::Cancelled`]. The flag is a plain relaxed load/store —
/// cancellation needs no ordering beyond "eventually seen", and the
/// observing iteration boundary is a deterministic function of when the
/// store lands, never of thread scheduling within an iteration.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; there is no un-cancel.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Error raised for invalid lithography configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum LithoError {
    /// The grid edge is not a nonzero power of two.
    BadGridSize(usize),
    /// A physical parameter is out of range (message explains which).
    BadParameter(String),
    /// A mask buffer does not match the simulator's grid shape. Both sides
    /// are reported in the same unit — `(width, height)` in pixels — so the
    /// message never mixes a pixel count with a grid edge.
    ShapeMismatch {
        /// Grid shape the simulator expects, as `(width, height)` pixels.
        expected: (usize, usize),
        /// Shape of the buffer provided, as `(width, height)` pixels.
        actual: (usize, usize),
    },
    /// The numerical-health guard caught a NaN/Inf during optimization.
    ///
    /// Raised by `run_pixel_ilt` and `run_circleopt` instead of silently
    /// burning the remaining iterations on garbage. Carries enough context
    /// to localize the blow-up: which iteration, and which term went
    /// non-finite first.
    NonFinite {
        /// Zero-based iteration at which the guard tripped.
        iteration: usize,
        /// The first loss/gradient term observed to be non-finite.
        term: NonFiniteTerm,
    },
    /// An FFT plan rejected a buffer. Unreachable when plans and buffers
    /// come from the same [`LithoConfig`], but propagated as a typed error
    /// instead of panicking so the library surface stays panic-free.
    Fft(FftError),
    /// The run observed its [`CancelToken`] and stopped early.
    ///
    /// Raised by the cancellable optimizer entry points at the top of an
    /// iteration — the same clean mid-run exit the [`LithoError::NonFinite`]
    /// health guard takes, so a cancelled run leaves shared simulator
    /// state (kernels, FFT plans, buffer pools, the worker pool) fully
    /// reusable by the next run.
    Cancelled {
        /// Zero-based iteration at which the cancellation was observed.
        iteration: usize,
    },
}

impl From<FftError> for LithoError {
    fn from(err: FftError) -> Self {
        LithoError::Fft(err)
    }
}

/// Which quantity tripped the [`LithoError::NonFinite`] health guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonFiniteTerm {
    /// The fidelity (L2) loss term.
    LossL2,
    /// The process-variation-band loss term.
    LossPvb,
    /// The weighted total loss.
    LossTotal,
    /// The Lasso sparsity penalty.
    Sparsity,
    /// The parameter gradient (any entry NaN/Inf, detected via its norms).
    Gradient,
}

impl fmt::Display for NonFiniteTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NonFiniteTerm::LossL2 => "L2 loss",
            NonFiniteTerm::LossPvb => "PVB loss",
            NonFiniteTerm::LossTotal => "total loss",
            NonFiniteTerm::Sparsity => "sparsity penalty",
            NonFiniteTerm::Gradient => "gradient",
        };
        f.write_str(s)
    }
}

impl fmt::Display for LithoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LithoError::BadGridSize(n) => write!(f, "grid size {n} is not a power of two"),
            LithoError::BadParameter(msg) => write!(f, "invalid parameter: {msg}"),
            LithoError::ShapeMismatch { expected, actual } => write!(
                f,
                "mask is {}x{} pixels but the simulator expects {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            LithoError::NonFinite { iteration, term } => write!(
                f,
                "non-finite {term} at iteration {iteration}; run aborted by the numerical-health guard"
            ),
            LithoError::Fft(err) => write!(f, "fft plan rejected a buffer: {err}"),
            LithoError::Cancelled { iteration } => {
                write!(f, "run cancelled at iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for LithoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LithoError::Fft(err) => Some(err),
            _ => None,
        }
    }
}

/// Process-window corner of the simulation (paper §2.3: PVB is measured
/// between the maximum and minimum process corners).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessCorner {
    /// Nominal dose, best focus.
    Nominal,
    /// Over-dose corner (prints fat) — `dose_max`, best focus.
    Max,
    /// Under-dose, defocused corner (prints thin) — `dose_min`,
    /// `defocus_nm` of focus error.
    Min,
}

impl ProcessCorner {
    /// All three corners in `[Nominal, Max, Min]` order.
    pub const ALL: [ProcessCorner; 3] = [
        ProcessCorner::Nominal,
        ProcessCorner::Max,
        ProcessCorner::Min,
    ];
}

/// Full configuration of the optical projection system, the resist model
/// and the simulation grid.
///
/// Defaults follow the ICCAD-2013 contest conventions used by the paper's
/// experimental setup (193 nm immersion, NA 1.35, annular illumination,
/// intensity threshold 0.225, ±2 % dose corners) on a 2048 nm tile. The
/// grid is `size × size` pixels covering `tile_nm × tile_nm` nanometres,
/// so the pixel pitch is `tile_nm / size`.
///
/// # Examples
///
/// ```
/// use cfaopc_litho::LithoConfig;
///
/// let cfg = LithoConfig { size: 256, ..LithoConfig::default() };
/// assert_eq!(cfg.pixel_nm(), 8.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LithoConfig {
    /// Grid edge in pixels (power of two).
    pub size: usize,
    /// Physical tile edge in nanometres (the ICCAD-13 tiles are 2048 nm).
    pub tile_nm: f64,
    /// Exposure wavelength in nanometres (193 nm ArF immersion).
    pub wavelength_nm: f64,
    /// Numerical aperture of the projection lens.
    pub na: f64,
    /// Inner partial-coherence factor of the annular source.
    pub sigma_inner: f64,
    /// Outer partial-coherence factor of the annular source.
    pub sigma_outer: f64,
    /// Number of source sample points = number of SOCS kernels per corner.
    pub kernel_count: usize,
    /// Resist intensity threshold `I_th` (paper Eq. 2).
    pub threshold: f64,
    /// Steepness of the relaxed (sigmoid) resist used inside losses.
    pub resist_steepness: f64,
    /// Dose of the over-exposure corner (e.g. `1.02`).
    pub dose_max: f64,
    /// Dose of the under-exposure corner (e.g. `0.98`).
    pub dose_min: f64,
    /// Focus error of the `Min` corner in nanometres.
    pub defocus_nm: f64,
    /// SOCS accuracy knob in `(0, 1]`: the fraction of total kernel
    /// energy (sum of SOCS weights `μ_k`, descending) that must be
    /// captured before the tail of the kernel sum is dropped. `1.0` (the
    /// default) keeps every kernel and is **bit-identical** to the
    /// untruncated model; lower values trade aerial-image accuracy for
    /// proportionally fewer per-kernel transforms in both the forward
    /// model and the gradient.
    pub kernel_energy_floor: f64,
}

impl Default for LithoConfig {
    fn default() -> Self {
        LithoConfig {
            size: 512,
            tile_nm: 2048.0,
            wavelength_nm: 193.0,
            na: 1.35,
            sigma_inner: 0.6,
            sigma_outer: 0.9,
            kernel_count: 12,
            threshold: 0.225,
            resist_steepness: 50.0,
            dose_max: 1.02,
            dose_min: 0.98,
            defocus_nm: 25.0,
            kernel_energy_floor: 1.0,
        }
    }
}

impl LithoConfig {
    /// A small, fast configuration for unit tests (64² grid, 6 kernels).
    pub fn fast_test() -> Self {
        LithoConfig {
            size: 64,
            kernel_count: 6,
            ..LithoConfig::default()
        }
    }

    /// Pixel pitch in nanometres.
    #[inline]
    pub fn pixel_nm(&self) -> f64 {
        self.tile_nm / self.size as f64
    }

    /// Converts a length in nanometres to (fractional) pixels.
    #[inline]
    pub fn nm_to_px(&self, nm: f64) -> f64 {
        nm / self.pixel_nm()
    }

    /// Converts a pixel count to nanometres.
    #[inline]
    pub fn px_to_nm(&self, px: f64) -> f64 {
        px * self.pixel_nm()
    }

    /// Dose multiplier applied at `corner`.
    #[inline]
    pub fn dose(&self, corner: ProcessCorner) -> f64 {
        match corner {
            ProcessCorner::Nominal => 1.0,
            ProcessCorner::Max => self.dose_max,
            ProcessCorner::Min => self.dose_min,
        }
    }

    /// Focus error in nanometres applied at `corner`.
    #[inline]
    pub fn defocus(&self, corner: ProcessCorner) -> f64 {
        match corner {
            ProcessCorner::Min => self.defocus_nm,
            _ => 0.0,
        }
    }

    /// Validates physical and numerical constraints.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError`] when the grid is not a power of two, the
    /// source annulus is empty or inverted, doses are non-positive, or the
    /// pupil would not fit on the frequency grid.
    pub fn validate(&self) -> Result<(), LithoError> {
        if self.size == 0 || !self.size.is_power_of_two() {
            return Err(LithoError::BadGridSize(self.size));
        }
        if self.tile_nm <= 0.0 || self.tile_nm.is_nan() {
            return Err(LithoError::BadParameter("tile_nm must be positive".into()));
        }
        if !(self.wavelength_nm > 0.0 && self.na > 0.0) {
            return Err(LithoError::BadParameter(
                "wavelength and NA must be positive".into(),
            ));
        }
        if !(0.0 <= self.sigma_inner
            && self.sigma_inner < self.sigma_outer
            && self.sigma_outer <= 1.0)
        {
            return Err(LithoError::BadParameter(format!(
                "annular source needs 0 <= sigma_inner < sigma_outer <= 1, got [{}, {}]",
                self.sigma_inner, self.sigma_outer
            )));
        }
        if self.kernel_count == 0 {
            return Err(LithoError::BadParameter(
                "kernel_count must be at least 1".into(),
            ));
        }
        if !(self.dose_min > 0.0 && self.dose_min <= 1.0 && self.dose_max >= 1.0) {
            return Err(LithoError::BadParameter(format!(
                "doses must bracket 1.0, got [{}, {}]",
                self.dose_min, self.dose_max
            )));
        }
        if !(self.threshold > 0.0 && self.threshold < 1.0) {
            return Err(LithoError::BadParameter(format!(
                "threshold must lie in (0,1), got {}",
                self.threshold
            )));
        }
        if !(self.kernel_energy_floor > 0.0 && self.kernel_energy_floor <= 1.0) {
            return Err(LithoError::BadParameter(format!(
                "kernel_energy_floor must lie in (0,1], got {}",
                self.kernel_energy_floor
            )));
        }
        // The pupil (radius NA/λ in frequency space) must resolve to at
        // least one frequency bin: NA/λ >= 1/tile.
        let cutoff = self.na / self.wavelength_nm;
        if cutoff * self.tile_nm < 1.0 {
            return Err(LithoError::BadParameter(
                "pupil smaller than one frequency bin; enlarge tile_nm".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        LithoConfig::default().validate().unwrap();
        LithoConfig::fast_test().validate().unwrap();
    }

    #[test]
    fn pixel_pitch() {
        let cfg = LithoConfig::default();
        assert_eq!(cfg.pixel_nm(), 4.0);
        assert_eq!(cfg.nm_to_px(32.0), 8.0);
        assert_eq!(cfg.px_to_nm(8.0), 32.0);
    }

    #[test]
    fn rejects_bad_grid() {
        let cfg = LithoConfig {
            size: 100,
            ..LithoConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(LithoError::BadGridSize(100))));
    }

    #[test]
    fn rejects_inverted_annulus() {
        let cfg = LithoConfig {
            sigma_inner: 0.9,
            sigma_outer: 0.6,
            ..LithoConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_doses() {
        let cfg = LithoConfig {
            dose_min: 1.2,
            ..LithoConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = LithoConfig {
            dose_max: 0.9,
            ..LithoConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn corner_dose_and_defocus() {
        let cfg = LithoConfig::default();
        assert_eq!(cfg.dose(ProcessCorner::Nominal), 1.0);
        assert_eq!(cfg.dose(ProcessCorner::Max), 1.02);
        assert_eq!(cfg.dose(ProcessCorner::Min), 0.98);
        assert_eq!(cfg.defocus(ProcessCorner::Nominal), 0.0);
        assert_eq!(cfg.defocus(ProcessCorner::Min), 25.0);
    }

    #[test]
    fn rejects_bad_energy_floor() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let cfg = LithoConfig {
                kernel_energy_floor: bad,
                ..LithoConfig::default()
            };
            assert!(cfg.validate().is_err(), "floor {bad} must be rejected");
        }
        let cfg = LithoConfig {
            kernel_energy_floor: 0.75,
            ..LithoConfig::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn error_display_nonempty() {
        let e = LithoError::BadGridSize(7);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn shape_mismatch_reports_consistent_units() {
        // Regression: `actual` used to hold a raw pixel count while
        // `expected` held the grid edge, producing "mask has 256 pixels but
        // the simulator expects 64x64" for a 16x16 mask on a 64x64 grid.
        let e = LithoError::ShapeMismatch {
            expected: (64, 64),
            actual: (16, 16),
        };
        assert_eq!(
            e.to_string(),
            "mask is 16x16 pixels but the simulator expects 64x64"
        );
    }
}
